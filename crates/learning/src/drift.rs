use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Perceptron;

/// Progressive corruption of a trained model: the "Mistakes in Learning"
/// pathway of Section IV ("bad data ... a bad algorithm ... a bad system
/// design (implementation bugs, untested software), or other factors that can
/// lead to incorrect models being learnt") compressed into a controllable
/// post-hoc process.
///
/// Each [`step`](DriftInjector::step) perturbs every weight by seeded
/// Gaussian-ish noise of magnitude `intensity` and drifts the bias, so a
/// model degrades gradually — the way a silently-buggy retraining pipeline
/// would degrade a deployed model.
///
/// # Example
///
/// ```
/// use apdm_learning::{Dataset, DriftInjector, OnlineClassifier, Perceptron};
///
/// let data = Dataset::linear(400, 2, 1);
/// let mut model = Perceptron::new(2, 0.1);
/// for _ in 0..20 { model.train_epoch(&data); }
/// let before = data.accuracy(|x| model.predict(x));
///
/// let mut drift = DriftInjector::new(0.8, 11);
/// for _ in 0..50 { drift.step(&mut model); }
/// let after = data.accuracy(|x| model.predict(x));
/// assert!(after < before);
/// ```
#[derive(Debug, Clone)]
pub struct DriftInjector {
    intensity: f64,
    rng: StdRng,
    steps: u64,
}

impl DriftInjector {
    /// A drift process of the given per-step intensity.
    ///
    /// # Panics
    ///
    /// Panics when `intensity` is negative or non-finite.
    pub fn new(intensity: f64, seed: u64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and >= 0"
        );
        DriftInjector {
            intensity,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
        }
    }

    /// Steps applied so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Apply one step of corruption to a perceptron.
    pub fn step(&mut self, model: &mut Perceptron) {
        for w in model.weights_mut() {
            *w += self.intensity * self.noise();
        }
        let bias = model.bias() + self.intensity * self.noise();
        model.set_bias(bias);
        self.steps += 1;
    }

    /// Apply `n` steps.
    pub fn run(&mut self, model: &mut Perceptron, n: usize) {
        for _ in 0..n {
            self.step(model);
        }
    }

    /// Sum of three uniforms centred on zero — cheap, bounded, bell-shaped.
    fn noise(&mut self) -> f64 {
        (0..3)
            .map(|_| self.rng.random_range(-1.0..1.0))
            .sum::<f64>()
            / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, OnlineClassifier};

    fn trained() -> (Dataset, Perceptron) {
        let data = Dataset::linear(500, 2, 21);
        let mut p = Perceptron::new(2, 0.1);
        for _ in 0..25 {
            p.train_epoch(&data);
        }
        (data, p)
    }

    #[test]
    fn zero_intensity_changes_nothing() {
        let (_, mut model) = trained();
        let before = model.clone();
        let mut drift = DriftInjector::new(0.0, 1);
        drift.run(&mut model, 100);
        assert_eq!(model, before);
        assert_eq!(drift.steps(), 100);
    }

    #[test]
    fn heavy_drift_destroys_accuracy() {
        let (data, mut model) = trained();
        let before = data.accuracy(|x| model.predict(x));
        let mut drift = DriftInjector::new(1.0, 2);
        drift.run(&mut model, 200);
        let after = data.accuracy(|x| model.predict(x));
        assert!(before > 0.9);
        assert!(after < before - 0.1, "drifted accuracy {after} vs {before}");
    }

    #[test]
    fn degradation_is_monotone_in_intensity_on_average() {
        let (data, model) = trained();
        let degrade = |intensity: f64| {
            // Average over seeds to smooth noise.
            let mut total = 0.0;
            for seed in 0..5 {
                let mut m = model.clone();
                DriftInjector::new(intensity, seed).run(&mut m, 100);
                total += data.accuracy(|x| m.predict(x));
            }
            total / 5.0
        };
        let mild = degrade(0.05);
        let severe = degrade(2.0);
        assert!(
            mild > severe,
            "mild drift ({mild}) should hurt less than severe ({severe})"
        );
    }

    #[test]
    fn drift_is_seed_deterministic() {
        let (_, model) = trained();
        let run = |seed| {
            let mut m = model.clone();
            DriftInjector::new(0.5, seed).run(&mut m, 50);
            m
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn negative_intensity_rejected() {
        let _ = DriftInjector::new(-0.1, 0);
    }
}
