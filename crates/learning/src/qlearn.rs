use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tabular Q-learning over discrete states and actions.
///
/// Devices use this to improve their management policies from reward signals
/// (Section IV: the system is "Cognitive: ... improves upon its policy
/// management capabilities over time"). Reward *mis-specification* — passing
/// a subtly wrong reward — is one of the cleanest ways to demonstrate the
/// "Mistakes in Learning" pathway, which experiment E7 does.
///
/// # Example
///
/// ```
/// use apdm_learning::QLearner;
///
/// // Two states, two actions; action 1 in state 0 pays off.
/// let mut q = QLearner::new(2, 2, 0.5, 0.9, 0.1, 7);
/// for _ in 0..200 {
///     let a = q.choose(0);
///     let reward = if a == 1 { 1.0 } else { 0.0 };
///     q.update(0, a, reward, 1);
/// }
/// assert_eq!(q.best_action(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QLearner {
    n_states: usize,
    n_actions: usize,
    q: Vec<f64>,
    alpha: f64,
    gamma: f64,
    epsilon: f64,
    rng: StdRng,
}

impl QLearner {
    /// A zero-initialized learner.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero, `alpha` is outside `(0, 1]`,
    /// `gamma` outside `[0, 1)` or `epsilon` outside `[0, 1]`.
    pub fn new(
        n_states: usize,
        n_actions: usize,
        alpha: f64,
        gamma: f64,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        assert!(n_states > 0 && n_actions > 0, "dimensions must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        QLearner {
            n_states,
            n_actions,
            q: vec![0.0; n_states * n_actions],
            alpha,
            gamma,
            epsilon,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn q(&self, state: usize, action: usize) -> f64 {
        assert!(
            state < self.n_states && action < self.n_actions,
            "out of range"
        );
        self.q[state * self.n_actions + action]
    }

    /// Greedy action for a state (ties to the lowest index).
    pub fn best_action(&self, state: usize) -> usize {
        let row = &self.q[state * self.n_actions..(state + 1) * self.n_actions];
        row.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(std::cmp::Ordering::Greater)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Epsilon-greedy action selection.
    pub fn choose(&mut self, state: usize) -> usize {
        if self.rng.random_range(0.0..1.0) < self.epsilon {
            self.rng.random_range(0..self.n_actions)
        } else {
            self.best_action(state)
        }
    }

    /// One Q-learning backup for the transition `(state, action) -> next`
    /// with `reward`.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next: usize) {
        assert!(
            state < self.n_states && action < self.n_actions && next < self.n_states,
            "out of range"
        );
        let best_next = self.q(next, self.best_action(next));
        let idx = state * self.n_actions + action;
        self.q[idx] += self.alpha * (reward + self.gamma * best_next - self.q[idx]);
    }

    /// A safely-interruptible backup (the paper's introduction cites
    /// "dynamic safe interruptibility" for multi-agent RL as a complementary
    /// prevention direction — its reference \[7\]).
    ///
    /// When a human overseer interrupts an action, the observed outcome is
    /// an artifact of the interruption, not of the environment; a naive
    /// learner that absorbs it learns to avoid (or exploit) the overseer
    /// rather than the task. The safe variant simply excludes interrupted
    /// transitions from learning, so the learned policy converges to the
    /// same values it would have without interruptions.
    ///
    /// Returns whether the transition was actually learned from.
    pub fn update_interruptible(
        &mut self,
        state: usize,
        action: usize,
        reward: f64,
        next: usize,
        interrupted: bool,
    ) -> bool {
        if interrupted {
            return false;
        }
        self.update(state, action, reward, next);
        true
    }

    /// The greedy policy: best action per state.
    pub fn policy(&self) -> Vec<usize> {
        (0..self.n_states).map(|s| self.best_action(s)).collect()
    }

    /// Set exploration rate (e.g. anneal to 0 for evaluation).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_single_state_bandit() {
        let mut q = QLearner::new(1, 3, 0.5, 0.0, 0.2, 1);
        for _ in 0..300 {
            let a = q.choose(0);
            let reward = match a {
                1 => 1.0,
                _ => 0.0,
            };
            q.update(0, a, reward, 0);
        }
        assert_eq!(q.best_action(0), 1);
        assert!(q.q(0, 1) > q.q(0, 0));
    }

    #[test]
    fn learns_two_step_chain() {
        // s0 --a1--> s1 --a1--> reward. Gamma propagates value back to s0.
        let mut q = QLearner::new(3, 2, 0.5, 0.9, 0.3, 2);
        for _ in 0..500 {
            let mut s = 0;
            while s != 2 {
                let a = q.choose(s);
                let (next, r) = match (s, a) {
                    (0, 1) => (1, 0.0),
                    (1, 1) => (2, 1.0),
                    _ => (s, -0.1),
                };
                q.update(s, a, r, next);
                if next == s {
                    break;
                }
                s = next;
            }
        }
        assert_eq!(q.policy()[..2], [1, 1]);
        assert!(q.q(0, 1) > 0.5, "discounted value should reach s0");
    }

    #[test]
    fn wrong_reward_learns_wrong_policy() {
        // The "mistakes in learning" pathway: reward sign flipped.
        let mut q = QLearner::new(1, 2, 0.5, 0.0, 0.2, 3);
        for _ in 0..200 {
            let a = q.choose(0);
            // The *intended* good action is 0, but the reward says otherwise.
            let reward = if a == 1 { 1.0 } else { 0.0 };
            q.update(0, a, reward, 0);
        }
        assert_eq!(
            q.best_action(0),
            1,
            "learner faithfully learns the wrong objective"
        );
    }

    #[test]
    fn interruptions_bias_a_naive_learner_but_not_a_safe_one() {
        // Action 1 truly pays 1.0, action 0 pays 0.2. The overseer
        // interrupts action 1 with probability 0.9 (outcome reward 0).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut naive = QLearner::new(1, 2, 0.3, 0.0, 0.3, 6);
        let mut safe = QLearner::new(1, 2, 0.3, 0.0, 0.3, 6);
        for _ in 0..2000 {
            for learner_is_safe in [false, true] {
                let learner = if learner_is_safe {
                    &mut safe
                } else {
                    &mut naive
                };
                let a = learner.choose(0);
                let interrupted = a == 1 && rng.random_range(0.0..1.0) < 0.9;
                let reward = if interrupted {
                    0.0
                } else if a == 1 {
                    1.0
                } else {
                    0.2
                };
                if learner_is_safe {
                    learner.update_interruptible(0, a, reward, 0, interrupted);
                } else {
                    learner.update(0, a, reward, 0);
                }
            }
        }
        // The naive learner learned the *overseer*, not the task: action 1
        // looks worth ~0.1 < 0.2, so it prefers the inferior action 0.
        assert_eq!(
            naive.best_action(0),
            0,
            "naive learner biased by interruptions"
        );
        // The safe learner excluded interrupted transitions and still knows
        // action 1 is better — it remains both correct and interruptible.
        assert_eq!(safe.best_action(0), 1, "safe learner unbiased");
        assert!(safe.q(0, 1) > 0.8);
    }

    #[test]
    fn interruptible_update_reports_learning() {
        let mut q = QLearner::new(1, 2, 0.5, 0.0, 0.0, 0);
        assert!(!q.update_interruptible(0, 1, 5.0, 0, true));
        assert_eq!(q.q(0, 1), 0.0, "interrupted transition not absorbed");
        assert!(q.update_interruptible(0, 1, 5.0, 0, false));
        assert!(q.q(0, 1) > 0.0);
    }

    #[test]
    fn zero_epsilon_is_greedy() {
        let mut q = QLearner::new(1, 2, 0.5, 0.0, 0.0, 4);
        q.update(0, 1, 1.0, 0);
        for _ in 0..50 {
            assert_eq!(q.choose(0), 1);
        }
    }

    #[test]
    fn seeded_runs_are_identical() {
        let run = |seed| {
            let mut q = QLearner::new(2, 2, 0.5, 0.5, 0.5, seed);
            let mut actions = Vec::new();
            for i in 0..100 {
                let a = q.choose(i % 2);
                actions.push(a);
                q.update(i % 2, a, (a == 0) as u8 as f64, (i + 1) % 2);
            }
            actions
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_bounds_checked() {
        let mut q = QLearner::new(2, 2, 0.5, 0.5, 0.0, 0);
        q.update(2, 0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = QLearner::new(1, 1, 0.0, 0.5, 0.0, 0);
    }
}
