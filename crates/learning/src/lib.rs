//! Learning substrate and malevolence-pathway models.
//!
//! Section III requires a Skynet-capable system to be **Learning** ("the
//! system is not limited to a static set of knowledge") and **Cognitive**
//! ("it can take actions that it was not originally programmed to do");
//! Section IV enumerates the pathways by which learning goes wrong. This
//! crate supplies both sides:
//!
//! * [`Perceptron`] / [`NearestCentroid`] — simple online classifiers devices
//!   use to label situations (e.g. safe/unsafe) from observations;
//! * [`QLearner`] — tabular reinforcement learning for policy improvement;
//! * [`BehaviorClone`] — learning by emulating a (fallible) human operator
//!   (Section IV, "Inappropriate Emulation": "humans are imperfect and prone
//!   to make mistakes, and the encoding of imperfect human behavior can lead
//!   to a mistaken and sometimes malevolent machine");
//! * [`adversarial`] — dataset attacks: label poisoning, feature
//!   obfuscation, data denial (Section IV, "Adversarial Machine Learning");
//! * [`DriftInjector`] — post-training model corruption standing in for "bad
//!   data, a bad algorithm, a bad system design" (Section IV, "Mistakes in
//!   Learning").
//!
//! Participates in experiments **E5**, **E7** (DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
mod clone;
mod dataset;
mod drift;
mod online;
mod qlearn;

pub use clone::BehaviorClone;
pub use dataset::{Dataset, Sample};
pub use drift::DriftInjector;
pub use online::{NearestCentroid, OnlineClassifier, Perceptron};
pub use qlearn::QLearner;
