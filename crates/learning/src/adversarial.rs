//! Adversarial machine learning attack models over datasets.
//!
//! Section IV, "Adversarial Machine Learning": "Attacks in this area include
//! attempts to **poison data** used for training, **obfuscating features** of
//! data used for training, **denying access to selected sets of data**, along
//! with other measures that can interfere with the training and correct use
//! of trained models. Counter-measures ... enable machines to exclude
//! selected training data from consideration, which can also lead to machines
//! learning unexpected patterns."
//!
//! Each attack is a pure, seeded transformation of a [`Dataset`]; experiments
//! train identical learners on clean and attacked data and compare.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, Sample};

/// Flip the label of each sample with probability `rate` (label poisoning).
pub fn poison_labels(data: &Dataset, rate: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    data.samples()
        .iter()
        .map(|s| {
            let y = if rng.random_range(0.0..1.0) < rate {
                !s.y
            } else {
                s.y
            };
            Sample::new(s.x.clone(), y)
        })
        .collect()
}

/// Poison only *targeted* samples: flip labels of samples selected by the
/// predicate (e.g. "everything near the decision boundary"), modelling a
/// careful adversary rather than random noise.
pub fn poison_targeted(data: &Dataset, target: impl Fn(&Sample) -> bool) -> Dataset {
    data.samples()
        .iter()
        .map(|s| {
            if target(s) {
                Sample::new(s.x.clone(), !s.y)
            } else {
                s.clone()
            }
        })
        .collect()
}

/// Obfuscate feature `dim` by replacing it with seeded uniform noise over
/// `[lo, hi]` — the feature carries no signal afterwards.
pub fn obfuscate_feature(data: &Dataset, dim: usize, lo: f64, hi: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    data.samples()
        .iter()
        .map(|s| {
            let mut x = s.x.clone();
            if dim < x.len() {
                x[dim] = rng.random_range(lo..=hi);
            }
            Sample::new(x, s.y)
        })
        .collect()
}

/// Deny access to data: drop every sample matching the predicate. The paper
/// notes the *counter-measure* (excluding data) has the same shape — and the
/// same risk of "learning unexpected patterns".
pub fn deny_data(data: &Dataset, deny: impl Fn(&Sample) -> bool) -> Dataset {
    data.samples()
        .iter()
        .filter(|s| !deny(s))
        .cloned()
        .collect()
}

/// Summary of how an attack changed a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackReport {
    /// Samples in the clean dataset.
    pub clean_len: usize,
    /// Samples in the attacked dataset.
    pub attacked_len: usize,
    /// Samples whose label differs (among shared prefix).
    pub labels_flipped: usize,
}

/// Compare a clean and an attacked dataset.
pub fn report(clean: &Dataset, attacked: &Dataset) -> AttackReport {
    let labels_flipped = clean
        .samples()
        .iter()
        .zip(attacked.samples())
        .filter(|(a, b)| a.x == b.x && a.y != b.y)
        .count();
    AttackReport {
        clean_len: clean.len(),
        attacked_len: attacked.len(),
        labels_flipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnlineClassifier, Perceptron};

    fn train(data: &Dataset) -> Perceptron {
        let mut p = Perceptron::new(2, 0.1);
        for _ in 0..25 {
            p.train_epoch(data);
        }
        p
    }

    #[test]
    fn zero_rate_poison_is_identity() {
        let clean = Dataset::linear(100, 2, 1);
        assert_eq!(poison_labels(&clean, 0.0, 9), clean);
    }

    #[test]
    fn full_rate_poison_flips_everything() {
        let clean = Dataset::linear(100, 2, 1);
        let poisoned = poison_labels(&clean, 1.0, 9);
        assert_eq!(report(&clean, &poisoned).labels_flipped, 100);
    }

    #[test]
    fn poison_degrades_learned_accuracy() {
        let clean = Dataset::linear(600, 2, 2);
        let poisoned = poison_labels(&clean, 0.4, 3);
        let p_clean = train(&clean);
        let p_poisoned = train(&poisoned);
        let acc_clean = clean.accuracy(|x| p_clean.predict(x));
        let acc_poisoned = clean.accuracy(|x| p_poisoned.predict(x));
        assert!(
            acc_clean > acc_poisoned + 0.05,
            "poisoning should cost accuracy: {acc_clean} vs {acc_poisoned}"
        );
    }

    #[test]
    fn targeted_poison_flips_only_targets() {
        let clean = Dataset::linear(200, 2, 4);
        let attacked = poison_targeted(&clean, |s| s.y);
        let flipped = report(&clean, &attacked).labels_flipped;
        assert_eq!(flipped, clean.positives());
        // Every positive became negative; negatives were untouched.
        assert_eq!(attacked.positives(), 0);
    }

    #[test]
    fn obfuscation_destroys_one_features_signal() {
        let clean = Dataset::linear(400, 2, 5);
        let fogged = obfuscate_feature(&clean, 0, 0.0, 1.0, 6);
        // Labels unchanged, features changed.
        assert_eq!(report(&clean, &fogged).labels_flipped, 0);
        let differing = clean
            .samples()
            .iter()
            .zip(fogged.samples())
            .filter(|(a, b)| a.x != b.x)
            .count();
        assert!(differing > 390);
    }

    #[test]
    fn obfuscating_missing_dim_is_identity() {
        let clean = Dataset::linear(50, 2, 5);
        assert_eq!(obfuscate_feature(&clean, 7, 0.0, 1.0, 6), clean);
    }

    #[test]
    fn deny_data_biases_the_learned_model() {
        let clean = Dataset::linear(600, 2, 7);
        // Deny all positive examples: the learner can only conclude "never
        // positive".
        let denied = deny_data(&clean, |s| s.y);
        assert_eq!(denied.positives(), 0);
        let p = train(&denied);
        let positive_rate = clean.samples().iter().filter(|s| p.predict(&s.x)).count();
        assert!(
            positive_rate < clean.positives() / 4,
            "denial should suppress positive predictions"
        );
    }

    #[test]
    fn attacks_are_seed_deterministic() {
        let clean = Dataset::linear(100, 2, 8);
        assert_eq!(poison_labels(&clean, 0.3, 1), poison_labels(&clean, 0.3, 1));
        assert_eq!(
            obfuscate_feature(&clean, 0, 0.0, 1.0, 2),
            obfuscate_feature(&clean, 0, 0.0, 1.0, 2)
        );
    }
}
