use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled training example: feature vector and binary label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values.
    pub x: Vec<f64>,
    /// Label (`true` = positive class, e.g. "situation is dangerous").
    pub y: bool,
}

impl Sample {
    /// A sample from features and a label.
    pub fn new(x: Vec<f64>, y: bool) -> Self {
        Sample { x, y }
    }
}

/// A labelled dataset with deterministic synthetic generators.
///
/// # Example
///
/// ```
/// use apdm_learning::Dataset;
///
/// // A linearly separable problem: y = (x0 + x1 > 1.0).
/// let data = Dataset::linear(200, 2, 42);
/// assert_eq!(data.len(), 200);
/// assert!(data.positives() > 20 && data.positives() < 180);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Wrap existing samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// A linearly separable dataset in `[0,1]^dims`: label is true when the
    /// feature sum exceeds `dims / 2`.
    pub fn linear(n: usize, dims: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let threshold = dims as f64 / 2.0;
        let samples = (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..dims).map(|_| rng.random_range(0.0..1.0)).collect();
                let y = x.iter().sum::<f64>() > threshold;
                Sample::new(x, y)
            })
            .collect();
        Dataset { samples }
    }

    /// Append a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of positive-label samples.
    pub fn positives(&self) -> usize {
        self.samples.iter().filter(|s| s.y).count()
    }

    /// Split into (train, test) at `frac` (clamped to `[0,1]`), preserving
    /// order (generators already shuffle).
    pub fn split(&self, frac: f64) -> (Dataset, Dataset) {
        let k = ((self.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
        (
            Dataset::from_samples(self.samples[..k].to_vec()),
            Dataset::from_samples(self.samples[k..].to_vec()),
        )
    }

    /// Accuracy of a predictor over this dataset (1.0 on empty data — there
    /// is nothing to get wrong).
    pub fn accuracy(&self, mut predict: impl FnMut(&[f64]) -> bool) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        let correct = self.samples.iter().filter(|s| predict(&s.x) == s.y).count();
        correct as f64 / self.samples.len() as f64
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_deterministic_per_seed() {
        assert_eq!(Dataset::linear(50, 3, 7), Dataset::linear(50, 3, 7));
        assert_ne!(Dataset::linear(50, 3, 7), Dataset::linear(50, 3, 8));
    }

    #[test]
    fn linear_labels_match_rule() {
        let d = Dataset::linear(100, 2, 1);
        for s in d.samples() {
            assert_eq!(s.y, s.x.iter().sum::<f64>() > 1.0);
        }
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::linear(100, 2, 1);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let (all, none) = d.split(2.0);
        assert_eq!(all.len(), 100);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn accuracy_of_oracle_is_one() {
        let d = Dataset::linear(100, 2, 1);
        let acc = d.accuracy(|x| x.iter().sum::<f64>() > 1.0);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn accuracy_of_inverted_oracle_is_zero() {
        let d = Dataset::linear(100, 2, 1);
        let acc = d.accuracy(|x| x.iter().sum::<f64>() <= 1.0);
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn empty_dataset_accuracy_is_one() {
        assert_eq!(Dataset::new().accuracy(|_| true), 1.0);
    }
}
