use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Behaviour cloning from a (fallible) human operator.
///
/// Section IV, "Inappropriate Emulation": "A common way for machines to
/// improve themselves and learn new skills is to emulate the behavior of
/// humans by observation. After a sufficient number of observations of how a
/// human handles a situation, a machine can create a system to replicate it.
/// However, humans are imperfect and prone to make mistakes, and the encoding
/// of imperfect human behavior can lead to a mistaken and sometimes
/// malevolent machine forming."
///
/// States and actions are discrete; the clone records, per state, how often
/// the demonstrator took each action and replays the majority choice.
///
/// # Example
///
/// ```
/// use apdm_learning::BehaviorClone;
///
/// let mut clone = BehaviorClone::new();
/// // The human presses "brake" (action 0) in state 3, mostly.
/// clone.observe(3, 0);
/// clone.observe(3, 0);
/// clone.observe(3, 1); // one slip
/// assert_eq!(clone.imitate(3), Some(0));
/// assert!(clone.confidence(3) > 0.6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BehaviorClone {
    /// state -> action -> count.
    counts: BTreeMap<usize, BTreeMap<usize, u64>>,
    observations: u64,
}

impl BehaviorClone {
    /// A clone with no observations.
    pub fn new() -> Self {
        BehaviorClone::default()
    }

    /// Record that the demonstrator took `action` in `state`.
    pub fn observe(&mut self, state: usize, action: usize) {
        *self
            .counts
            .entry(state)
            .or_default()
            .entry(action)
            .or_insert(0) += 1;
        self.observations += 1;
    }

    /// The majority action for a state (`None` when unobserved). Ties break
    /// toward the smaller action index.
    pub fn imitate(&self, state: usize) -> Option<usize> {
        let actions = self.counts.get(&state)?;
        actions
            .iter()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(&action, _)| action)
    }

    /// Fraction of observations in `state` agreeing with the majority action
    /// (0 when unobserved).
    pub fn confidence(&self, state: usize) -> f64 {
        let Some(actions) = self.counts.get(&state) else {
            return 0.0;
        };
        let total: u64 = actions.values().sum();
        let max = actions.values().max().copied().unwrap_or(0);
        if total == 0 {
            0.0
        } else {
            max as f64 / total as f64
        }
    }

    /// Total observations absorbed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of distinct states observed.
    pub fn states_seen(&self) -> usize {
        self.counts.len()
    }

    /// Train from a scripted demonstrator who *intends* `intended(state)`
    /// but errs with probability `error_rate` (choosing uniformly among
    /// `n_actions`). Returns how many demonstrations were erroneous — the
    /// imperfection the clone will faithfully encode.
    pub fn observe_demonstrator(
        &mut self,
        states: impl IntoIterator<Item = usize>,
        intended: impl Fn(usize) -> usize,
        n_actions: usize,
        error_rate: f64,
        seed: u64,
    ) -> u64 {
        assert!(n_actions > 0, "n_actions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut errors = 0;
        for state in states {
            let intended_action = intended(state);
            let action = if rng.random_range(0.0..1.0) < error_rate {
                errors += 1;
                rng.random_range(0..n_actions)
            } else {
                intended_action
            };
            self.observe(state, action);
        }
        errors
    }

    /// Fidelity to an intended policy over the observed states: fraction of
    /// states where the clone's majority action equals the intent.
    pub fn fidelity(&self, intended: impl Fn(usize) -> usize) -> f64 {
        if self.counts.is_empty() {
            return 1.0;
        }
        let agree = self
            .counts
            .keys()
            .filter(|&&s| self.imitate(s) == Some(intended(s)))
            .count();
        agree as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_state_yields_none() {
        let c = BehaviorClone::new();
        assert_eq!(c.imitate(0), None);
        assert_eq!(c.confidence(0), 0.0);
    }

    #[test]
    fn majority_wins_ties_to_lower_index() {
        let mut c = BehaviorClone::new();
        c.observe(0, 2);
        c.observe(0, 1);
        assert_eq!(c.imitate(0), Some(1));
        c.observe(0, 2);
        assert_eq!(c.imitate(0), Some(2));
    }

    #[test]
    fn perfect_demonstrator_clones_perfectly() {
        let mut c = BehaviorClone::new();
        let errors = c.observe_demonstrator((0..100).map(|i| i % 5), |s| s % 3, 3, 0.0, 1);
        assert_eq!(errors, 0);
        assert_eq!(c.fidelity(|s| s % 3), 1.0);
        assert_eq!(c.states_seen(), 5);
    }

    #[test]
    fn noisy_demonstrator_degrades_fidelity() {
        let mut perfect = BehaviorClone::new();
        perfect.observe_demonstrator((0..500).map(|i| i % 50), |_| 0, 4, 0.0, 2);
        let mut sloppy = BehaviorClone::new();
        let errors = sloppy.observe_demonstrator((0..500).map(|i| i % 50), |_| 0, 4, 0.9, 2);
        assert!(errors > 300);
        assert!(sloppy.fidelity(|_| 0) < perfect.fidelity(|_| 0));
    }

    #[test]
    fn few_observations_amplify_individual_mistakes() {
        // One observation per state at 50% error: roughly half the states
        // encode a mistake as *the* policy — the paper's amplification
        // concern in miniature.
        let mut c = BehaviorClone::new();
        c.observe_demonstrator(0..100, |_| 0, 2, 0.5, 3);
        let fidelity = c.fidelity(|_| 0);
        assert!(fidelity < 0.9, "expected heavy corruption, got {fidelity}");
    }

    #[test]
    fn confidence_reflects_agreement() {
        let mut c = BehaviorClone::new();
        for _ in 0..9 {
            c.observe(1, 0);
        }
        c.observe(1, 1);
        assert!((c.confidence(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn observation_count_accumulates() {
        let mut c = BehaviorClone::new();
        c.observe(0, 0);
        c.observe(1, 0);
        assert_eq!(c.observations(), 2);
    }
}
