use serde::{Deserialize, Serialize};

use crate::Dataset;

/// A binary classifier that learns online, one sample at a time.
pub trait OnlineClassifier {
    /// Predict the label of a feature vector.
    fn predict(&self, x: &[f64]) -> bool;

    /// Learn from one labelled example; returns whether the pre-update
    /// prediction was already correct.
    fn update(&mut self, x: &[f64], y: bool) -> bool;

    /// Train one pass over a dataset; returns the number of mistakes made.
    fn train_epoch(&mut self, data: &Dataset) -> usize {
        data.samples()
            .iter()
            .filter(|s| !self.update(&s.x, s.y))
            .count()
    }
}

/// The classic perceptron: a linear online learner.
///
/// # Example
///
/// ```
/// use apdm_learning::{Dataset, OnlineClassifier, Perceptron};
///
/// let data = Dataset::linear(500, 2, 3);
/// let mut p = Perceptron::new(2, 0.1);
/// for _ in 0..20 {
///     p.train_epoch(&data);
/// }
/// assert!(data.accuracy(|x| p.predict(x)) > 0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perceptron {
    weights: Vec<f64>,
    bias: f64,
    rate: f64,
}

impl Perceptron {
    /// A zero-initialized perceptron over `dims` features.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not finite and positive.
    pub fn new(dims: usize, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "learning rate must be finite and positive"
        );
        Perceptron {
            weights: vec![0.0; dims],
            bias: 0.0,
            rate,
        }
    }

    /// The current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable weights — exposed so [`DriftInjector`](crate::DriftInjector)
    /// and attack models can corrupt a trained model in place.
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Set the bias (drift/corruption hook).
    pub fn set_bias(&mut self, bias: f64) {
        self.bias = bias;
    }

    /// Raw decision margin (positive means class true).
    pub fn margin(&self, x: &[f64]) -> f64 {
        let dot: f64 = self.weights.iter().zip(x).map(|(w, v)| w * v).sum();
        dot + self.bias
    }
}

impl OnlineClassifier for Perceptron {
    fn predict(&self, x: &[f64]) -> bool {
        self.margin(x) > 0.0
    }

    fn update(&mut self, x: &[f64], y: bool) -> bool {
        let predicted = self.predict(x);
        if predicted == y {
            return true;
        }
        let dir = if y { 1.0 } else { -1.0 };
        for (w, v) in self.weights.iter_mut().zip(x) {
            *w += self.rate * dir * v;
        }
        self.bias += self.rate * dir;
        false
    }
}

/// Nearest-centroid classifier: keeps a running mean per class and predicts
/// the closer one. Robust and parameter-free; the contrast case to the
/// perceptron in poisoning experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearestCentroid {
    pos: Vec<f64>,
    neg: Vec<f64>,
    pos_n: u64,
    neg_n: u64,
}

impl NearestCentroid {
    /// A centroid model over `dims` features with no observations.
    pub fn new(dims: usize) -> Self {
        NearestCentroid {
            pos: vec![0.0; dims],
            neg: vec![0.0; dims],
            pos_n: 0,
            neg_n: 0,
        }
    }

    /// Observations absorbed per class: `(positives, negatives)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.pos_n, self.neg_n)
    }

    fn dist2(center: &[f64], x: &[f64]) -> f64 {
        center.iter().zip(x).map(|(c, v)| (c - v) * (c - v)).sum()
    }
}

impl OnlineClassifier for NearestCentroid {
    fn predict(&self, x: &[f64]) -> bool {
        match (self.pos_n, self.neg_n) {
            (0, 0) => false,
            (_, 0) => true,
            (0, _) => false,
            _ => Self::dist2(&self.pos, x) < Self::dist2(&self.neg, x),
        }
    }

    fn update(&mut self, x: &[f64], y: bool) -> bool {
        let correct = self.predict(x) == y;
        let (center, n) = if y {
            (&mut self.pos, &mut self.pos_n)
        } else {
            (&mut self.neg, &mut self.neg_n)
        };
        *n += 1;
        let k = 1.0 / *n as f64;
        for (c, v) in center.iter_mut().zip(x) {
            *c += k * (v - *c);
        }
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_learns_linear_problem() {
        let data = Dataset::linear(500, 3, 11);
        let mut p = Perceptron::new(3, 0.1);
        for _ in 0..30 {
            p.train_epoch(&data);
        }
        assert!(data.accuracy(|x| p.predict(x)) > 0.93);
    }

    #[test]
    fn perceptron_mistakes_decrease_over_epochs() {
        let data = Dataset::linear(300, 2, 5);
        let mut p = Perceptron::new(2, 0.1);
        let first = p.train_epoch(&data);
        for _ in 0..10 {
            p.train_epoch(&data);
        }
        let later = p.train_epoch(&data);
        assert!(later < first, "expected {later} < {first}");
    }

    #[test]
    fn perceptron_update_reports_correctness() {
        let mut p = Perceptron::new(1, 1.0);
        // Fresh model predicts false everywhere; a true sample is a mistake.
        assert!(!p.update(&[1.0], true));
        assert!(p.predict(&[1.0]));
        assert!(p.update(&[1.0], true));
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn perceptron_rejects_bad_rate() {
        let _ = Perceptron::new(2, 0.0);
    }

    #[test]
    fn centroid_learns_linear_problem() {
        let data = Dataset::linear(600, 2, 13);
        let mut c = NearestCentroid::new(2);
        c.train_epoch(&data);
        assert!(data.accuracy(|x| c.predict(x)) > 0.85);
    }

    #[test]
    fn centroid_with_one_class_predicts_it() {
        let mut c = NearestCentroid::new(1);
        c.update(&[0.5], true);
        assert!(c.predict(&[100.0]));
        let mut c2 = NearestCentroid::new(1);
        c2.update(&[0.5], false);
        assert!(!c2.predict(&[0.5]));
    }

    #[test]
    fn empty_centroid_predicts_negative() {
        let c = NearestCentroid::new(2);
        assert!(!c.predict(&[0.0, 0.0]));
        assert_eq!(c.counts(), (0, 0));
    }

    #[test]
    fn centroid_counts_track_updates() {
        let mut c = NearestCentroid::new(1);
        c.update(&[1.0], true);
        c.update(&[0.0], false);
        c.update(&[1.0], true);
        assert_eq!(c.counts(), (2, 1));
    }
}
