//! G1 — generative-policy microbenchmarks (Section IV): policy generation
//! throughput from grammars and interaction graphs, and the cost of
//! equivalence-based deduplication.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::banner;
use apdm_device::Attributes;
use apdm_genpolicy::{
    ActionForm, ConditionForm, InteractionGraph, KindSpec, PolicyGenerator, PolicyGrammar,
    PolicyTemplate,
};
use apdm_policy::{Action, Condition, PolicyEngine};
use apdm_statespace::VarId;

fn grammar(n_events: usize, n_thresholds: usize) -> PolicyGrammar {
    let mut g = PolicyGrammar::new();
    for i in 0..n_events {
        g = g.event(format!("event-{i}"));
    }
    let thresholds: Vec<f64> = (0..n_thresholds).map(|i| i as f64).collect();
    g.condition(ConditionForm::Always)
        .condition(ConditionForm::VarAtLeast(VarId(0), thresholds))
        .action(ActionForm::Signal("report".into()))
        .action(ActionForm::Invoke {
            actuator: "vent".into(),
            var: VarId(0),
            steps: vec![-1.0, -5.0],
            physical: false,
        })
}

fn graph(n_kinds: usize) -> InteractionGraph {
    let mut g = InteractionGraph::new();
    g.add_kind(KindSpec::new("observer"));
    for i in 0..n_kinds {
        g.add_kind(KindSpec::new(format!("kind-{i}")));
        g.add_interaction("observer", format!("kind-{i}"), "dispatch");
    }
    g
}

fn print_table() {
    banner(
        "G1",
        "generative policies: grammar size and generation volume (Section IV)",
    );
    println!(
        "{:<30} {:>12}",
        "grammar (events x thresholds)", "space size"
    );
    for &(e, t) in &[(2usize, 4usize), (8, 16), (32, 64)] {
        println!(
            "{:<30} {:>12}",
            format!("{e} x {t}"),
            grammar(e, t).space_size()
        );
    }
    println!();
    println!("{:<30} {:>12}", "graph kinds discovered", "rules generated");
    for &n in &[8usize, 64, 256] {
        let mut gen = PolicyGenerator::new("observer", graph(n));
        gen.template_for(
            "dispatch",
            PolicyTemplate::new(
                "dispatch-{peer}",
                "sighting",
                Condition::True,
                Action::adjust("radio-{peer}", Default::default()),
            ),
        );
        let mut total = 0;
        for i in 0..n {
            total += gen
                .on_discovery(&format!("kind-{i}"), "us", &Attributes::new())
                .len();
        }
        println!("{:<30} {:>12}", n, total);
    }
    println!();
    println!("expected shape: generation scales linearly with discovered kinds —");
    println!("the scaling a human policy author cannot match (the motivation of");
    println!("Section IV) and the attack surface Section VI guards against");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("g1_genpolicy");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    for &(e, t) in &[(2usize, 4usize), (8, 16)] {
        let g = grammar(e, t);
        group.bench_with_input(
            BenchmarkId::new("grammar_enumerate", format!("{e}x{t}")),
            &g,
            |b, g| {
                b.iter(|| g.enumerate());
            },
        );
    }

    for &n in &[8usize, 64] {
        group.bench_with_input(BenchmarkId::new("discovery_generation", n), &n, |b, &n| {
            b.iter(|| {
                let mut gen = PolicyGenerator::new("observer", graph(n));
                gen.template_for(
                    "dispatch",
                    PolicyTemplate::new(
                        "dispatch-{peer}",
                        "sighting",
                        Condition::True,
                        Action::adjust("radio-{peer}", Default::default()),
                    ),
                );
                let mut total = 0;
                for i in 0..n {
                    total += gen
                        .on_discovery(&format!("kind-{i}"), "us", &Attributes::new())
                        .len();
                }
                total
            });
        });
    }

    // Equivalence-dedup cost: absorbing a rule set into a loaded engine.
    let rules = grammar(8, 16).enumerate();
    group.bench_function("engine_dedup_absorb", |b| {
        b.iter(|| {
            let mut engine = PolicyEngine::new();
            for rule in &rules {
                engine.add_rule_deduped(rule.clone());
            }
            engine.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
