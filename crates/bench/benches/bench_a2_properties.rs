//! A2 — the Skynet scorecard: the six Section-III properties measured over a
//! generative fleet, with and without guards, under a cyber attack.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::banner;
use apdm_device::{Device, DeviceId, DeviceKind, OrgId};
use apdm_guards::{GuardStack, PreActionCheck};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_sim::faults::{FaultInjector, Pathway};
use apdm_sim::runner::skynet_score;
use apdm_sim::{actions, Fleet, FleetConfig, SkynetScore, World, WorldConfig};
use apdm_statespace::{StateDelta, StateSchema};

fn run(guarded: bool) -> SkynetScore {
    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let mut world = World::new(WorldConfig {
        width: 20,
        height: 20,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    for i in 0..5 {
        world.add_human(vec![(5, 4 * i), (6, 4 * i)], true);
    }
    let mut fleet = Fleet::new(FleetConfig::default());
    for i in 0..8u64 {
        let org = if i % 2 == 0 { "us" } else { "uk" };
        let mut device = Device::builder(i, DeviceKind::new("drone"), OrgId::new(org))
            .schema(schema.clone())
            .rule(EcaRule::new(
                "patrol",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::MOVE, StateDelta::empty())
                    .with_param("dx", "1")
                    .physical(),
            ))
            .build();
        device.engine_mut().add_rule(
            EcaRule::new(
                "generated-scan",
                Event::pattern("scan"),
                Condition::True,
                Action::noop(),
            )
            .generated(),
        );
        let stack = if guarded {
            GuardStack::new().with_preaction(PreActionCheck::new())
        } else {
            GuardStack::new()
        };
        fleet.add(device, stack, (5 + (i as i32 % 3), 2 * i as i32));
    }
    let mut injector = FaultInjector::new(Pathway::CyberAttack, 3);
    injector.inject(&mut fleet);
    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=60 {
        injector.tick(&mut fleet);
        fleet.step(&mut world, t, &events);
    }
    skynet_score(&fleet, &world, 2, 2)
}

fn print_table() {
    banner(
        "A2",
        "Skynet property scorecard under cyber attack (Section III)",
    );
    println!(
        "{:<10} {:>5} {:>6} {:>5} {:>5} {:>5} {:>11} {:>12} {:>15}",
        "fleet", "net", "learn", "cog", "org", "phys", "MALEVOLENT", "capability", "verdict"
    );
    for guarded in [false, true] {
        let s = run(guarded);
        println!(
            "{:<10} {:>5.2} {:>6.2} {:>5.2} {:>5.2} {:>5.2} {:>11.2} {:>12.2} {:>15}",
            if guarded { "guarded" } else { "unguarded" },
            s.networked,
            s.learning,
            s.cognitive,
            s.multi_org,
            s.physical,
            s.malevolent,
            s.capability(),
            if s.is_skynet() {
                "SKYNET FORMED"
            } else {
                "not Skynet"
            }
        );
    }
    println!();
    println!("expected shape: both fleets score high on the five capability");
    println!("properties; only the unguarded one acquires malevolence");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_properties");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for guarded in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("scorecard", if guarded { "guarded" } else { "unguarded" }),
            &guarded,
            |b, &g| {
                b.iter(|| run(g));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
