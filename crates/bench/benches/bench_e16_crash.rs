//! E16 — kill-and-resume crash tolerance of the decision service. The
//! table crosses rotation budget × {static, balanced} scheduling; each
//! cell runs one golden (uninterrupted) run, then simulates a SIGKILL at
//! every swept crash point — tick boundaries and torn-write byte offsets
//! inside segment files, anchor frames included — restores from the
//! latest valid checkpoint, replays the suffix at rotating worker thread
//! counts {1, 3, 8}, and diffs against the golden run. Asserted claims:
//!
//! (a) zero divergence: for **every** crash point, the resumed run's
//!     decision suffix and sealed segment bytes are identical to golden;
//! (b) zero verification failures: every resumed ledger passes the full
//!     segment-chain + anchor check, retention pruning included;
//! (c) bounded recovery: no crash point discards (and therefore replays)
//!     more than ~two segments' worth of records, independent of run
//!     length — the point of rotation;
//! (d) the checkpoint machinery never leaks into results: for each
//!     budget, the static and balanced golden runs seal digest-identical
//!     ledgers, and rotation actually fired (every cell holds > 1
//!     segment) with retention engaged (segments were pruned).
//!
//! The sweep runs **twice** and the normalized reports must be identical.
//! The full report is written to `BENCH_e16_crash.json` at the repository
//! root for EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_serve::{run_e16, run_e16_cell, E16Config, E16Report, Scheduling};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e16_crash.json");

fn assert_acceptance(report: &E16Report) {
    let cfg = &report.config;
    for cell in &report.cells {
        let label = format!("budget={} {}", cell.budget, cell.sched);
        // (a) zero divergence across every crash point.
        assert!(cell.crash_points > 0, "{label}: no crash points swept");
        assert!(cell.torn_points > 0, "{label}: no torn writes swept");
        assert_eq!(
            cell.divergences, 0,
            "{label}: resumed run diverged — {:?}",
            cell.first_divergence
        );
        // (b) every resumed ledger verifies end to end.
        assert_eq!(cell.verify_failures, 0, "{label}: resumed ledger corrupt");
        // (c) recovery work is bounded by the rotation budget.
        assert_eq!(
            cell.unbounded_recoveries, 0,
            "{label}: recovery discarded {} records, bound {}",
            cell.max_discarded, cell.discard_bound
        );
        assert!(
            cell.max_discarded <= cell.discard_bound,
            "{label}: max discarded {} exceeds bound {}",
            cell.max_discarded,
            cell.discard_bound
        );
        // (d) rotation and retention actually exercised.
        assert!(cell.segments > 1, "{label}: budget never rotated");
        if cfg.keep_sealed > 0 {
            assert!(cell.pruned > 0, "{label}: retention never pruned");
        }
        assert_eq!(
            cell.decided + cell.shed,
            cell.offered,
            "{label}: requests lost"
        );
    }
    // (d) the golden ledger is scheduling-invariant per budget.
    for &budget in &cfg.budgets {
        let heads: Vec<u64> = report
            .cells
            .iter()
            .filter(|c| c.budget == budget)
            .map(|c| c.final_head)
            .collect();
        assert!(
            heads.windows(2).all(|w| w[0] == w[1]),
            "budget={budget}: golden head digests diverged across scheduling ({heads:?})"
        );
    }
}

fn print_table() {
    banner(
        "E16",
        "serving: kill-and-resume crash tolerance (checkpoint/restore + segment rotation)",
    );
    let cfg = E16Config {
        seed: TABLE_SEED,
        ..E16Config::default()
    };
    let report = run_e16(&cfg);

    println!(
        "{:<7} {:<9} {:>7} {:>6} {:>7} {:>7} {:>8} {:>6} {:>7} {:>9} {:>18}",
        "budget",
        "sched",
        "kills",
        "torn",
        "diverge",
        "badver",
        "maxdisc",
        "segs",
        "pruned",
        "records",
        "head"
    );
    for c in &report.cells {
        println!(
            "{:<7} {:<9} {:>7} {:>6} {:>7} {:>7} {:>8} {:>6} {:>7} {:>9} {:>18x}",
            c.budget,
            c.sched,
            c.crash_points,
            c.torn_points,
            c.divergences,
            c.verify_failures,
            c.max_discarded,
            c.segments,
            c.pruned,
            c.ledger_records,
            c.final_head,
        );
    }

    assert_acceptance(&report);

    // Determinism acceptance: a second identical sweep must reproduce the
    // report byte-for-byte once wall-clock fields are stripped.
    let rerun = run_e16(&cfg);
    let (a, b) = (report.normalized(), rerun.normalized());
    assert_eq!(a, b, "E16: two identical sweeps diverged");
    assert_eq!(
        serde_json::to_string(&a).expect("serializable report"),
        serde_json::to_string(&b).expect("serializable report"),
        "E16: normalized reports must serialize identically"
    );
    println!("\ndeterminism: second sweep identical modulo wall-clock");

    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e16_crash.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_crash");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E16Config {
        seed: TABLE_SEED,
        ..E16Config::smoke()
    };
    for sched in [Scheduling::Static, Scheduling::Balanced] {
        group.bench_with_input(
            BenchmarkId::new(
                "cell",
                format!(
                    "budget=24/{}",
                    if sched == Scheduling::Static {
                        "static"
                    } else {
                        "balanced"
                    }
                ),
            ),
            &sched,
            |b, &s| {
                b.iter(|| run_e16_cell(&cfg, 24, s));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
