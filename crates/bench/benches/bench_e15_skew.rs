//! E15 — the device-skew × scheduling sweep. The table crosses Zipf skew ×
//! {static, balanced} shard scheduling × worker threads (cross-shard
//! admission backpressure on everywhere) and asserts the headline claims
//! on the measured numbers:
//!
//! (a) under skew ≥ Zipf(1.0), balanced (deterministic work-stealing)
//!     scheduling reduces the hot shard's p99 virtual queue wait versus
//!     static contiguous scheduling, at every thread count;
//! (b) determinism survives the optimization: for each skew point, every
//!     {scheduling × threads} cell seals a **digest-identical** ledger;
//! (c) overload never weakens safety: zero shed-allows in every cell, and
//!     every offered request is accounted for (decided + shed = offered);
//! (d) backpressure engages on the skewed points (deferrals > 0 at the
//!     top skew) and the virtual schedule actually steals there.
//!
//! The sweep runs **twice** and the normalized reports must be identical —
//! the determinism acceptance for chunking, steal order, the virtual wait
//! overlay, and backpressure together. The full report is written to
//! `BENCH_e15_skew.json` at the repository root for EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_serve::{run_e15, run_e15_cell, E15Config, E15Report, Scheduling};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e15_skew.json");

fn assert_acceptance(report: &E15Report) {
    let cfg = &report.config;

    // (c) fail-closed and fully accounted, in every cell.
    for cell in &report.cells {
        let label = format!("zipf={} {} t={}", cell.zipf, cell.sched, cell.threads);
        assert_eq!(cell.watchdog, None, "{label}: watchdog tripped");
        assert_eq!(cell.shed_allows, 0, "{label}: a shed request was allowed");
        assert_eq!(
            cell.decided + cell.shed,
            cell.offered,
            "{label}: requests lost"
        );
    }

    // (b) one ledger per skew point: digest identical across scheduling
    // modes and thread counts.
    for &zipf in &cfg.zipfs {
        let digests: Vec<u64> = report
            .cells
            .iter()
            .filter(|c| c.zipf == zipf)
            .map(|c| c.ledger_digest)
            .collect();
        assert!(!digests.is_empty(), "zipf={zipf}: no cells");
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "zipf={zipf}: ledger digests diverged across sched/threads ({digests:?})"
        );
    }

    // (a) balanced beats static on hot-shard p99 virtual wait wherever the
    // skew is strong enough to matter.
    for &zipf in cfg.zipfs.iter().filter(|&&z| z >= 1.0) {
        for &threads in &cfg.threads_sweep {
            let stat = report
                .cell(zipf, Scheduling::Static, threads)
                .expect("static cell");
            let bal = report
                .cell(zipf, Scheduling::Balanced, threads)
                .expect("balanced cell");
            assert!(
                bal.hot_p99_wait < stat.hot_p99_wait,
                "zipf={zipf} t={threads}: balanced hot p99 wait {} must beat static {}",
                bal.hot_p99_wait,
                stat.hot_p99_wait
            );
            if threads > 1 {
                // A lone worker has nowhere to steal from; the balanced
                // schedule degenerates to LPT ordering on one worker.
                assert!(
                    bal.virtual_steals > 0,
                    "zipf={zipf} t={threads}: balanced cell never stole"
                );
            }
            assert_eq!(
                stat.virtual_steals, 0,
                "zipf={zipf} t={threads}: static cell must not steal"
            );
        }
    }

    // (d) the top skew point trips cross-shard backpressure.
    let top = cfg.zipfs.iter().cloned().fold(f64::MIN, f64::max);
    for cell in report.cells.iter().filter(|c| c.zipf == top) {
        assert!(
            cell.deferrals > 0,
            "zipf={top} {} t={}: hot shard never deferred",
            cell.sched,
            cell.threads
        );
    }
}

fn print_table() {
    banner(
        "E15",
        "serving: skew-aware sharded scheduling (deterministic work stealing)",
    );
    let cfg = E15Config {
        seed: TABLE_SEED,
        ..E15Config::default()
    };
    let report = run_e15(&cfg);

    println!(
        "{:<6} {:<9} {:>3} {:>8} {:>7} {:>7} {:>6} {:>9} {:>9} {:>9} {:>7} {:>18}",
        "zipf",
        "sched",
        "t",
        "decided",
        "shed",
        "defer",
        "hot%",
        "hotP50w",
        "hotP99w",
        "makespan",
        "steals",
        "ledger"
    );
    for c in &report.cells {
        println!(
            "{:<6} {:<9} {:>3} {:>8} {:>7} {:>7} {:>6.3} {:>9} {:>9} {:>9} {:>7} {:>18x}",
            c.zipf,
            c.sched,
            c.threads,
            c.decided,
            c.shed,
            c.deferrals,
            c.hot_share,
            c.hot_p50_wait,
            c.hot_p99_wait,
            c.makespan_units,
            c.virtual_steals,
            c.ledger_digest,
        );
    }

    assert_acceptance(&report);

    // Determinism acceptance: a second identical sweep must reproduce the
    // report byte-for-byte once wall-clock fields are stripped.
    let rerun = run_e15(&cfg);
    let (a, b) = (report.normalized(), rerun.normalized());
    assert_eq!(a, b, "E15: two identical sweeps diverged");
    assert_eq!(
        serde_json::to_string(&a).expect("serializable report"),
        serde_json::to_string(&b).expect("serializable report"),
        "E15: normalized reports must serialize identically"
    );
    println!("\ndeterminism: second sweep identical modulo wall-clock");

    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e15_skew.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_skew");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E15Config {
        seed: TABLE_SEED,
        arrival_ticks: 60,
        ..E15Config::default()
    };
    for (sched, threads) in [
        (Scheduling::Static, 3),
        (Scheduling::Balanced, 3),
        (Scheduling::Balanced, 8),
    ] {
        group.bench_with_input(
            BenchmarkId::new(
                "cell",
                format!("zipf=1.2/{}/t={threads}", E15Config::sched_label(sched)),
            ),
            &(sched, threads),
            |b, &(s, t)| {
                b.iter(|| run_e15_cell(&cfg, 1.2, s, t));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
