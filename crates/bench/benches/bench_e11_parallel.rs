//! E11 — strong scaling of the two-phase parallel tick. The table sweeps
//! fleet size × worker threads on the mixed striker/digger/sentry workload;
//! every cell's sealed ledger must be bit-identical to the sequential
//! run's (the harness aborts if not), so the speedup column is the only
//! thing parallelism is allowed to change. The full report is also written
//! to `BENCH_e11_parallel.json` at the repository root for EXPERIMENTS.md.
//!
//! Speedup is bounded by the host: on a single-hardware-thread machine
//! every thread count shows ≈1.0 or worse, and that is the honest number.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::run_e11;

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e11_parallel.json");

fn print_table() {
    banner(
        "E11",
        "strong scaling: two-phase parallel tick, ledger-verified",
    );
    let report = run_e11(&[8, 24, 48, 96], &[1, 2, 4, 8], 200, TABLE_SEED, true);
    println!(
        "{:<9} {:>8} {:>10} {:>9} {:>11} {:>11} {:>8}",
        "devices", "threads", "wall ms", "speedup", "cache hit", "cache miss", "digest"
    );
    for c in &report.cells {
        assert!(
            c.digest_matches_sequential,
            "E11 cell n={} threads={} diverged from the sequential ledger",
            c.n_devices, c.threads
        );
        println!(
            "{:<9} {:>8} {:>10.2} {:>9.2} {:>11} {:>11} {:>8}",
            c.n_devices, c.threads, c.wall_ms, c.speedup, c.cache_hits, c.cache_misses, "ok"
        );
    }
    println!();
    println!(
        "hardware threads on this host: {} (speedup is bounded above by this)",
        report.hardware_threads
    );
    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e11_parallel.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("tick", format!("devices=24/threads={threads}")),
            &threads,
            |b, &t| {
                b.iter(|| run_e11(&[24], &[t], 50, TABLE_SEED, true));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
