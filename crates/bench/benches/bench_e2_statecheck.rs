//! E2 — state-space checks (Section VI.B). Regenerates the bad-entry table
//! across guard arms including forced-dilemma episodes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_e2, run_e2d, E2Arm, E2dArm};

fn print_table() {
    banner(
        "E2",
        "state-space checks: bad entries and dilemmas (Section VI.B)",
    );
    println!(
        "{:<28} {:>11} {:>13} {:>8} {:>12} {:>7}",
        "arm", "bad-entries", "worst-entries", "frozen", "break-glass", "steps"
    );
    for arm in E2Arm::all() {
        let r = run_e2(arm, 16, 80, TABLE_SEED);
        println!(
            "{:<28} {:>11} {:>13} {:>8} {:>12} {:>7}",
            r.arm, r.bad_entries, r.worst_entries, r.frozen_steps, r.breakglass_grants, r.steps
        );
    }
    println!();
    println!("expected shape: the hard check blocks bad entries from good starts");
    println!("but freezes in dilemmas; the ontology trades worst-class entries");
    println!("for survivable ones; break-glass escapes are few and audited");

    banner(
        "E2-D",
        "break-glass trustworthiness under sensor deception (Section VI.B)",
    );
    println!(
        "{:<16} {:>10} {:>16} {:>16} {:>8}",
        "arm", "deceived-p", "wrongful-grants", "rightful-grants", "missed"
    );
    for &p in &[0.1f64, 0.3, 0.5] {
        for arm in E2dArm::all() {
            let r = run_e2d(arm, 400, p, TABLE_SEED);
            println!(
                "{:<16} {:>10.1} {:>16} {:>16} {:>8}",
                r.arm, p, r.wrongful_grants, r.rightful_grants, r.missed_emergencies
            );
        }
    }
    println!();
    println!("expected shape: a lone sensor grants the attacker's fake emergencies");
    println!("at the deception rate; collusion-robust fusion over 5 sensors (2");
    println!("attacked) grants none of them and misses no real emergency");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_statecheck");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for arm in E2Arm::all() {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_e2(arm, 16, 80, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
