//! F2 — Figure 2: the abstract device loop. Times one full
//! sense → decide → act cycle as the installed rule count grows, showing the
//! ECA engine scales to generated-policy volumes.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::banner;
use apdm_device::{Actuator, Device, DeviceKind, OrgId, Sensor};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_statespace::{StateDelta, StateSchema, VarId};

fn device_with_rules(n_rules: usize) -> Device {
    let schema = StateSchema::builder().var("temp", 0.0, 100.0).build();
    let mut builder = Device::builder(1u64, DeviceKind::new("cooler"), OrgId::new("us"))
        .schema(schema)
        .sensor(Sensor::new("thermometer", VarId(0)))
        .actuator(Actuator::new("vent", VarId(0), 50.0));
    for i in 0..n_rules {
        // Distinct thresholds so conflict resolution has real work to do.
        let threshold = (i as f64) * 100.0 / n_rules.max(1) as f64;
        builder = builder.rule(
            EcaRule::new(
                format!("rule-{i}"),
                Event::pattern("tick"),
                Condition::state_at_least(VarId(0), threshold),
                Action::adjust("vent", StateDelta::single(VarId(0), -1.0)),
            )
            .with_priority((i % 7) as i32),
        );
    }
    builder.build()
}

fn print_table() {
    banner(
        "F2",
        "device loop: decisions through the ECA engine by rule count",
    );
    println!("{:<10} {:>14}", "rules", "decision made");
    for &n in &[1usize, 10, 100, 1000] {
        let mut d = device_with_rules(n);
        d.sense(&[(0, 90.0)]);
        let decided = d.propose(&Event::named("tick")).is_some();
        println!("{:<10} {:>14}", n, decided);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_device_loop");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    for &n in &[1usize, 10, 100, 1000] {
        let mut device = device_with_rules(n);
        device.sense(&[(0, 90.0)]);
        group.bench_with_input(BenchmarkId::new("step", n), &n, |b, _| {
            b.iter(|| device.step(&Event::named("tick")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
