//! E3 — deactivating machines in bad states (Section VI.C). Regenerates the
//! containment table over compromise fractions.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_e3, E3Arm};

fn print_table() {
    banner(
        "E3",
        "deactivation: containing compromised devices (Section VI.C)",
    );
    println!(
        "{:<17} {:>6} {:>7} {:>13} {:>15} {:>13}",
        "arm", "p", "harms", "contained-at", "healthy-killed", "availability"
    );
    for &p in &[0.1f64, 0.3, 0.5] {
        for arm in E3Arm::all() {
            let r = run_e3(arm, 12, p, 100, TABLE_SEED);
            println!(
                "{:<17} {:>6.1} {:>7} {:>13} {:>15} {:>12.0}%",
                r.arm,
                r.p_compromised,
                r.harms,
                r.containment_tick
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".into()),
                r.healthy_killed,
                r.availability * 100.0
            );
        }
    }
    println!();
    println!("expected shape: containment arms bound harm and contain quickly;");
    println!("quorum kill avoids single-watcher false kills");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_deactivation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for arm in E3Arm::all() {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_e3(arm, 12, 0.3, 100, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
