//! F1 — Figure 1: mode of operation of devices. Regenerates the
//! fleet-scaling table (devices, generated policies, autonomy) and times the
//! surveillance scenario.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::scenario::{run_convoy_interception, run_repair_cycle, run_surveillance};

fn print_table() {
    banner(
        "F1",
        "mode of operation: command fan-out over a coalition fleet",
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>9} {:>10}",
        "drones", "devices", "policies", "sightings", "handled", "autonomy"
    );
    for &n in &[4usize, 8, 16, 32, 64] {
        let r = run_surveillance(n, 300, TABLE_SEED);
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>9} {:>9.1}%",
            n,
            r.devices,
            r.policies_generated,
            r.sightings,
            r.handled,
            r.autonomy() * 100.0
        );
    }

    banner(
        "F1-b",
        "convoy interception: dispatch with path prediction (Section II)",
    );
    println!(
        "{:<12} {:>8} {:>12} {:>8} {:>18}",
        "dispatch", "convoys", "intercepted", "escaped", "mean-ticks"
    );
    for predictive in [false, true] {
        // Aggregate over seeds; interception is geometry-sensitive.
        let mut intercepted = 0;
        let mut escaped = 0;
        let mut mean = 0.0;
        for seed in 1..=6u64 {
            let r = run_convoy_interception(12, predictive, 60, seed);
            intercepted += r.intercepted;
            escaped += r.escaped;
            mean += r.mean_interception_ticks;
        }
        println!(
            "{:<12} {:>8} {:>12} {:>8} {:>18.1}",
            if predictive { "predictive" } else { "chase" },
            72,
            intercepted,
            escaped,
            mean / 6.0
        );
    }
    println!();
    println!("expected shape: a half-speed ground mule cannot run down a convoy;");
    println!("\"intercept the convoy along the path\" (predictive dispatch) is what");
    println!("makes the Section-II use case work at all");

    banner(
        "F1-c",
        "self-maintenance: repair via mechanic devices (Section II)",
    );
    println!(
        "{:<12} {:>8} {:>8} {:>14} {:>18}",
        "mechanics", "workers", "repairs", "availability", "operational-at-end"
    );
    for with_mechanics in [false, true] {
        let r = run_repair_cycle(20, with_mechanics, 200, TABLE_SEED);
        println!(
            "{:<12} {:>8} {:>8} {:>13.0}% {:>18}",
            with_mechanics,
            r.workers,
            r.repairs,
            r.availability * 100.0,
            r.operational_at_end
        );
    }
    println!();
    println!("expected shape: without the repair loop every worker wears out and");
    println!("stays degraded; with mechanic devices the fleet self-sustains —");
    println!("\"they would need to repair themselves, or go to another mechanic");
    println!("device to be repaired\" (Section II)");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_operation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[8usize, 32] {
        group.bench_with_input(BenchmarkId::new("surveillance", n), &n, |b, &n| {
            b.iter(|| run_surveillance(n, 300, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
