//! E4 — checks on collection formation (Section VI.D). Regenerates the
//! emergent-heat table: individually-safe devices, collectively unsafe.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_e4, E4Arm};

fn print_table() {
    banner(
        "E4",
        "collection formation: emergent aggregate hazards (Section VI.D)",
    );
    println!(
        "{:<28} {:>8} {:>9} {:>8} {:>7} {:>10}",
        "arm", "devices", "admitted", "refused", "fires", "work-done"
    );
    for &n in &[4usize, 6, 8] {
        for arm in E4Arm::all() {
            let r = run_e4(arm, n, 2.5, 10.0, 50, TABLE_SEED);
            println!(
                "{:<28} {:>8} {:>9} {:>8} {:>7} {:>10.0}",
                r.arm, n, r.admitted, r.refused, r.aggregate_harms, r.work_done
            );
        }
    }
    println!();
    println!("expected shape: fires occur only without checks and only once the");
    println!("collection is large enough (4 x 2.5 = 10.0 sits exactly at the limit);");
    println!("collaboration admits everyone yet matches formation-check safety");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_formation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for arm in E4Arm::all() {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_e4(arm, 6, 2.5, 10.0, 50, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
