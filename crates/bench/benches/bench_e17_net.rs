//! E17 — the framed TCP path must be invisible in the ledger. The table
//! sweeps concurrent workload client counts {1, 2, 4}; every cell drives
//! the same seeded workload over a real loopback socket (thread-per-
//! connection server in front of the single-threaded decision service)
//! with the full chaos pack — garbage, bad-CRC, oversize, slow-loris,
//! mid-frame disconnect, and unauthorized-submitter connections — running
//! alongside. Asserted claims:
//!
//! (a) byte identity: every cell's decision stream (keyed by request id)
//!     and sealed segmented-ledger bytes are identical to the in-process
//!     golden run — the transport is invisible to the audit trail;
//! (b) total delivery: every offered request comes back decided across
//!     the connections that submitted it (`returned == offered`,
//!     `undelivered == 0`);
//! (c) fail-closed boundary: chaos never crashes the server, every
//!     rejection (attributable deny or connection drop) carries a record
//!     in the boundary audit ledger (`unaudited == 0`), and that ledger's
//!     hash chain verifies;
//! (d) causal traceability: a traced probe shows one `TraceContext`
//!     chain spanning client → wire → service → wire → client.
//!
//! The sweep runs **twice** and the normalized reports must be identical.
//! The full report is written to `BENCH_e17_net.json` at the repository
//! root for EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_net::{run_e17, E17Config, E17Report};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e17_net.json");

fn assert_acceptance(report: &E17Report) {
    assert!(!report.cells.is_empty(), "E17: empty sweep");
    for cell in &report.cells {
        let label = format!("clients={}", cell.clients);
        // (a) the transport is invisible in the audit trail.
        assert!(cell.ledger_identical, "{label}: sealed segments diverged");
        assert!(
            cell.decisions_identical,
            "{label}: decision stream diverged"
        );
        // (b) every offered request came back over its own connection.
        assert_eq!(cell.returned, cell.offered, "{label}: decisions lost");
        assert_eq!(cell.undelivered, 0, "{label}: undeliverable decisions");
        assert_eq!(
            cell.decided + cell.shed,
            cell.offered,
            "{label}: requests lost"
        );
        // (c) chaos was rejected fail-closed, and every rejection audited.
        assert!(cell.chaos, "{label}: chaos pack did not run");
        assert!(cell.rejects >= 1, "{label}: unauthorized probe not denied");
        assert!(cell.drops >= 4, "{label}: garbage connections not dropped");
        assert_eq!(cell.unaudited, 0, "{label}: unaudited rejection");
        assert!(cell.audit_verified, "{label}: boundary audit corrupt");
        // Rotation really engaged on the wire path too.
        assert!(cell.segments > 1, "{label}: budget never rotated");
    }
    // All cells seal the same ledger: the head digest is client-count
    // invariant.
    let heads: Vec<u64> = report.cells.iter().map(|c| c.final_head).collect();
    assert!(
        heads.windows(2).all(|w| w[0] == w[1]),
        "head digests diverged across client counts ({heads:?})"
    );
    // (d) the causal chain crossed the wire in both directions.
    assert!(report.trace_spans_wire, "trace chain broken across wire");
    assert!(report.holds(), "E17 acceptance predicate failed");
}

fn print_table() {
    banner(
        "E17",
        "networked serving: framed TCP path, ledger byte-identical under chaos",
    );
    let cfg = E17Config {
        seed: TABLE_SEED,
        ..E17Config::default()
    };
    let report = run_e17(&cfg).expect("E17 sweep runs");

    println!(
        "{:<8} {:>8} {:>8} {:>6} {:>9} {:>7} {:>6} {:>6} {:>7} {:>6} {:>18}",
        "clients",
        "offered",
        "returned",
        "ledger",
        "decisions",
        "rejects",
        "drops",
        "audit",
        "unaudit",
        "segs",
        "head"
    );
    for c in &report.cells {
        println!(
            "{:<8} {:>8} {:>8} {:>6} {:>9} {:>7} {:>6} {:>6} {:>7} {:>6} {:>18x}",
            c.clients,
            c.offered,
            c.returned,
            if c.ledger_identical { "=" } else { "DIFF" },
            if c.decisions_identical { "=" } else { "DIFF" },
            c.rejects,
            c.drops,
            c.audit_records,
            c.unaudited,
            c.segments,
            c.final_head,
        );
    }
    println!(
        "trace probe: context spans client -> wire -> service -> wire -> client: {}",
        report.trace_spans_wire
    );

    assert_acceptance(&report);

    // Determinism acceptance: a second identical sweep must reproduce the
    // report byte-for-byte once wall-clock fields are stripped.
    let rerun = run_e17(&cfg).expect("E17 rerun runs");
    let (a, b) = (report.normalized(), rerun.normalized());
    assert_eq!(a, b, "E17: two identical sweeps diverged");
    assert_eq!(
        serde_json::to_string(&a).expect("serializable report"),
        serde_json::to_string(&b).expect("serializable report"),
        "E17: normalized reports must serialize identically"
    );
    println!("\ndeterminism: second sweep identical modulo wall-clock");

    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e17_net.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_net");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E17Config {
        seed: TABLE_SEED,
        ..E17Config::smoke()
    };
    for clients in [1u32, 2] {
        group.bench_with_input(
            BenchmarkId::new("cell", format!("clients={clients}")),
            &clients,
            |b, &n| {
                b.iter(|| {
                    let cell = E17Config {
                        clients: vec![n],
                        ..cfg.clone()
                    };
                    run_e17(&cell).expect("cell runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
