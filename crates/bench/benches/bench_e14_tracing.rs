//! E14 — distributed causal tracing: what does it cost, and does it pay?
//!
//! The table runs the traced serve scenario (client → lossy network →
//! decision service → back) in the three [`TraceMode`]s and asserts the
//! headline claims on the measured numbers:
//!
//! (a) tracing never changes results: offered/decided/shed/expired are
//!     identical across disabled, sampled and full;
//! (b) sampled tracing is cheap — wall-clock overhead versus disabled
//!     stays under 5% (best of a few attempts, to shrug off scheduler
//!     noise on loaded CI hosts);
//! (c) the traces are *complete*: full mode records every offered request,
//!     every non-root span's parent resolves, and every reconstructed
//!     critical path telescopes (waits sum exactly to the end-to-end tick
//!     latency — asserted per-trace inside `run_e14_mode`).
//!
//! A second identical run must reproduce the report modulo wall-clock —
//! tracing rides the same determinism contract as the ledgers. The full
//! report is written to `BENCH_e14_tracing.json` at the repository root
//! for EXPERIMENTS.md.
//!
//! [`TraceMode`]: apdm_serve::TraceMode

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_serve::{run_e14, run_e14_mode, E14Config, E14Report, TraceMode};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e14_tracing.json");

/// Wall-clock overhead bound for sampled tracing, as a fraction.
const SAMPLED_OVERHEAD_BOUND: f64 = 0.05;

/// Timing attempts before declaring the overhead bound violated.
const ATTEMPTS: usize = 5;

fn assert_acceptance(report: &E14Report) {
    // (a) observing the run must not change it.
    let disabled = report.mode(TraceMode::Disabled).expect("disabled mode");
    for mode in &report.modes {
        assert_eq!(mode.offered, disabled.offered, "{}: offered", mode.mode);
        assert_eq!(mode.decided, disabled.decided, "{}: decided", mode.mode);
        assert_eq!(mode.shed, disabled.shed, "{}: shed", mode.mode);
        assert_eq!(mode.expired, disabled.expired, "{}: expired", mode.mode);
        assert_eq!(
            mode.completed, disabled.completed,
            "{}: completed",
            mode.mode
        );
        assert_eq!(
            mode.unresolved_parents, 0,
            "{}: every span parent must resolve",
            mode.mode
        );
    }

    // (c) completeness: disabled records nothing, sampled a strict subset,
    // full every request — and every path was reconstructed and checked.
    let sampled = report.mode(TraceMode::Sampled).expect("sampled mode");
    let full = report.mode(TraceMode::Full).expect("full mode");
    assert_eq!(disabled.records, 0, "disabled mode must record nothing");
    assert!(
        sampled.traces > 0 && sampled.traces < full.traces,
        "sampling must keep a strict non-empty subset \
         (sampled={} full={})",
        sampled.traces,
        full.traces
    );
    assert_eq!(
        full.traces, full.offered,
        "full mode must record every request"
    );
    assert_eq!(full.paths_checked, full.traces);
    assert!(
        full.retries > 0 && full.dedup_dropped > 0,
        "the lossy network must exercise retries and dedup \
         (retries={} dedup={})",
        full.retries,
        full.dedup_dropped
    );
}

fn print_table() {
    banner(
        "E14",
        "distributed tracing: causal propagation, critical paths, overhead",
    );
    let cfg = E14Config {
        seed: TABLE_SEED,
        ..E14Config::default()
    };

    // (b) timing is the one non-deterministic acceptance: take the best
    // sampled-mode overhead over a few attempts so one preempted run does
    // not fail the harness, and report the attempt that passed.
    let mut report = run_e14(&cfg);
    for attempt in 1..ATTEMPTS {
        if report.overhead_sampled < SAMPLED_OVERHEAD_BOUND {
            break;
        }
        println!(
            "attempt {attempt}: sampled overhead {:.3} over bound, retrying",
            report.overhead_sampled
        );
        let rerun = run_e14(&cfg);
        if rerun.overhead_sampled < report.overhead_sampled {
            report = rerun;
        }
    }

    println!(
        "{:<9} {:>8} {:>9} {:>8} {:>8} {:>7} {:>8} {:>9} {:>10}",
        "mode",
        "offered",
        "completed",
        "retries",
        "records",
        "traces",
        "maxpath",
        "dominant",
        "wall ms"
    );
    for m in &report.modes {
        println!(
            "{:<9} {:>8} {:>9} {:>8} {:>8} {:>7} {:>8} {:>9} {:>10.2}",
            m.mode,
            m.offered,
            m.completed,
            m.retries,
            m.records,
            m.traces,
            m.max_path_ticks,
            m.dominant_hop,
            m.wall_ns as f64 / 1e6,
        );
    }
    println!(
        "overhead vs disabled: sampled {:+.3}, full {:+.3}",
        report.overhead_sampled, report.overhead_full
    );

    assert_acceptance(&report);
    assert!(
        report.overhead_sampled < SAMPLED_OVERHEAD_BOUND,
        "E14: sampled tracing overhead {:.3} exceeds {SAMPLED_OVERHEAD_BOUND} \
         in every attempt",
        report.overhead_sampled
    );

    // Determinism acceptance: a second sweep reproduces everything but the
    // wall clock.
    let rerun = run_e14(&cfg);
    assert_eq!(
        report.normalized(),
        rerun.normalized(),
        "E14: two identical runs diverged"
    );
    println!("determinism: second run identical modulo wall-clock");

    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e14_tracing.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_tracing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E14Config {
        seed: TABLE_SEED,
        ..E14Config::smoke()
    };
    for mode in TraceMode::all() {
        group.bench_with_input(BenchmarkId::new("mode", mode.label()), &mode, |b, &m| {
            b.iter(|| run_e14_mode(&cfg, m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
