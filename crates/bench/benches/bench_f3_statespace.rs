//! F3 — Figure 3: the state-space partition. Renders the figure, reports the
//! partition fractions and guarded/unguarded reachability, and times
//! classification and reachability analysis.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::banner;
use apdm_statespace::grid::Grid2;
use apdm_statespace::reach::{can_reach_bad, guarded_reachable, safe_kernel, VonNeumannMoves};
use apdm_statespace::{Label, Region, RegionClassifier, StateSchema};

fn setup(n: usize) -> (Grid2, RegionClassifier) {
    let schema = StateSchema::builder()
        .var("state-variable-1", 0.0, 10.0)
        .var("state-variable-2", 0.0, 10.0)
        .build();
    let grid = Grid2::new(schema, n, n).expect("valid grid");
    let classifier = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
    (grid, classifier)
}

fn print_table() {
    banner(
        "F3",
        "simplified state description: partition and reachability",
    );
    let (grid, classifier) = setup(16);
    let labels = grid.classify(&classifier);
    println!("{}", labels.render());
    let (good, neutral, bad) = labels.fractions();
    println!("fractions: good={good:.2} neutral={neutral:.2} bad={bad:.2}");
    println!("good region connected: {}", labels.good_is_connected());
    let start = grid.cell_of(&grid.schema().midpoint());
    println!(
        "unguarded logic can reach a bad state: {}",
        can_reach_bad(&grid, &labels, &VonNeumannMoves, start)
    );
    let reach = guarded_reachable(&grid, &labels, &VonNeumannMoves, start);
    println!(
        "guarded logic reaches {} cells (= {} good cells), none bad",
        reach.count(),
        labels.count(Label::Good)
    );
    let kernel = safe_kernel(&grid, &labels, &VonNeumannMoves);
    let kernel_size: usize = kernel.iter().flatten().filter(|&&k| k).count();
    println!("safe kernel size: {kernel_size}");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_statespace");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in &[32usize, 128] {
        let (grid, classifier) = setup(n);
        group.bench_with_input(BenchmarkId::new("classify_grid", n * n), &n, |b, _| {
            b.iter(|| grid.classify(&classifier));
        });
        let labels = grid.classify(&classifier);
        group.bench_with_input(
            BenchmarkId::new("guarded_reachability", n * n),
            &n,
            |b, _| {
                b.iter(|| guarded_reachable(&grid, &labels, &VonNeumannMoves, (n / 2, n / 2)));
            },
        );
        group.bench_with_input(BenchmarkId::new("safe_kernel", n * n), &n, |b, _| {
            b.iter(|| safe_kernel(&grid, &labels, &VonNeumannMoves));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
