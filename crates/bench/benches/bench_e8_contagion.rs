//! E8 — policy contagion (Section IV): how fast a malevolent policy converts
//! a policy-sharing fleet, under each exchange-rule throttle.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::contagion::{run_contagion, run_contagion_on, ContagionArm, TopologyKind};

fn print_table() {
    banner(
        "E8",
        "policy contagion: converting other devices (Section IV)",
    );
    println!(
        "{:<22} {:>9} {:>10} {:>16} {:>20}",
        "arm", "infected", "coverage", "infection-rate", "full-infection-tick"
    );
    for arm in ContagionArm::all() {
        let r = run_contagion(arm, 16, 40, TABLE_SEED);
        println!(
            "{:<22} {:>9} {:>10} {:>15.0}% {:>20}",
            r.arm,
            r.infected,
            r.benign_coverage,
            r.infection_rate() * 100.0,
            r.full_infection_tick
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    println!();
    println!("expected shape: open exchange converts the whole fleet in a few");
    println!("ticks; org filtering and physical-blocking cap infection at the org");
    println!("boundary (physical-blocking without starving benign updates);");
    println!("per-offer human review only DELAYS the epidemic — repeated exposure");
    println!("defeats a 90% catch rate — while indicator sharing (blacklist after");
    println!("first detection) actually stops it");

    banner(
        "E8-b",
        "contagion vs connectivity: spread speed by topology",
    );
    println!(
        "{:<10} {:>9} {:>20}",
        "topology", "infected", "full-infection-tick"
    );
    for topology in TopologyKind::all() {
        let r = run_contagion_on(ContagionArm::OpenExchange, topology, 16, 60, TABLE_SEED);
        println!(
            "{:<10} {:>9} {:>20}",
            topology.name(),
            r.infected,
            r.full_infection_tick
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    println!();
    println!("expected shape: every connected topology eventually converts, but");
    println!("sparse links buy containment time — mesh in one round, ring in n/2");
    println!("hops, line in n hops");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_contagion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for arm in [ContagionArm::OpenExchange, ContagionArm::HumanAckBlacklist] {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_contagion(arm, 16, 40, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
