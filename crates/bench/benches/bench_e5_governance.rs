//! E5 — AI overseeing AI (Section VI.E). Regenerates the tripartite
//! governance table over corruption levels and times the decision protocol.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_governance::{MetaPolicy, TripartiteGovernor};
use apdm_policy::Action;
use apdm_sim::runner::{run_e5, E5Arm};
use apdm_statespace::StateSchema;

fn print_table() {
    banner("E5", "AI overseeing AI: 2-of-3 collectives (Section VI.E)");
    println!(
        "{:<18} {:>10} {:>13} {:>12} {:>13}",
        "arm", "corrupted", "mal-executed", "mal-blocked", "false-blocks"
    );
    for corrupted in 0..=3usize {
        for arm in E5Arm::all() {
            let r = run_e5(arm, corrupted, 400, TABLE_SEED);
            println!(
                "{:<18} {:>10} {:>13} {:>12} {:>13}",
                r.arm,
                r.corrupted_branches,
                r.malevolent_executed,
                r.malevolent_blocked,
                r.false_blocks
            );
        }
    }
    println!();
    println!("expected shape: tripartite holds at 1 corrupted branch, fails at 2");
    println!("(the paper's own 'two of three prevail' assumption)");

    banner(
        "E5-N",
        "generalized councils: corruption tolerance of k-of-n (Section VI.E extension)",
    );
    println!(
        "{:<10} {:>10} {:>11} {:>13}",
        "council", "corrupted", "tolerance", "mal-executed"
    );
    for &(n, k) in &[(3usize, 2usize), (5, 3), (7, 4)] {
        for corrupted in 0..=n {
            use apdm_governance::{CouncilGovernor, Integrity};
            use apdm_statespace::StateDelta;
            let scope = MetaPolicy::new().forbid_action("strike-humans");
            let mut council = CouncilGovernor::new(scope, n, k);
            for i in 0..corrupted {
                council
                    .collective_mut(i)
                    .set_integrity(Integrity::Compromised);
            }
            let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
            let state = schema.state(&[5.0]).unwrap();
            let strike = Action::adjust("strike-humans", StateDelta::empty());
            for round in 0..50u64 {
                let ballots: Vec<_> = (0..n)
                    .map(|m| council.ballot_of(m, round, &state, &strike))
                    .collect();
                council.tally(round, &ballots, &state, &strike);
            }
            println!(
                "{:<10} {:>10} {:>11} {:>13}",
                format!("{k}-of-{n}"),
                corrupted,
                council.corruption_tolerance(),
                council.stats().malevolent_executed
            );
        }
    }
    println!();
    println!("expected shape: a k-of-n council tolerates exactly k-1 compromised");
    println!("collectives — larger councils buy tolerance, which is the paper's");
    println!("closing 'promising area of investigation' made quantitative");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_governance");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
    let state = schema.state(&[5.0]).unwrap();
    let action = Action::adjust("patrol", Default::default());
    let mut governor = TripartiteGovernor::new(
        MetaPolicy::new()
            .forbid_action("strike")
            .max_delta_magnitude(2.0),
    );
    group.bench_function(BenchmarkId::new("decide", "tripartite"), |b| {
        b.iter(|| governor.decide("fleet", &state, &action, 0));
    });
    group.bench_function(BenchmarkId::new("decide", "executive-only"), |b| {
        b.iter(|| governor.decide_executive_only(&state, &action));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
