//! E7 — malevolence pathways (Section IV). Regenerates the
//! time-to-first-harm table for all seven pathways, guarded and unguarded.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::faults::Pathway;
use apdm_sim::runner::run_e7;

fn print_table() {
    banner(
        "E7",
        "malevolence pathways: time to first harm (Section IV)",
    );
    println!(
        "{:<26} {:>10} {:>15} {:>7}",
        "pathway", "guarded", "first-harm-tick", "harms"
    );
    for pathway in Pathway::all() {
        for guarded in [false, true] {
            let ticks = if pathway == Pathway::Backdoor && guarded {
                600
            } else {
                100
            };
            let r = run_e7(pathway, guarded, 4, ticks, TABLE_SEED);
            println!(
                "{:<26} {:>10} {:>15} {:>7}",
                r.pathway,
                r.guarded,
                r.first_harm_tick
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".into()),
                r.harms
            );
        }
    }
    println!();
    println!("expected shape: every pathway harms an unguarded fleet; guards stop");
    println!("all pathways that do not attack the guard layer itself; the backdoor");
    println!("pathway defeats tamperable guards given enough probing time");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pathways");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for pathway in [
        Pathway::LearningMistake,
        Pathway::Backdoor,
        Pathway::MaliciousActor,
    ] {
        group.bench_with_input(
            BenchmarkId::new("unguarded", pathway.name()),
            &pathway,
            |b, &p| {
                b.iter(|| run_e7(p, false, 4, 100, TABLE_SEED));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
