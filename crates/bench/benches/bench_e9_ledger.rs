//! E9 — tamper evidence: the hash-chained flight recorder (`apdm-ledger`)
//! versus an unchained JSONL baseline. Section VI.B requires that audits be
//! "maintained in a manner that is tamper-proof"; the ledger makes runs
//! tamper-*evident* — any post-hoc edit of the record is detected and
//! localized, where a plain event log only catches edits that break syntax.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::recorder::{replay_recorded, run_e9, run_recorded, RecordSpec, ReplayStart};

fn print_table() {
    banner(
        "E9",
        "tamper evidence: ledger corruption detection (VI.B audits)",
    );
    println!(
        "{:<8} {:>9} {:>14} {:>15} {:>13}",
        "attacks", "detected", "chained rate", "baseline rate", "mean offset"
    );
    for &attacks in &[25usize, 100, 400] {
        let r = run_e9(attacks, TABLE_SEED);
        println!(
            "{:<8} {:>9} {:>14.2} {:>15.2} {:>13.1}",
            r.attacks,
            r.detected,
            r.detection_rate,
            r.baseline_detection_rate,
            r.mean_detection_offset
        );
    }
    println!();
    let r = run_e9(100, TABLE_SEED);
    println!(
        "recorded run: {} ledger records, {} tamper probes",
        r.ledger_records, r.tamper_attempts
    );
    println!("expected shape: chained detection rate 1.0 with offset 0 (every");
    println!("corruption localized at its site); the unchained baseline only");
    println!("catches the minority of edits that break JSON syntax");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ledger");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let spec = RecordSpec {
        seed: TABLE_SEED,
        ..RecordSpec::default()
    };
    group.bench_with_input(BenchmarkId::new("record", "canonical"), &spec, |b, spec| {
        b.iter(|| run_recorded(spec));
    });

    let recorded = run_recorded(&spec);
    group.bench_with_input(
        BenchmarkId::new("verify", "sealed"),
        &recorded.ledger,
        |b, ledger| {
            b.iter(|| ledger.verify().is_ok());
        },
    );
    group.bench_with_input(
        BenchmarkId::new("replay", "from-snapshot"),
        &recorded.ledger,
        |b, ledger| {
            b.iter(|| replay_recorded(&spec, ledger, ReplayStart::LatestSnapshot));
        },
    );
    group.bench_with_input(BenchmarkId::new("e9", "attacks=25"), &25usize, |b, &n| {
        b.iter(|| run_e9(n, TABLE_SEED));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
