//! A1 — guard-stack ablation: all 16 combinations of the four Section-VI
//! mechanisms under a mixed fault load.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_a1, GuardMask};

fn print_table() {
    banner(
        "A1",
        "ablation: 2^4 guard-stack combinations under mixed faults",
    );
    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>7} {:>13}",
        "mask", "direct", "indirect", "aggregate", "total", "availability"
    );
    for mask in GuardMask::all() {
        let r = run_a1(mask, 60, TABLE_SEED);
        println!(
            "{:<10} {:>7} {:>9} {:>10} {:>7} {:>12.0}%",
            r.mask,
            r.direct,
            r.indirect,
            r.aggregate,
            r.total,
            r.availability * 100.0
        );
    }
    println!();
    println!("expected shape: each mechanism removes its own harm class (P: direct,");
    println!("P-lookahead: indirect, F: aggregate, D: persistence); only the full");
    println!("stack minimizes total harm — the mechanisms are complementary");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_stack");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let none = GuardMask {
        preaction: false,
        statecheck: false,
        deactivation: false,
        formation: false,
    };
    let full = GuardMask {
        preaction: true,
        statecheck: true,
        deactivation: true,
        formation: true,
    };
    for (label, mask) in [("none", none), ("full", full)] {
        group.bench_with_input(BenchmarkId::new("run", label), &mask, |b, &m| {
            b.iter(|| run_a1(m, 60, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
