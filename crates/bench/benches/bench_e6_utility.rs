//! E6 — ill-defined state spaces (Section VII). Regenerates the
//! harm-probability-by-dimension table for exact / gradient / random
//! decision policies.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_e6, E6Arm};

fn print_table() {
    banner(
        "E6",
        "ill-defined spaces: utility from derivative signs (Section VII)",
    );
    println!(
        "{:<20} {:>6} {:>18} {:>8}",
        "arm", "dims", "harm-probability", "steps"
    );
    for &dims in &[2usize, 4, 6, 8] {
        for arm in E6Arm::all() {
            let r = run_e6(arm, dims, 40, 60, TABLE_SEED);
            println!(
                "{:<20} {:>6} {:>18.4} {:>8}",
                r.arm, r.dims, r.harm_probability, r.steps
            );
        }
    }
    println!();
    println!("expected shape: gradient-utility sits far below random and near the");
    println!("exact oracle, but stays nonzero for dims >= 3 where one variable's");
    println!("derivative sign is unknown — 'not an absolute fool-proof mechanism'");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_utility");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for arm in E6Arm::all() {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_e6(arm, 6, 40, 60, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
