//! E13 — the serving-layer load sweep. The table crosses offered load ×
//! {batching, verdict cache, shedding} and asserts the three headline
//! claims on the measured numbers:
//!
//! (a) micro-batching raises throughput over unbatched at the highest
//!     offered load (amortized dispatch overhead);
//! (b) shedding is inert at the lowest load (rate 0) and engages
//!     monotonically — strictly increasing once the queue bound binds;
//! (c) overload never weakens safety: every shed request resolves to a
//!     denial, in every cell.
//!
//! The sweep also runs **twice** and asserts the two reports are identical
//! after stripping wall-clock fields — the determinism acceptance for the
//! whole serving stack (admission, DRR, batching, sharded evaluation,
//! memo caches, ledgers). The full report is written to
//! `BENCH_e13_serve.json` at the repository root for EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_serve::{run_e13, run_e13_cell, E13Config, E13Report, Knobs};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e13_serve.json");

fn assert_acceptance(report: &E13Report) {
    let loads = &report.config.loads;
    let lowest = *loads.first().expect("non-empty sweep");
    let highest = *loads.last().expect("non-empty sweep");

    // (c) fail-closed everywhere, and full accounting: every cell resolves
    // every offered request, and no shed ever permits execution.
    for cell in &report.cells {
        assert_eq!(cell.watchdog, None, "{}: watchdog tripped", cell.label);
        assert_eq!(
            cell.shed_allows, 0,
            "{} load={}: a shed request was allowed",
            cell.label, cell.load
        );
        assert_eq!(
            cell.decided + cell.shed,
            cell.offered,
            "{} load={}: requests lost",
            cell.label,
            cell.load
        );
        if !cell.shedding {
            assert_eq!(
                cell.shed, 0,
                "{} load={}: shedding-off cell refused work",
                cell.label, cell.load
            );
        }
    }

    // (a) batching beats unbatched at the highest offered load, cache on
    // or off (shedding on, so both serve at their sustainable rate).
    for cache in [true, false] {
        let batched = report
            .cell(
                highest,
                Knobs {
                    batching: true,
                    cache,
                    shedding: true,
                },
            )
            .expect("batched cell");
        let unbatched = report
            .cell(
                highest,
                Knobs {
                    batching: false,
                    cache,
                    shedding: true,
                },
            )
            .expect("unbatched cell");
        assert!(
            batched.throughput > unbatched.throughput,
            "E13 load={highest} cache={cache}: batching must raise throughput \
             (batched={:.2} unbatched={:.2})",
            batched.throughput,
            unbatched.throughput
        );
    }

    // (b) shed-rate curves: zero at the lowest load, non-zero at the
    // highest, monotone along the sweep and strictly increasing once the
    // queue bound binds — for every shedding-on configuration.
    for batching in [true, false] {
        for cache in [true, false] {
            let knobs = Knobs {
                batching,
                cache,
                shedding: true,
            };
            let curve: Vec<f64> = loads
                .iter()
                .map(|&l| report.cell(l, knobs).expect("cell present").shed_rate)
                .collect();
            let label = knobs.label();
            assert_eq!(
                curve[0], 0.0,
                "{label}: must not shed at load {lowest} (curve {curve:?})"
            );
            assert!(
                *curve.last().unwrap() > 0.0,
                "{label}: must shed at load {highest} (curve {curve:?})"
            );
            for w in curve.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "{label}: shed rate decreased along the sweep (curve {curve:?})"
                );
                if w[0] > 0.0 {
                    assert!(
                        w[1] > w[0],
                        "{label}: shed rate must keep rising once the bound binds \
                         (curve {curve:?})"
                    );
                }
            }
        }
    }
}

fn print_table() {
    banner(
        "E13",
        "serving: micro-batching decision service under load (VI at fleet scale)",
    );
    let cfg = E13Config {
        seed: TABLE_SEED,
        ..E13Config::default()
    };
    let report = run_e13(&cfg);

    println!(
        "{:<6} {:<22} {:>8} {:>8} {:>7} {:>9} {:>6} {:>6} {:>7} {:>8}",
        "load", "knobs", "decided", "shed", "shed%", "thruput", "p50", "p99", "p99.9", "hit%"
    );
    for c in &report.cells {
        let hit_rate = if c.cache_hits + c.cache_misses == 0 {
            0.0
        } else {
            c.cache_hits as f64 / (c.cache_hits + c.cache_misses) as f64
        };
        println!(
            "{:<6} {:<22} {:>8} {:>8} {:>7.3} {:>9.2} {:>6} {:>6} {:>7} {:>8.3}",
            c.load,
            c.label,
            c.decided,
            c.shed,
            c.shed_rate,
            c.throughput,
            c.p50_queue_ticks,
            c.p99_queue_ticks,
            c.p999_queue_ticks,
            hit_rate,
        );
    }

    assert_acceptance(&report);

    // Determinism acceptance: a second identical sweep must reproduce the
    // report byte-for-byte once wall-clock fields are stripped.
    let rerun = run_e13(&cfg);
    let (a, b) = (report.normalized(), rerun.normalized());
    assert_eq!(a, b, "E13: two identical sweeps diverged");
    assert_eq!(
        serde_json::to_string(&a).expect("serializable report"),
        serde_json::to_string(&b).expect("serializable report"),
        "E13: normalized reports must serialize identically"
    );
    println!("\ndeterminism: second sweep identical modulo wall-clock");

    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e13_serve.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_serve");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E13Config {
        seed: TABLE_SEED,
        arrival_ticks: 60,
        ..E13Config::default()
    };
    for knobs in [
        Knobs {
            batching: true,
            cache: true,
            shedding: true,
        },
        Knobs {
            batching: false,
            cache: true,
            shedding: true,
        },
        Knobs {
            batching: true,
            cache: false,
            shedding: true,
        },
    ] {
        group.bench_with_input(
            BenchmarkId::new("cell", format!("load=64/{}", knobs.label())),
            &knobs,
            |b, &k| {
                b.iter(|| run_e13_cell(&cfg, 64, k));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
