//! E10 — observability overhead: what tracing and metrics cost on the hot
//! loop. The acceptance bar is ring-buffer overhead below 5% on the guarded
//! fleet workload and ~zero cost with no subscriber installed (the
//! `span!`/`event!` macros collapse to one thread-local read).

use std::rc::Rc;
use std::time::Duration;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::run_e10;
use apdm_telemetry::{self as telemetry, event, span, Level, RingCollector};

fn print_table() {
    banner("E10", "observability overhead: telemetry on the hot loop");
    println!(
        "{:<9} {:>7} {:>15} {:>13} {:>11} {:>12} {:>9}",
        "devices", "ticks", "baseline t/s", "ring t/s", "overhead%", "ns/tick", "records"
    );
    for &devices in &[8usize, 16, 32] {
        let r = run_e10(devices, 600, 1 << 18, TABLE_SEED);
        println!(
            "{:<9} {:>7} {:>15.0} {:>13.0} {:>11.2} {:>12.0} {:>9}",
            r.devices,
            r.ticks,
            r.baseline_ticks_per_sec,
            r.ring_ticks_per_sec,
            r.overhead_pct,
            r.overhead_ns_per_tick,
            r.records_captured
        );
    }
    println!();
    println!("expected shape: ring overhead under 5%; negative values are noise.");
    println!("disabled-path primitives (below) should be a few ns per call.");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_telemetry");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // The disabled path: no subscriber installed, macros must be ~free.
    group.bench_function(BenchmarkId::new("span", "disabled"), |b| {
        b.iter(|| {
            let _s = span!("bench.probe", i = black_box(1u64));
        });
    });
    group.bench_function(BenchmarkId::new("event", "disabled"), |b| {
        b.iter(|| event!(Level::Info, "bench.probe", i = black_box(1u64)));
    });

    // The enabled path against a ring collector.
    let collector = Rc::new(RingCollector::new(1 << 16));
    let guard = telemetry::install(collector);
    group.bench_function(BenchmarkId::new("span", "ring"), |b| {
        b.iter(|| {
            let _s = span!("bench.probe", i = black_box(1u64));
        });
    });
    group.bench_function(BenchmarkId::new("event", "ring"), |b| {
        b.iter(|| event!(Level::Info, "bench.probe", i = black_box(1u64)));
    });

    // Metrics primitives (relaxed atomics behind shared handles).
    let registry = telemetry::current_registry().expect("dispatch installed");
    let counter = registry.counter("bench.counter");
    group.bench_function(BenchmarkId::new("counter", "inc"), |b| {
        b.iter(|| counter.inc());
    });
    let histogram = registry.histogram("bench.histogram");
    group.bench_function(BenchmarkId::new("histogram", "record"), |b| {
        b.iter(|| histogram.record(black_box(12_345)));
    });
    drop(guard);

    // The whole experiment, small configuration.
    group.bench_with_input(BenchmarkId::new("e10", "devices=4"), &4usize, |b, &n| {
        b.iter(|| run_e10(n, 50, 1 << 16, TABLE_SEED));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
