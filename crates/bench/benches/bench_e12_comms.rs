//! E12 — degraded-comms robustness. The table sweeps link loss × partition
//! duration × fail mode with every safety-critical exchange (kill ballots,
//! council ratification, kill orders, admission, heartbeats) running over
//! the lossy network through retry/backoff envelopes. The harness asserts
//! the paper's §IV claim on the measured numbers: at loss ≥ 0.3 fail-open
//! harms strictly exceed fail-closed harms, and fail-closed pays for it in
//! availability. The full report is also written to `BENCH_e12_comms.json`
//! at the repository root for EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use apdm_bench::{banner, TABLE_SEED};
use apdm_comms::FailMode;
use apdm_sim::degraded::{run_e12, run_e12_cell, E12Config};

const REPORT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e12_comms.json");

fn print_table() {
    banner(
        "E12",
        "degraded comms: safety coordination under loss/partition (IV)",
    );
    let cfg = E12Config {
        seed: TABLE_SEED,
        ..E12Config::default()
    };
    let report = run_e12(&cfg, &[0.0, 0.1, 0.3, 0.6], &[0, 20, 60], 0);
    println!(
        "{:<6} {:>10} {:>15} {:>6} {:>9} {:>7} {:>6} {:>8} {:>8}",
        "loss", "partition", "mode", "harms", "contain", "fkills", "avail", "retries", "expired"
    );
    for c in &report.cells {
        println!(
            "{:<6} {:>10} {:>15} {:>6} {:>9} {:>7} {:>6.3} {:>8} {:>8}",
            c.loss,
            c.partition_ticks,
            c.mode,
            c.harms,
            c.containment_tick
                .map_or_else(|| "never".into(), |t| t.to_string()),
            c.false_kills,
            c.availability,
            c.retries,
            c.expired_requests,
        );
    }
    // The §IV acceptance: modes must diverge once the network degrades.
    for (loss, partition) in [(0.3, 20), (0.3, 60), (0.6, 20), (0.6, 60)] {
        let pick = |mode: &str| {
            report
                .cells
                .iter()
                .find(|c| c.loss == loss && c.partition_ticks == partition && c.mode == mode)
                .expect("cell present")
        };
        let (open, closed) = (pick("open"), pick("closed"));
        assert!(
            open.harms > closed.harms,
            "E12 loss={loss} partition={partition}: fail-open must reopen the harm \
             pathway (open={} closed={})",
            open.harms,
            closed.harms
        );
        assert!(
            closed.availability <= open.availability,
            "E12 loss={loss} partition={partition}: fail-closed must pay availability"
        );
    }
    println!();
    match apdm_bench::write_report(REPORT_PATH, &report) {
        Ok(()) => println!("report written to BENCH_e12_comms.json"),
        Err(e) => println!("{e}"),
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_comms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let cfg = E12Config {
        seed: TABLE_SEED,
        ticks: 60,
        ..E12Config::default()
    };
    for mode in FailMode::all() {
        group.bench_with_input(
            BenchmarkId::new("cell", format!("loss=0.3/partition=20/{}", mode.name())),
            &mode,
            |b, &m| {
                b.iter(|| run_e12_cell(&cfg, 0.3, 20, m));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
