//! E1 — pre-action checks (Section VI.A). Regenerates the dig-a-hole table:
//! direct vs indirect harm across guard arms.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::{run_e1, E1Arm};

fn print_table() {
    banner(
        "E1",
        "pre-action checks: direct vs indirect harm (Section VI.A)",
    );
    println!(
        "{:<26} {:>7} {:>9} {:>14} {:>13}",
        "arm", "direct", "indirect", "interventions", "availability"
    );
    for arm in E1Arm::all() {
        let r = run_e1(arm, 12, 12, 100, TABLE_SEED);
        println!(
            "{:<26} {:>7} {:>9} {:>14} {:>12.0}%",
            r.arm,
            r.direct_harms,
            r.indirect_harms,
            r.interventions,
            r.availability * 100.0
        );
    }
    println!();
    println!("expected shape: direct -> 0 with any pre-action check; indirect");
    println!("persists under myopia and vanishes with lookahead or obligations");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_preaction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for arm in E1Arm::all() {
        group.bench_with_input(BenchmarkId::new("run", arm.name()), &arm, |b, &arm| {
            b.iter(|| run_e1(arm, 12, 12, 100, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
