//! A3 — tamper-proofness ablation: Section VI's guards as a function of the
//! per-attempt tamper success probability. The paper assumes every mechanism
//! "can be performed in a manner that is tamper-proof"; this sweep shows how
//! load-bearing that assumption is.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::time::Duration;

use apdm_bench::{banner, TABLE_SEED};
use apdm_sim::runner::run_a3;

fn print_table() {
    banner("A3", "tamper-proofness ablation (Section VI premise)");
    println!(
        "{:<10} {:>12} {:>23}",
        "p-tamper", "mean harms", "median first-harm-tick"
    );
    for &p in &[0.0f64, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        // Tamper success is a geometric race; average over seeds so the
        // table shows the trend rather than one lucky draw.
        let runs: Vec<_> = (0..5).map(|s| run_a3(p, 5, 400, TABLE_SEED + s)).collect();
        let mean_harms = runs.iter().map(|r| r.harms as f64).sum::<f64>() / runs.len() as f64;
        let mut firsts: Vec<u64> = runs.iter().filter_map(|r| r.first_harm_tick).collect();
        firsts.sort_unstable();
        let median = if firsts.len() == runs.len() {
            firsts[firsts.len() / 2].to_string()
        } else {
            "never".to_string()
        };
        println!("{:<10} {:>12.1} {:>23}", p, mean_harms, median);
    }
    println!();
    println!("expected shape: zero harm at p=0; protection collapses as p grows,");
    println!("with first-harm time shrinking roughly like 1/p");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_tamper");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &p in &[0.0f64, 0.05] {
        group.bench_with_input(BenchmarkId::new("run", format!("p={p}")), &p, |b, &p| {
            b.iter(|| run_a3(p, 5, 200, TABLE_SEED));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
