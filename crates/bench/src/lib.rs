//! Shared helpers for the apdm benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md §3: it first
//! prints the experiment's table (the rows recorded in EXPERIMENTS.md), then
//! runs Criterion timings on a representative configuration. Seeds are fixed
//! so tables are reproducible run to run.
//!
//! Progress banners route through an `apdm-telemetry` stderr subscriber;
//! set `APDM_QUIET=1` to silence them (the result tables on stdout are the
//! harness's output and stay).

use std::fs;
use std::rc::Rc;

use apdm_telemetry::{self as telemetry, event, Level, StderrSubscriber};
use serde::{Deserialize, Serialize, Value};

/// Is the harness running quiet (`APDM_QUIET` set to anything but `0`)?
pub fn quiet() -> bool {
    std::env::var_os("APDM_QUIET").is_some_and(|v| v != "0")
}

/// Announce an experiment, matching EXPERIMENTS.md headings. Routed through
/// the telemetry stderr subscriber so `APDM_QUIET=1` silences it; when a
/// dispatch is already installed (a traced bench run), the event joins that
/// trace instead.
pub fn banner(id: &str, title: &str) {
    if quiet() {
        return;
    }
    if telemetry::enabled() {
        event!(Level::Info, "bench.banner", id = id, title = title);
    } else {
        let guard = telemetry::install(Rc::new(StderrSubscriber::default()));
        event!(Level::Info, "bench.banner", id = id, title = title);
        drop(guard);
    }
}

/// The fixed seed every table regeneration uses.
pub const TABLE_SEED: u64 = 42;

/// Host provenance stamped into every `BENCH_*.json`: wall-clock numbers
/// (throughput, speedup, overhead) are only comparable between runs on the
/// same parallel budget, so the report must say what that budget was.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Hardware threads the host advertises (`apdm_par::hardware_threads`).
    pub hardware_threads: usize,
    /// The raw `APDM_THREADS` override, if the environment set one.
    pub apdm_threads: Option<String>,
    /// Cargo profile the harness was compiled under (`debug` timings are
    /// not comparable with `release` ones).
    pub profile: String,
    /// Short git revision of the working tree, when the repo is available.
    pub git_revision: Option<String>,
}

/// Short `git rev-parse` of the source tree the harness was built from.
fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

/// Detect the current host's parallel budget and build provenance.
pub fn host_info() -> HostInfo {
    HostInfo {
        hardware_threads: apdm_par::hardware_threads(),
        apdm_threads: std::env::var("APDM_THREADS").ok(),
        profile: if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
        .to_string(),
        git_revision: git_revision(),
    }
}

/// Write an experiment report as pretty JSON with the [`HostInfo`] header
/// spliced in as a leading `"host"` key. Every bench target routes its
/// `BENCH_*.json` through here; existing top-level keys are untouched, so
/// consumers reading them (`scripts/ci.sh`) keep working.
pub fn write_report<T: Serialize>(path: &str, report: &T) -> Result<(), String> {
    let mut value =
        serde_json::to_value(report).map_err(|e| format!("unserializable report: {e}"))?;
    let host = serde_json::to_value(&host_info()).map_err(|e| format!("host info: {e}"))?;
    if let Value::Map(entries) = &mut value {
        entries.insert(0, ("host".to_string(), host));
    }
    let body = serde_json::to_string_pretty(&value).map_err(|e| format!("render: {e}"))?;
    fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))
}
