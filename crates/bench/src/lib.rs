//! Shared helpers for the apdm benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md §3: it first
//! prints the experiment's table (the rows recorded in EXPERIMENTS.md), then
//! runs Criterion timings on a representative configuration. Seeds are fixed
//! so tables are reproducible run to run.
//!
//! Progress banners route through an `apdm-telemetry` stderr subscriber;
//! set `APDM_QUIET=1` to silence them (the result tables on stdout are the
//! harness's output and stay).

use std::rc::Rc;

use apdm_telemetry::{self as telemetry, event, Level, StderrSubscriber};

/// Is the harness running quiet (`APDM_QUIET` set to anything but `0`)?
pub fn quiet() -> bool {
    std::env::var_os("APDM_QUIET").is_some_and(|v| v != "0")
}

/// Announce an experiment, matching EXPERIMENTS.md headings. Routed through
/// the telemetry stderr subscriber so `APDM_QUIET=1` silences it; when a
/// dispatch is already installed (a traced bench run), the event joins that
/// trace instead.
pub fn banner(id: &str, title: &str) {
    if quiet() {
        return;
    }
    if telemetry::enabled() {
        event!(Level::Info, "bench.banner", id = id, title = title);
    } else {
        let guard = telemetry::install(Rc::new(StderrSubscriber::default()));
        event!(Level::Info, "bench.banner", id = id, title = title);
        drop(guard);
    }
}

/// The fixed seed every table regeneration uses.
pub const TABLE_SEED: u64 = 42;
