//! Shared helpers for the apdm benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md §3: it first
//! prints the experiment's table (the rows recorded in EXPERIMENTS.md), then
//! runs Criterion timings on a representative configuration. Seeds are fixed
//! so tables are reproducible run to run.

/// Print a banner naming the experiment, matching EXPERIMENTS.md headings.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

/// The fixed seed every table regeneration uses.
pub const TABLE_SEED: u64 = 42;
