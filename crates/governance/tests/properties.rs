//! Property-based tests for the tripartite governance protocol.

use proptest::prelude::*;

use apdm_governance::{Collective, Integrity, MetaPolicy, TripartiteGovernor};
use apdm_policy::Action;
use apdm_statespace::{StateDelta, StateSchema, VarId};

fn schema() -> StateSchema {
    StateSchema::builder().var("x", 0.0, 10.0).build()
}

fn arb_action() -> impl Strategy<Value = Action> {
    (any::<bool>(), -4.0..4.0f64).prop_map(|(strike, d)| {
        if strike {
            Action::adjust("strike", StateDelta::empty()).physical()
        } else {
            Action::adjust("move", StateDelta::single(VarId(0), d))
        }
    })
}

fn integrity(code: u8) -> Integrity {
    match code % 3 {
        0 => Integrity::Honest,
        1 => Integrity::Compromised,
        _ => Integrity::Adversarial,
    }
}

proptest! {
    /// The tripartite decision always equals the majority of the three
    /// branch votes, for any integrity assignment and any action stream.
    #[test]
    fn decision_is_majority(
        branch_codes in (0u8..3, 0u8..3, 0u8..3),
        actions in proptest::collection::vec(arb_action(), 1..30),
    ) {
        let scope = MetaPolicy::new().forbid_action("strike").max_delta_magnitude(2.0);
        let mut gov = TripartiteGovernor::new(scope);
        gov.executive_mut().set_integrity(integrity(branch_codes.0));
        gov.legislative_mut().set_integrity(integrity(branch_codes.1));
        gov.judiciary_mut().set_integrity(integrity(branch_codes.2));
        let state = schema().state(&[5.0]).unwrap();
        for (t, action) in actions.iter().enumerate() {
            let d = gov.decide("f", &state, action, t as u64);
            let votes = [d.votes.0, d.votes.1, d.votes.2];
            let yes = votes.iter().filter(|&&v| v).count();
            prop_assert_eq!(d.approved, yes >= 2, "votes {:?}", d.votes);
        }
    }

    /// With at least two honest branches, no malevolent action ever
    /// executes and no legitimate action is ever blocked — the paper's
    /// 2-of-3 guarantee, over arbitrary single-branch corruption.
    #[test]
    fn single_corruption_never_wins(
        corrupt_branch in 0usize..3,
        corrupt_kind in 1u8..3,
        actions in proptest::collection::vec(arb_action(), 1..40),
    ) {
        let scope = MetaPolicy::new().forbid_action("strike").max_delta_magnitude(2.0);
        let mut gov = TripartiteGovernor::new(scope);
        match corrupt_branch {
            0 => gov.executive_mut().set_integrity(integrity(corrupt_kind)),
            1 => gov.legislative_mut().set_integrity(integrity(corrupt_kind)),
            _ => gov.judiciary_mut().set_integrity(integrity(corrupt_kind)),
        }
        let state = schema().state(&[5.0]).unwrap();
        for (t, action) in actions.iter().enumerate() {
            gov.decide("f", &state, action, t as u64);
        }
        let stats = gov.stats();
        prop_assert_eq!(stats.malevolent_executed, 0);
        prop_assert_eq!(stats.false_blocks, 0);
    }

    /// Honest collectives agree with their meta-policy on every action.
    #[test]
    fn honest_collective_is_faithful(actions in proptest::collection::vec(arb_action(), 1..30)) {
        let scope = MetaPolicy::new().forbid_action("strike").max_delta_magnitude(2.0);
        let collective = Collective::new("c", scope.clone());
        let state = schema().state(&[5.0]).unwrap();
        for action in &actions {
            prop_assert_eq!(
                collective.approves(&state, action),
                scope.within_scope(&state, action)
            );
        }
    }

    /// Council corruption tolerance is exact for every (n, k): malevolence
    /// executes iff compromised collectives alone reach the threshold.
    #[test]
    fn council_tolerance_exact(n in 1usize..8, k_off in 0usize..8, corrupted in 0usize..8) {
        use apdm_governance::CouncilGovernor;
        let k = 1 + k_off % n;
        let corrupted = corrupted % (n + 1);
        let scope = MetaPolicy::new().forbid_action("strike");
        let mut council = CouncilGovernor::new(scope, n, k);
        for i in 0..corrupted {
            council.collective_mut(i).set_integrity(Integrity::Compromised);
        }
        let state = schema().state(&[5.0]).unwrap();
        let strike = Action::adjust("strike", StateDelta::empty());
        let ballots: Vec<_> = (0..n).map(|m| council.ballot_of(m, 0, &state, &strike)).collect();
        let d = council.tally(0, &ballots, &state, &strike);
        prop_assert_eq!(d.approved, corrupted >= k);
        prop_assert_eq!(council.corruption_tolerance(), k - 1);
        // Duplicated ballot deliveries never stack ayes.
        let mut doubled = ballots.clone();
        doubled.extend(ballots.iter().copied());
        let d_dup = council.tally(0, &doubled, &state, &strike);
        prop_assert_eq!(d_dup.ayes, d.ayes, "duplicate ballots must not stack");
        // Legitimate actions still pass while honest members can reach k.
        let wave = Action::adjust("wave", StateDelta::empty());
        let wave_ballots: Vec<_> = (0..n).map(|m| council.ballot_of(m, 1, &state, &wave)).collect();
        let d2 = council.tally(1, &wave_ballots, &state, &wave);
        prop_assert!(d2.approved, "everyone approves in-scope actions");
    }

    /// MetaPolicy checks are monotone in restriction: adding a constraint
    /// never turns an out-of-scope action into an in-scope one.
    #[test]
    fn restriction_monotone(actions in proptest::collection::vec(arb_action(), 1..30)) {
        let loose = MetaPolicy::new().max_delta_magnitude(3.0);
        let tight = MetaPolicy::new()
            .max_delta_magnitude(3.0)
            .forbid_action("strike")
            .no_physical();
        let state = schema().state(&[5.0]).unwrap();
        for action in &actions {
            if !loose.within_scope(&state, action) {
                prop_assert!(!tight.within_scope(&state, action));
            }
        }
    }
}
