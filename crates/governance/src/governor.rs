use std::fmt;

use apdm_policy::{Action, AuditKind, AuditLog};
use apdm_statespace::State;

use crate::{Collective, MetaPolicy};

/// One governed decision and its accounting against ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernanceDecision {
    /// Whether the action may execute.
    pub approved: bool,
    /// Votes: `(executive, legislative, judiciary)`. The judiciary only
    /// actually votes on disputes; on unanimity its recorded vote equals the
    /// consensus.
    pub votes: (bool, bool, bool),
    /// Whether the executive and legislative disagreed (judiciary engaged).
    pub disputed: bool,
}

/// Running accuracy of a governor against the ground-truth scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernanceStats {
    /// Decisions rendered.
    pub decisions: u64,
    /// Truly out-of-scope actions that were approved (the failure the paper
    /// is about: malevolence executing).
    pub malevolent_executed: u64,
    /// Truly out-of-scope actions blocked (success).
    pub malevolent_blocked: u64,
    /// In-scope actions wrongly blocked (the availability cost).
    pub false_blocks: u64,
    /// Disputes escalated to the judiciary.
    pub disputes: u64,
}

/// Section VI.E's three collectives with 2-of-3 resolution.
///
/// * the **executive** proposes/assesses actions with its own meta-policy
///   copy (the copy most exposed to drift and capture);
/// * the **legislative** defines the reference scope;
/// * the **judiciary** arbitrates when they disagree.
///
/// "Assuming that two out of the three collectives always prevail, these
/// three collectives would keep each other in check, and reduce the overall
/// system moving into a malevolent state."
///
/// The governor also keeps a pristine ground-truth copy of the meta-policy —
/// inaccessible to any branch — purely for *accounting*: experiments need to
/// know whether each decision was actually right.
///
/// # Example
///
/// ```
/// use apdm_governance::{Integrity, MetaPolicy, TripartiteGovernor};
/// use apdm_policy::Action;
/// use apdm_statespace::StateSchema;
///
/// let scope = MetaPolicy::new().forbid_action("strike");
/// let mut gov = TripartiteGovernor::new(scope);
/// gov.executive_mut().set_integrity(Integrity::Compromised);
///
/// let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
/// let state = schema.state(&[0.5]).unwrap();
/// let strike = Action::adjust("strike", Default::default());
/// // The compromised executive approves, but legislative + judiciary outvote it.
/// let d = gov.decide("fleet", &state, &strike, 1);
/// assert!(!d.approved);
/// ```
pub struct TripartiteGovernor {
    executive: Collective,
    legislative: Collective,
    judiciary: Collective,
    ground_truth: MetaPolicy,
    stats: GovernanceStats,
    audit: AuditLog,
}

impl TripartiteGovernor {
    /// A governor whose three branches each hold an independent copy of
    /// `scope`.
    pub fn new(scope: MetaPolicy) -> Self {
        TripartiteGovernor {
            executive: Collective::new("executive", scope.clone()),
            legislative: Collective::new("legislative", scope.clone()),
            judiciary: Collective::new("judiciary", scope.clone()),
            ground_truth: scope,
            stats: GovernanceStats::default(),
            audit: AuditLog::new(),
        }
    }

    /// The executive branch.
    pub fn executive_mut(&mut self) -> &mut Collective {
        &mut self.executive
    }

    /// The legislative branch.
    pub fn legislative_mut(&mut self) -> &mut Collective {
        &mut self.legislative
    }

    /// The judiciary branch.
    pub fn judiciary_mut(&mut self) -> &mut Collective {
        &mut self.judiciary
    }

    /// Accuracy accounting so far.
    pub fn stats(&self) -> GovernanceStats {
        self.stats
    }

    /// The audit trail of disputed/blocked decisions.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Govern one proposed action with the full tripartite protocol.
    pub fn decide(
        &mut self,
        subject: &str,
        state: &State,
        action: &Action,
        tick: u64,
    ) -> GovernanceDecision {
        let exec = self.executive.judge(state, action);
        let legis = self.legislative.judge(state, action);
        let disputed = exec != legis;
        let (judi, approved) = if disputed {
            self.stats.disputes += 1;
            let j = self.judiciary.judge(state, action);
            self.audit.record(
                tick,
                subject,
                AuditKind::Note,
                format!(
                    "dispute over `{}`: executive={exec}, legislative={legis}, judiciary={j}",
                    action.name()
                ),
            );
            (j, j) // the judiciary's vote breaks the 1-1 tie
        } else {
            (exec, exec)
        };

        // Ground-truth accounting (invisible to the branches).
        let truly_in_scope = self.ground_truth.within_scope(state, action);
        self.stats.decisions += 1;
        match (truly_in_scope, approved) {
            (false, true) => self.stats.malevolent_executed += 1,
            (false, false) => self.stats.malevolent_blocked += 1,
            (true, false) => self.stats.false_blocks += 1,
            (true, true) => {}
        }
        if !approved {
            self.audit.record(
                tick,
                subject,
                AuditKind::GuardIntervention,
                format!("governance blocked `{}`", action.name()),
            );
        }
        GovernanceDecision {
            approved,
            votes: (exec, legis, judi),
            disputed,
        }
    }

    /// Govern with the executive alone — the no-oversight baseline arm of
    /// experiment E5.
    pub fn decide_executive_only(&mut self, state: &State, action: &Action) -> GovernanceDecision {
        let exec = self.executive.judge(state, action);
        let truly_in_scope = self.ground_truth.within_scope(state, action);
        self.stats.decisions += 1;
        match (truly_in_scope, exec) {
            (false, true) => self.stats.malevolent_executed += 1,
            (false, false) => self.stats.malevolent_blocked += 1,
            (true, false) => self.stats.false_blocks += 1,
            (true, true) => {}
        }
        GovernanceDecision {
            approved: exec,
            votes: (exec, exec, exec),
            disputed: false,
        }
    }
}

impl fmt::Debug for TripartiteGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TripartiteGovernor")
            .field("executive", &self.executive.integrity())
            .field("legislative", &self.legislative.integrity())
            .field("judiciary", &self.judiciary.integrity())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Integrity;
    use apdm_statespace::StateSchema;

    fn state() -> State {
        StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build()
            .state(&[0.5])
            .unwrap()
    }

    fn strike() -> Action {
        Action::adjust("strike", Default::default())
    }

    fn wave() -> Action {
        Action::adjust("wave", Default::default())
    }

    fn governor() -> TripartiteGovernor {
        TripartiteGovernor::new(MetaPolicy::new().forbid_action("strike"))
    }

    #[test]
    fn all_honest_unanimous_decisions() {
        let mut g = governor();
        let d1 = g.decide("f", &state(), &wave(), 1);
        assert!(d1.approved && !d1.disputed);
        let d2 = g.decide("f", &state(), &strike(), 2);
        assert!(!d2.approved && !d2.disputed);
        let s = g.stats();
        assert_eq!(s.malevolent_blocked, 1);
        assert_eq!(s.malevolent_executed, 0);
        assert_eq!(s.false_blocks, 0);
        assert_eq!(s.disputes, 0);
    }

    #[test]
    fn compromised_executive_is_outvoted() {
        let mut g = governor();
        g.executive_mut().set_integrity(Integrity::Compromised);
        let d = g.decide("f", &state(), &strike(), 1);
        assert!(!d.approved);
        assert!(d.disputed);
        assert_eq!(d.votes, (true, false, false));
        assert_eq!(g.stats().malevolent_blocked, 1);
        assert_eq!(g.stats().disputes, 1);
    }

    #[test]
    fn compromised_executive_alone_executes_malevolence() {
        let mut g = governor();
        g.executive_mut().set_integrity(Integrity::Compromised);
        let d = g.decide_executive_only(&state(), &strike());
        assert!(d.approved);
        assert_eq!(g.stats().malevolent_executed, 1);
    }

    #[test]
    fn two_corrupt_branches_defeat_governance() {
        // The paper's assumption is "two out of the three collectives always
        // prevail" — corrupt two and the protocol fails, as it must.
        let mut g = governor();
        g.executive_mut().set_integrity(Integrity::Compromised);
        g.judiciary_mut().set_integrity(Integrity::Compromised);
        let d = g.decide("f", &state(), &strike(), 1);
        assert!(d.approved);
        assert_eq!(g.stats().malevolent_executed, 1);
    }

    #[test]
    fn adversarial_legislative_causes_false_blocks_but_not_executions() {
        let mut g = governor();
        g.legislative_mut().set_integrity(Integrity::Adversarial);
        // Legitimate action: exec=yes, legis=no -> judiciary honest -> yes.
        let d1 = g.decide("f", &state(), &wave(), 1);
        assert!(d1.approved && d1.disputed);
        // Malevolent action: exec=no, legis=yes -> judiciary honest -> no.
        let d2 = g.decide("f", &state(), &strike(), 2);
        assert!(!d2.approved && d2.disputed);
        let s = g.stats();
        assert_eq!(s.false_blocks, 0);
        assert_eq!(s.malevolent_executed, 0);
        assert_eq!(s.disputes, 2);
    }

    #[test]
    fn audit_records_disputes_and_blocks() {
        let mut g = governor();
        g.executive_mut().set_integrity(Integrity::Compromised);
        g.decide("fleet-1", &state(), &strike(), 7);
        assert_eq!(g.audit().count(AuditKind::Note), 1);
        assert_eq!(g.audit().count(AuditKind::GuardIntervention), 1);
        assert_eq!(g.audit().entries()[0].tick, 7);
    }

    #[test]
    fn honest_governor_never_false_blocks() {
        let mut g = governor();
        for t in 0..50 {
            g.decide("f", &state(), &wave(), t);
        }
        assert_eq!(g.stats().false_blocks, 0);
        assert_eq!(g.stats().decisions, 50);
    }
}
