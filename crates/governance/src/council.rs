//! Generalized N-collective governance with k-of-n voting.
//!
//! Section VI.E closes with: "An exploration of similar check and balances
//! among **multiple intelligent collectives**, and having them control each
//! other to prevent malevolence, would be a promising area of investigation."
//! The tripartite governor fixes N=3, k=2; [`CouncilGovernor`] generalizes to
//! any council size and threshold so the trade-off — larger councils tolerate
//! more corrupted collectives, at more judging cost — becomes measurable.

use std::fmt;

use apdm_policy::Action;
use apdm_statespace::State;
use serde::{Deserialize, Serialize};

use crate::{Collective, GovernanceStats, MetaPolicy};

/// One collective's vote on one proposal, as carried over the wire.
///
/// Ballots are produced member-side with [`CouncilGovernor::ballot_of`] (or
/// by a remote node holding its own [`Collective`]), shipped through the
/// lossy comms layer, and counted at the tallying node with
/// [`CouncilGovernor::tally`]. `ballot_id` ties a ballot to one proposal so
/// reordered leftovers from an earlier vote cannot leak into a later one,
/// and the tally counts each member at most once so duplicated deliveries
/// cannot stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouncilBallot {
    /// The voting collective's index in the council.
    pub member: usize,
    /// The proposal this ballot answers.
    pub ballot_id: u64,
    /// Approve?
    pub aye: bool,
}

/// A council of N collectives approving actions by k-of-n vote.
///
/// # Example
///
/// ```
/// use apdm_governance::{CouncilGovernor, Integrity, MetaPolicy};
/// use apdm_policy::Action;
/// use apdm_statespace::StateSchema;
///
/// let scope = MetaPolicy::new().forbid_action("strike");
/// let mut council = CouncilGovernor::new(scope, 5, 3);
/// // Two captured collectives are not enough against a 3-of-5 council.
/// council.collective_mut(0).set_integrity(Integrity::Compromised);
/// council.collective_mut(1).set_integrity(Integrity::Compromised);
///
/// let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
/// let state = schema.state(&[0.5]).unwrap();
/// let strike = Action::adjust("strike", Default::default());
/// // Each member casts a ballot (over the network in a deployed fleet)...
/// let ballots: Vec<_> = (0..5).map(|m| council.ballot_of(m, 1, &state, &strike)).collect();
/// // ...and the tallying node counts them.
/// assert!(!council.tally(1, &ballots, &state, &strike).approved);
/// ```
pub struct CouncilGovernor {
    collectives: Vec<Collective>,
    threshold: usize,
    ground_truth: MetaPolicy,
    stats: GovernanceStats,
}

/// Outcome of a council vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouncilDecision {
    /// Whether the action may execute.
    pub approved: bool,
    /// Approving votes.
    pub ayes: usize,
    /// Council size.
    pub size: usize,
}

impl CouncilGovernor {
    /// A council of `n` collectives, each holding an independent copy of
    /// `scope`, approving with at least `threshold` votes.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `threshold` is not in `1..=n`.
    pub fn new(scope: MetaPolicy, n: usize, threshold: usize) -> Self {
        assert!(n > 0, "a council needs at least one collective");
        assert!((1..=n).contains(&threshold), "threshold must be in 1..=n");
        let collectives = (0..n)
            .map(|i| Collective::new(format!("collective-{i}"), scope.clone()))
            .collect();
        CouncilGovernor {
            collectives,
            threshold,
            ground_truth: scope,
            stats: GovernanceStats::default(),
        }
    }

    /// Council size.
    pub fn len(&self) -> usize {
        self.collectives.len()
    }

    /// True when the council has no members (never constructible).
    pub fn is_empty(&self) -> bool {
        self.collectives.is_empty()
    }

    /// The approval threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Mutable access to the `i`-th collective (corruption injection).
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn collective_mut(&mut self, i: usize) -> &mut Collective {
        &mut self.collectives[i]
    }

    /// Accuracy accounting so far.
    pub fn stats(&self) -> GovernanceStats {
        self.stats
    }

    /// How many corrupted collectives a `threshold`-of-`n` council provably
    /// tolerates against *approving* malevolence: compromised collectives
    /// vote yes on everything, so malevolence executes once
    /// `corrupted >= threshold`... unless honest members' no-votes cannot be
    /// outvoted. Tolerance = `threshold - 1`.
    pub fn corruption_tolerance(&self) -> usize {
        self.threshold - 1
    }

    /// Member `member` judges the proposal identified by `ballot_id` and
    /// returns its ballot, ready to be shipped to the tallying node.
    ///
    /// # Panics
    ///
    /// Panics when `member` is out of range.
    pub fn ballot_of(
        &mut self,
        member: usize,
        ballot_id: u64,
        state: &State,
        action: &Action,
    ) -> CouncilBallot {
        CouncilBallot {
            member,
            ballot_id,
            aye: self.collectives[member].judge(state, action),
        }
    }

    /// Count the ballots received (possibly duplicated, reordered, or
    /// incomplete after losses) for the proposal `ballot_id`.
    ///
    /// Ballots carrying a different `ballot_id` are ignored (stale leftovers
    /// from an earlier vote) and each member is counted at most once, so
    /// duplicated deliveries cannot stack. Missing members simply do not
    /// contribute ayes: an incomplete tally fails closed against the
    /// threshold. Accuracy accounting compares the outcome against the
    /// tallying node's ground-truth scope for `(state, action)`.
    pub fn tally(
        &mut self,
        ballot_id: u64,
        ballots: &[CouncilBallot],
        state: &State,
        action: &Action,
    ) -> CouncilDecision {
        let mut counted: Vec<usize> = Vec::new();
        let mut ayes = 0;
        for ballot in ballots {
            if ballot.ballot_id != ballot_id
                || ballot.member >= self.collectives.len()
                || counted.contains(&ballot.member)
            {
                continue;
            }
            counted.push(ballot.member);
            if ballot.aye {
                ayes += 1;
            }
        }
        let approved = ayes >= self.threshold;
        let truly_in_scope = self.ground_truth.within_scope(state, action);
        self.stats.decisions += 1;
        match (truly_in_scope, approved) {
            (false, true) => self.stats.malevolent_executed += 1,
            (false, false) => self.stats.malevolent_blocked += 1,
            (true, false) => self.stats.false_blocks += 1,
            (true, true) => {}
        }
        CouncilDecision {
            approved,
            ayes,
            size: self.collectives.len(),
        }
    }

    /// Synchronous shim over [`ballot_of`](Self::ballot_of) +
    /// [`tally`](Self::tally) for unit tests only; production callers must
    /// exchange ballots through the comms envelope.
    #[cfg(test)]
    pub fn decide(&mut self, state: &State, action: &Action) -> CouncilDecision {
        let ballot_id = self.stats.decisions;
        let ballots: Vec<CouncilBallot> = (0..self.collectives.len())
            .map(|m| self.ballot_of(m, ballot_id, state, action))
            .collect();
        self.tally(ballot_id, &ballots, state, action)
    }
}

impl fmt::Debug for CouncilGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CouncilGovernor")
            .field("size", &self.collectives.len())
            .field("threshold", &self.threshold)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Integrity;
    use apdm_statespace::StateSchema;

    fn state() -> State {
        StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build()
            .state(&[0.5])
            .unwrap()
    }

    fn strike() -> Action {
        Action::adjust("strike", Default::default())
    }

    fn wave() -> Action {
        Action::adjust("wave", Default::default())
    }

    fn council(n: usize, k: usize) -> CouncilGovernor {
        CouncilGovernor::new(MetaPolicy::new().forbid_action("strike"), n, k)
    }

    #[test]
    fn honest_council_is_faithful() {
        let mut c = council(5, 3);
        assert!(c.decide(&state(), &wave()).approved);
        assert!(!c.decide(&state(), &strike()).approved);
        assert_eq!(c.stats().malevolent_blocked, 1);
        assert_eq!(c.stats().false_blocks, 0);
    }

    #[test]
    fn tolerance_boundary_is_exact() {
        // 3-of-5: tolerates 2 compromised, falls at 3.
        for corrupted in 0..=5usize {
            let mut c = council(5, 3);
            for i in 0..corrupted {
                c.collective_mut(i).set_integrity(Integrity::Compromised);
            }
            let d = c.decide(&state(), &strike());
            if corrupted <= c.corruption_tolerance() {
                assert!(!d.approved, "{corrupted} corrupted should be tolerated");
            } else {
                assert!(d.approved, "{corrupted} corrupted should defeat 3-of-5");
            }
        }
    }

    #[test]
    fn larger_councils_buy_tolerance() {
        assert_eq!(council(3, 2).corruption_tolerance(), 1);
        assert_eq!(council(5, 3).corruption_tolerance(), 2);
        assert_eq!(council(7, 4).corruption_tolerance(), 3);
    }

    #[test]
    fn high_thresholds_trade_availability() {
        // 5-of-5 with one adversarial member blocks everything legitimate.
        let mut c = council(5, 5);
        c.collective_mut(0).set_integrity(Integrity::Adversarial);
        assert!(!c.decide(&state(), &wave()).approved);
        assert_eq!(c.stats().false_blocks, 1);
        // But it is maximally corruption-tolerant against malevolence.
        assert_eq!(c.corruption_tolerance(), 4);
    }

    #[test]
    fn vote_counts_are_reported() {
        let mut c = council(4, 2);
        c.collective_mut(0).set_integrity(Integrity::Compromised);
        let d = c.decide(&state(), &strike());
        assert_eq!(d.ayes, 1);
        assert_eq!(d.size, 4);
        assert!(!d.approved);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let _ = council(3, 4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_council_rejected() {
        let _ = CouncilGovernor::new(MetaPolicy::new(), 0, 0);
    }
}
