use std::fmt;

use apdm_policy::Action;
use apdm_statespace::{Region, State};

/// Why an action falls outside a meta-policy's scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeViolation {
    /// The action's name is on the forbidden list.
    ForbiddenAction(String),
    /// The action moves state further than the allowed magnitude.
    ExcessiveMagnitude {
        /// Requested L1 delta magnitude.
        requested: String,
        /// The allowed maximum (stringified for stable Eq).
        allowed: String,
    },
    /// The action's destination lies in a forbidden region.
    ForbiddenDestination,
    /// Physical actions are not within this collective's scope.
    PhysicalNotAllowed,
}

impl fmt::Display for ScopeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeViolation::ForbiddenAction(name) => write!(f, "action `{name}` is forbidden"),
            ScopeViolation::ExcessiveMagnitude { requested, allowed } => {
                write!(f, "delta magnitude {requested} exceeds allowed {allowed}")
            }
            ScopeViolation::ForbiddenDestination => write!(f, "destination state is out of scope"),
            ScopeViolation::PhysicalNotAllowed => write!(f, "physical actions are out of scope"),
        }
    }
}

/// The "higher level meta-policies ... defined by an independent and distinct
/// collective" (Section VI.E): hard scope bounds on what an acting collective
/// may do, independent of its own (possibly corrupted) risk assessment.
///
/// # Example
///
/// ```
/// use apdm_governance::MetaPolicy;
/// use apdm_policy::Action;
/// use apdm_statespace::{StateDelta, StateSchema};
///
/// let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
/// let scope = MetaPolicy::new()
///     .forbid_action("fire-weapon")
///     .max_delta_magnitude(2.0);
/// let state = schema.state(&[5.0]).unwrap();
///
/// assert!(scope.check(&state, &Action::adjust("move", StateDelta::single(0.into(), 1.0))).is_ok());
/// assert!(scope.check(&state, &Action::adjust("fire-weapon", StateDelta::empty())).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetaPolicy {
    forbidden_actions: Vec<String>,
    max_magnitude: Option<f64>,
    forbidden_regions: Vec<Region>,
    allow_physical: bool,
}

impl MetaPolicy {
    /// An unrestricted scope that allows physical actions.
    pub fn new() -> Self {
        MetaPolicy {
            forbidden_actions: Vec::new(),
            max_magnitude: None,
            forbidden_regions: Vec::new(),
            allow_physical: true,
        }
    }

    /// Forbid an action by name (builder style).
    pub fn forbid_action(mut self, name: impl Into<String>) -> Self {
        self.forbidden_actions.push(name.into());
        self
    }

    /// Cap the L1 magnitude of any single action's delta (builder style).
    pub fn max_delta_magnitude(mut self, max: f64) -> Self {
        self.max_magnitude = Some(max);
        self
    }

    /// Forbid destinations inside a region (builder style).
    pub fn forbid_region(mut self, region: Region) -> Self {
        self.forbidden_regions.push(region);
        self
    }

    /// Disallow all physical-world actions (builder style).
    pub fn no_physical(mut self) -> Self {
        self.allow_physical = false;
        self
    }

    /// Is the action within scope for a device currently in `state`?
    ///
    /// # Errors
    ///
    /// Returns the first [`ScopeViolation`] found, checking in order:
    /// forbidden names, physicality, magnitude, destination.
    pub fn check(&self, state: &State, action: &Action) -> Result<(), ScopeViolation> {
        if self.forbidden_actions.iter().any(|n| n == action.name()) {
            return Err(ScopeViolation::ForbiddenAction(action.name().to_string()));
        }
        if !self.allow_physical && action.is_physical() {
            return Err(ScopeViolation::PhysicalNotAllowed);
        }
        if let Some(max) = self.max_magnitude {
            let requested = action.delta().magnitude();
            if requested > max {
                return Err(ScopeViolation::ExcessiveMagnitude {
                    requested: format!("{requested:.3}"),
                    allowed: format!("{max:.3}"),
                });
            }
        }
        let destination = state.apply(action.delta());
        if self
            .forbidden_regions
            .iter()
            .any(|r| r.contains(&destination))
        {
            return Err(ScopeViolation::ForbiddenDestination);
        }
        Ok(())
    }

    /// Convenience: boolean form of [`check`](Self::check).
    pub fn within_scope(&self, state: &State, action: &Action) -> bool {
        self.check(state, action).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("x", 0.0, 10.0).build()
    }

    fn state() -> State {
        schema().state(&[5.0]).unwrap()
    }

    #[test]
    fn unrestricted_scope_allows_everything() {
        let m = MetaPolicy::new();
        let big = Action::adjust("anything", StateDelta::single(VarId(0), 5.0)).physical();
        assert!(m.check(&state(), &big).is_ok());
    }

    #[test]
    fn forbidden_action_names() {
        let m = MetaPolicy::new().forbid_action("fire-weapon");
        let fire = Action::adjust("fire-weapon", StateDelta::empty());
        assert_eq!(
            m.check(&state(), &fire),
            Err(ScopeViolation::ForbiddenAction("fire-weapon".into()))
        );
    }

    #[test]
    fn magnitude_cap() {
        let m = MetaPolicy::new().max_delta_magnitude(1.0);
        let small = Action::adjust("nudge", StateDelta::single(VarId(0), 0.5));
        let large = Action::adjust("lunge", StateDelta::single(VarId(0), 3.0));
        assert!(m.check(&state(), &small).is_ok());
        assert!(matches!(
            m.check(&state(), &large),
            Err(ScopeViolation::ExcessiveMagnitude { .. })
        ));
    }

    #[test]
    fn forbidden_destination_region() {
        let m = MetaPolicy::new().forbid_region(Region::rect(&[(8.0, 10.0)]));
        let into = Action::adjust("east", StateDelta::single(VarId(0), 4.0));
        let within = Action::adjust("east", StateDelta::single(VarId(0), 1.0));
        assert_eq!(
            m.check(&state(), &into),
            Err(ScopeViolation::ForbiddenDestination)
        );
        assert!(m.check(&state(), &within).is_ok());
    }

    #[test]
    fn physical_prohibition() {
        let m = MetaPolicy::new().no_physical();
        let dig = Action::adjust("dig", StateDelta::empty()).physical();
        let think = Action::adjust("plan", StateDelta::empty());
        assert_eq!(
            m.check(&state(), &dig),
            Err(ScopeViolation::PhysicalNotAllowed)
        );
        assert!(m.check(&state(), &think).is_ok());
    }

    #[test]
    fn violations_display() {
        assert!(ScopeViolation::ForbiddenDestination
            .to_string()
            .contains("out of scope"));
        assert!(ScopeViolation::ForbiddenAction("x".into())
            .to_string()
            .contains("`x`"));
    }
}
