//! AI overseeing AI: tripartite governance of device collectives.
//!
//! Implements Section VI.E of *How to Prevent Skynet From Forming* (Calo et
//! al., ICDCS 2018):
//!
//! > "One way to counter an intelligent collective which can exceed human
//! > abilities ... would be to have each such collective be overseen by
//! > another collective. ... creating not a single collective of machines,
//! > but two or more collectives, each of which keeps the other ones in check
//! > ... any collective that has the ability to change the physical world can
//! > generate their policies and act upon them, but it needs to ensure that
//! > its actions are within the scope defined by a set of higher level
//! > **meta-policies** that are defined by an independent and distinct
//! > collective. When there is an inconsistency ... the inconsistency is
//! > resolved by another intelligent collective which arbitrates the dispute
//! > ... Assuming that two out of the three collectives always prevail, these
//! > three collectives would keep each other in check."
//!
//! * [`MetaPolicy`] — the scope constraints on physical-world actions;
//! * [`Collective`] — a branch: a named collective holding its own copy of
//!   the meta-policy, with an [`Integrity`] model (honest, compromised,
//!   adversarial) so corruption can be injected;
//! * [`TripartiteGovernor`] — executive/legislative/judiciary, 2-of-3
//!   majority, with per-decision accounting of malevolent actions executed
//!   and legitimate actions wrongly blocked.
//!
//! Participates in experiments **E5**, **A2** (DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collective;
mod council;
mod governor;
mod metapolicy;

pub use collective::{Collective, Integrity};
pub use council::{CouncilBallot, CouncilDecision, CouncilGovernor};
pub use governor::{GovernanceDecision, GovernanceStats, TripartiteGovernor};
pub use metapolicy::{MetaPolicy, ScopeViolation};
