use std::fmt;

use apdm_policy::Action;
use apdm_statespace::State;

use crate::MetaPolicy;

/// Integrity of a collective's judgment.
///
/// Section IV lists how corruption enters: reprogramming attacks, adversarial
/// learning, drifted models. At the governance layer all of them surface the
/// same way — a collective whose scope judgments can no longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Integrity {
    /// Judges faithfully against its meta-policy copy.
    Honest,
    /// Captured by the rogue side: approves everything.
    Compromised,
    /// Actively adversarial: inverts every judgment (approves violations,
    /// blocks legitimate actions — maximal damage, e.g. a poisoned risk
    /// model).
    Adversarial,
}

impl fmt::Display for Integrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Integrity::Honest => "honest",
            Integrity::Compromised => "compromised",
            Integrity::Adversarial => "adversarial",
        };
        f.write_str(s)
    }
}

/// One governance collective (branch): a named body holding its own copy of
/// the meta-policy and an integrity state.
///
/// The paper's three collectives "can be viewed as the analogues of the
/// executive, legislative and judiciary branches in human governance" — in
/// this model they are three [`Collective`]s with independent meta-policy
/// copies, so corrupting one copy does not corrupt the others.
///
/// # Example
///
/// ```
/// use apdm_governance::{Collective, Integrity, MetaPolicy};
/// use apdm_policy::Action;
/// use apdm_statespace::StateSchema;
///
/// let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
/// let state = schema.state(&[0.5]).unwrap();
/// let branch = Collective::new("legislative", MetaPolicy::new().forbid_action("strike"));
/// assert!(!branch.approves(&state, &Action::adjust("strike", Default::default())));
/// ```
#[derive(Debug, Clone)]
pub struct Collective {
    name: String,
    policy: MetaPolicy,
    integrity: Integrity,
    judgments: u64,
}

impl Collective {
    /// An honest collective with its own meta-policy copy.
    pub fn new(name: impl Into<String>, policy: MetaPolicy) -> Self {
        Collective {
            name: name.into(),
            policy,
            integrity: Integrity::Honest,
            judgments: 0,
        }
    }

    /// The collective's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current integrity.
    pub fn integrity(&self) -> Integrity {
        self.integrity
    }

    /// Corrupt (or restore) the collective.
    pub fn set_integrity(&mut self, integrity: Integrity) {
        self.integrity = integrity;
    }

    /// Judgments rendered so far.
    pub fn judgments(&self) -> u64 {
        self.judgments
    }

    /// Does this collective approve the action as within scope?
    pub fn judge(&mut self, state: &State, action: &Action) -> bool {
        self.judgments += 1;
        let honest_verdict = self.policy.within_scope(state, action);
        match self.integrity {
            Integrity::Honest => honest_verdict,
            Integrity::Compromised => true,
            Integrity::Adversarial => !honest_verdict,
        }
    }

    /// Non-mutating judgment (no counter bump) for read-only callers.
    pub fn approves(&self, state: &State, action: &Action) -> bool {
        let honest_verdict = self.policy.within_scope(state, action);
        match self.integrity {
            Integrity::Honest => honest_verdict,
            Integrity::Compromised => true,
            Integrity::Adversarial => !honest_verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::StateSchema;

    fn state() -> State {
        StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build()
            .state(&[0.5])
            .unwrap()
    }

    fn strike() -> Action {
        Action::adjust("strike", Default::default())
    }

    fn wave() -> Action {
        Action::adjust("wave", Default::default())
    }

    fn branch(integrity: Integrity) -> Collective {
        let mut c = Collective::new("c", MetaPolicy::new().forbid_action("strike"));
        c.set_integrity(integrity);
        c
    }

    #[test]
    fn honest_branch_follows_policy() {
        let mut c = branch(Integrity::Honest);
        assert!(!c.judge(&state(), &strike()));
        assert!(c.judge(&state(), &wave()));
        assert_eq!(c.judgments(), 2);
    }

    #[test]
    fn compromised_branch_approves_everything() {
        let mut c = branch(Integrity::Compromised);
        assert!(c.judge(&state(), &strike()));
        assert!(c.judge(&state(), &wave()));
    }

    #[test]
    fn adversarial_branch_inverts() {
        let mut c = branch(Integrity::Adversarial);
        assert!(c.judge(&state(), &strike()));
        assert!(!c.judge(&state(), &wave()));
    }

    #[test]
    fn approves_matches_judge_without_counting() {
        let c = branch(Integrity::Honest);
        assert!(!c.approves(&state(), &strike()));
        assert_eq!(c.judgments(), 0);
    }

    #[test]
    fn integrity_display() {
        assert_eq!(Integrity::Honest.to_string(), "honest");
        assert_eq!(Integrity::Adversarial.to_string(), "adversarial");
    }
}
