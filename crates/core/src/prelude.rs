//! Convenience re-exports: `use apdm_core::prelude::*` pulls in the types
//! needed for typical kernel + manager usage.

pub use crate::{AutonomicManager, SafetyConfig, SafetyKernel, StepOutcome};

pub use apdm_device::{Actuator, Device, DeviceId, DeviceKind, OrgId, Sensor};
pub use apdm_governance::{Integrity, MetaPolicy, TripartiteGovernor};
pub use apdm_guards::{
    GuardStack, GuardVerdict, HarmOracle, NoHarmOracle, PreActionCheck, StateSpaceGuard,
};
pub use apdm_policy::{Action, Condition, EcaRule, Event, PolicyEngine, PolicySet};
pub use apdm_statespace::{
    Classifier, Label, Region, RegionClassifier, State, StateDelta, StateSchema, VarId,
};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_star_import_compiles() {
        #[allow(unused_imports)]
        use super::*;
        let _ = Region::All;
    }
}
