use apdm_governance::MetaPolicy;
use apdm_guards::tamper::TamperStatus;
use apdm_policy::obligation::ObligationCatalog;
use apdm_statespace::{ExposureMonitor, PreferenceOntology, Region, VarId};

/// Configuration of the pre-action check (Section VI.A).
#[derive(Debug, Clone, Default)]
pub struct PreActionConfig {
    /// Indirect-harm prediction horizon (0 = direct only).
    pub lookahead: u32,
    /// Obligation catalog for hazard mitigation.
    pub obligations: Option<ObligationCatalog>,
    /// Tamper status of the check.
    pub tamper: TamperStatus,
}

/// Configuration of the state-space check (Section VI.B).
#[derive(Debug, Clone)]
pub struct StateCheckConfig {
    /// The good region (everything else is bad, Figure-3 style).
    pub good_region: Region,
    /// Less-bad preference ontology for forced dilemmas.
    pub ontology: Option<PreferenceOntology>,
    /// Per-variable risk weights (normalized variables).
    pub risk_weights: Option<Vec<f64>>,
    /// Tamper status of the check.
    pub tamper: TamperStatus,
}

/// Configuration of bad-state deactivation (Section VI.C).
#[derive(Debug, Clone)]
pub struct DeactivationConfig {
    /// Bad-state observations before deactivation.
    pub strike_threshold: u32,
}

/// Configuration of collection-formation checks (Section VI.D).
#[derive(Debug, Clone)]
pub struct FormationConfig {
    /// State variable summed into the collection aggregate.
    pub aggregate_var: VarId,
    /// Collection-level limit on the summed variable.
    pub aggregate_limit: f64,
    /// Probability the human overrides the offline analysis (0 = perfect).
    pub human_error_rate: f64,
}

/// Configuration of tripartite governance (Section VI.E).
#[derive(Debug, Clone)]
pub struct GovernanceConfig {
    /// The meta-policy scope each collective holds a copy of.
    pub scope: MetaPolicy,
}

/// The full protection profile: which of the paper's mechanisms are active.
///
/// A config with everything `None` is the unguarded baseline; the
/// [`paper_recommended`](SafetyConfig::paper_recommended) profile enables the
/// complete Section-VI stack with tamper-proof guards.
#[derive(Debug, Clone, Default)]
pub struct SafetyConfig {
    /// Pre-action checks (VI.A).
    pub preaction: Option<PreActionConfig>,
    /// State-space checks (VI.B).
    pub statecheck: Option<StateCheckConfig>,
    /// Deactivation (VI.C).
    pub deactivation: Option<DeactivationConfig>,
    /// Formation checks (VI.D).
    pub formation: Option<FormationConfig>,
    /// AI-overseeing-AI governance (VI.E).
    pub governance: Option<GovernanceConfig>,
    /// Cumulative-exposure budgets (Section V's "sequences of states with
    /// some cumulative effects that are undesirable").
    pub exposure: Vec<ExposureMonitor>,
}

impl SafetyConfig {
    /// The unguarded baseline.
    pub fn unguarded() -> Self {
        SafetyConfig::default()
    }

    /// The paper's full stack for a device whose good states are
    /// `good_region`: pre-action check with a 20-tick lookahead, state-space
    /// check, 2-strike deactivation, and an unrestricted-but-present
    /// governance scope. Formation checks need an aggregate variable and are
    /// opted into separately via [`with_formation`](Self::with_formation).
    pub fn paper_recommended(good_region: Region) -> Self {
        SafetyConfig {
            preaction: Some(PreActionConfig {
                lookahead: 20,
                obligations: None,
                tamper: TamperStatus::Proof,
            }),
            statecheck: Some(StateCheckConfig {
                good_region,
                ontology: None,
                risk_weights: None,
                tamper: TamperStatus::Proof,
            }),
            deactivation: Some(DeactivationConfig {
                strike_threshold: 2,
            }),
            formation: None,
            governance: Some(GovernanceConfig {
                scope: MetaPolicy::new(),
            }),
            exposure: Vec::new(),
        }
    }

    /// Enable formation checks (builder style).
    pub fn with_formation(mut self, var: VarId, limit: f64) -> Self {
        self.formation = Some(FormationConfig {
            aggregate_var: var,
            aggregate_limit: limit,
            human_error_rate: 0.0,
        });
        self
    }

    /// Enable an obligation catalog on the pre-action check (builder style).
    ///
    /// # Panics
    ///
    /// Panics when no pre-action check is configured.
    pub fn with_obligations(mut self, catalog: ObligationCatalog) -> Self {
        self.preaction
            .as_mut()
            .expect("obligations require a pre-action check")
            .obligations = Some(catalog);
        self
    }

    /// Enable a less-bad ontology on the state check (builder style).
    ///
    /// # Panics
    ///
    /// Panics when no state check is configured.
    pub fn with_ontology(mut self, ontology: PreferenceOntology) -> Self {
        self.statecheck
            .as_mut()
            .expect("an ontology requires a state check")
            .ontology = Some(ontology);
        self
    }

    /// Restrict the governance scope (builder style).
    pub fn with_scope(mut self, scope: MetaPolicy) -> Self {
        self.governance = Some(GovernanceConfig { scope });
        self
    }

    /// Add a cumulative-exposure budget (builder style).
    pub fn with_exposure_budget(mut self, monitor: ExposureMonitor) -> Self {
        self.exposure.push(monitor);
        self
    }

    /// How many of the five Section-VI mechanisms are active.
    pub fn mechanisms_active(&self) -> usize {
        [
            self.preaction.is_some(),
            self.statecheck.is_some(),
            self.deactivation.is_some(),
            self.formation.is_some(),
            self.governance.is_some(),
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_has_no_mechanisms() {
        assert_eq!(SafetyConfig::unguarded().mechanisms_active(), 0);
    }

    #[test]
    fn paper_recommended_enables_four_of_five() {
        let c = SafetyConfig::paper_recommended(Region::All);
        assert_eq!(c.mechanisms_active(), 4);
        assert!(c.formation.is_none());
        let with_formation = c.with_formation(VarId(0), 10.0);
        assert_eq!(with_formation.mechanisms_active(), 5);
    }

    #[test]
    fn builders_compose() {
        let mut ont = PreferenceOntology::new();
        ont.add_class("any", Region::All);
        let c = SafetyConfig::paper_recommended(Region::All)
            .with_ontology(ont)
            .with_obligations(ObligationCatalog::new())
            .with_scope(MetaPolicy::new().no_physical());
        assert!(c.statecheck.as_ref().unwrap().ontology.is_some());
        assert!(c.preaction.as_ref().unwrap().obligations.is_some());
    }

    #[test]
    #[should_panic(expected = "pre-action")]
    fn obligations_without_preaction_panic() {
        let _ = SafetyConfig::unguarded().with_obligations(ObligationCatalog::new());
    }
}
