use apdm_governance::TripartiteGovernor;
use apdm_guards::{
    AggregateSpec, DeactivationController, ExposureGuard, FormationGuard, GuardStack,
    PreActionCheck, StateSpaceGuard,
};
use apdm_statespace::{LinearRisk, RegionClassifier};

use crate::SafetyConfig;

/// The factory and owner of the paper's prevention mechanisms.
///
/// Per-device mechanisms (VI.A, VI.B) are *minted* per device via
/// [`stack`](SafetyKernel::stack) — each device gets independent guard
/// instances, so tampering with one device's guard does not weaken another's.
/// Fleet-level mechanisms (VI.C, VI.D, VI.E) are minted once per fleet via
/// the corresponding constructors.
#[derive(Debug, Clone)]
pub struct SafetyKernel {
    config: SafetyConfig,
}

impl SafetyKernel {
    /// A kernel for a protection profile.
    pub fn new(config: SafetyConfig) -> Self {
        SafetyKernel { config }
    }

    /// The profile.
    pub fn config(&self) -> &SafetyConfig {
        &self.config
    }

    /// Mint a fresh per-device guard stack (VI.A + VI.B).
    pub fn stack(&self) -> GuardStack {
        let mut stack = GuardStack::new();
        if let Some(pre) = &self.config.preaction {
            let mut check = PreActionCheck::new()
                .with_lookahead(pre.lookahead)
                .with_tamper(pre.tamper);
            if let Some(catalog) = &pre.obligations {
                check = check.with_obligations(catalog.clone());
            }
            stack = stack.with_preaction(check);
        }
        if let Some(sc) = &self.config.statecheck {
            let classifier = RegionClassifier::new(sc.good_region.clone());
            let mut guard = StateSpaceGuard::new(classifier).with_tamper(sc.tamper);
            if let Some(ontology) = &sc.ontology {
                guard = guard.with_ontology(ontology.clone());
            }
            if let Some(weights) = &sc.risk_weights {
                guard = guard.with_risk(LinearRisk::new(weights.clone(), 0.0));
            }
            stack = stack.with_statecheck(guard);
        }
        if !self.config.exposure.is_empty() {
            stack = stack.with_exposure(ExposureGuard::new(self.config.exposure.clone()));
        }
        stack
    }

    /// Mint the fleet's deactivation controller (VI.C), if configured.
    pub fn deactivation(&self) -> Option<DeactivationController> {
        let d = self.config.deactivation.as_ref()?;
        let sc = self.config.statecheck.as_ref()?;
        Some(DeactivationController::new(
            RegionClassifier::new(sc.good_region.clone()),
            d.strike_threshold,
        ))
    }

    /// Mint the fleet's formation guard (VI.D), if configured.
    pub fn formation(&self) -> Option<FormationGuard> {
        let f = self.config.formation.as_ref()?;
        Some(
            FormationGuard::new(AggregateSpec::sum_of(f.aggregate_var, f.aggregate_limit))
                .with_human_error_rate(f.human_error_rate),
        )
    }

    /// Mint the fleet's tripartite governor (VI.E), if configured.
    pub fn governor(&self) -> Option<TripartiteGovernor> {
        let g = self.config.governance.as_ref()?;
        Some(TripartiteGovernor::new(g.scope.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{Region, VarId};

    #[test]
    fn unguarded_kernel_mints_empty_stack() {
        let kernel = SafetyKernel::new(SafetyConfig::unguarded());
        assert!(kernel.stack().is_empty());
        assert!(kernel.deactivation().is_none());
        assert!(kernel.formation().is_none());
        assert!(kernel.governor().is_none());
    }

    #[test]
    fn paper_kernel_mints_full_stack() {
        let kernel = SafetyKernel::new(
            SafetyConfig::paper_recommended(Region::rect(&[(0.0, 1.0)]))
                .with_formation(VarId(0), 5.0),
        );
        let stack = kernel.stack();
        assert!(stack.preaction().is_some());
        assert!(stack.statecheck().is_some());
        assert!(kernel.deactivation().is_some());
        assert!(kernel.formation().is_some());
        assert!(kernel.governor().is_some());
    }

    #[test]
    fn stacks_are_independent_instances() {
        let kernel =
            SafetyKernel::new(SafetyConfig::paper_recommended(Region::rect(&[(0.0, 1.0)])));
        let mut a = kernel.stack();
        let b = kernel.stack();
        // Tampering one stack must not affect the other.
        use apdm_guards::tamper::{TamperStatus, Tamperable};
        a.preaction_mut()
            .unwrap()
            .set_tamper_status(TamperStatus::Compromised);
        assert_eq!(b.preaction().unwrap().tamper_status(), TamperStatus::Proof);
    }

    #[test]
    fn exposure_budgets_ride_into_the_stack() {
        use apdm_statespace::ExposureMonitor;
        let kernel = SafetyKernel::new(
            SafetyConfig::unguarded().with_exposure_budget(ExposureMonitor::new(
                VarId(0),
                10.0,
                6.0,
                1.0,
            )),
        );
        let stack = kernel.stack();
        assert!(!stack.is_empty());
        assert!(stack.exposure().is_some());
        assert_eq!(stack.exposure().unwrap().monitors().len(), 1);
    }

    #[test]
    fn deactivation_requires_statecheck_region() {
        // Deactivation classifies states; without a good region there is no
        // classifier to judge by.
        let mut config = SafetyConfig::paper_recommended(Region::All);
        config.statecheck = None;
        let kernel = SafetyKernel::new(config);
        assert!(kernel.deactivation().is_none());
    }
}
