//! Safety kernel and autonomic manager: the paper's full prevention stack
//! behind one API.
//!
//! `apdm-core` composes the substrate crates into the system *How to Prevent
//! Skynet From Forming* (Calo et al., ICDCS 2018) advocates: generative,
//! self-managing devices (Section IV) whose every action passes through the
//! prevention mechanisms of Section VI, with the utility fallback of Section
//! VII for ill-defined state spaces.
//!
//! * [`SafetyConfig`] — a declarative protection profile: which of the
//!   paper's mechanisms are active and how they are parameterized, with
//!   [`SafetyConfig::paper_recommended`] enabling the full stack;
//! * [`SafetyKernel`] — builds per-device guard stacks and owns the
//!   fleet-level mechanisms (deactivation, formation, governance);
//! * [`AutonomicManager`] — wraps one [`Device`](apdm_device::Device) and
//!   runs its complete autonomic loop: sense → generate policies on
//!   discovery → propose → govern → guard → apply, with auditing.
//!
//! # Example
//!
//! ```
//! use apdm_core::{AutonomicManager, SafetyConfig, SafetyKernel};
//! use apdm_device::{Device, DeviceKind, OrgId};
//! use apdm_guards::NoHarmOracle;
//! use apdm_policy::{Action, Condition, EcaRule, Event};
//! use apdm_statespace::{Region, StateDelta, StateSchema};
//!
//! let schema = StateSchema::builder().var("speed", 0.0, 10.0).build();
//! let config = SafetyConfig::paper_recommended(Region::rect(&[(0.0, 7.0)]));
//! let kernel = SafetyKernel::new(config);
//!
//! let device = Device::builder(1u64, DeviceKind::new("mule"), OrgId::new("us"))
//!     .schema(schema)
//!     .rule(EcaRule::new(
//!         "accelerate",
//!         Event::pattern("tick"),
//!         Condition::True,
//!         Action::adjust("throttle", StateDelta::single(0.into(), 9.0)),
//!     ))
//!     .build();
//! let mut manager = AutonomicManager::new(device, &kernel);
//!
//! // The state check stops the device from racing into the bad region.
//! let outcome = manager.handle(&Event::named("tick"), NoHarmOracle, 1);
//! assert!(outcome.executed.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod kernel;
mod manager;
pub mod prelude;

pub use config::{
    DeactivationConfig, FormationConfig, GovernanceConfig, PreActionConfig, SafetyConfig,
    StateCheckConfig,
};
pub use kernel::SafetyKernel;
pub use manager::{AutonomicManager, StepOutcome};
