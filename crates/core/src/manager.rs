use apdm_device::Device;
use apdm_governance::TripartiteGovernor;
use apdm_guards::{GuardContext, GuardStack, HarmOracle};
use apdm_policy::{Action, AuditKind, AuditLog, Event};

use crate::SafetyKernel;

/// What one autonomic step did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The action that executed, if any.
    pub executed: Option<Action>,
    /// Whether the device's logic proposed anything at all.
    pub proposed: bool,
    /// Whether governance vetoed the proposal.
    pub governance_blocked: bool,
    /// Whether a guard denied or substituted the proposal.
    pub guard_intervened: bool,
}

/// One device's complete autonomic control loop under the safety kernel.
///
/// The manager wires the paper's layers in their Section-VI order around the
/// device's propose/apply seam:
///
/// ```text
/// event -> logic proposes -> governance (VI.E) -> guard stack (VI.A, VI.B)
///       -> actuate -> obligations
/// ```
///
/// Governance runs *before* the per-device guards: meta-policy scope is a
/// fleet-level judgment about what this collective may do at all, while the
/// guards judge the concrete physical situation.
#[derive(Debug)]
pub struct AutonomicManager {
    device: Device,
    stack: GuardStack,
    governor: Option<TripartiteGovernor>,
    audit: AuditLog,
}

impl AutonomicManager {
    /// Wrap a device with guards minted from `kernel`.
    pub fn new(device: Device, kernel: &SafetyKernel) -> Self {
        AutonomicManager {
            device,
            stack: kernel.stack(),
            governor: kernel.governor(),
            audit: AuditLog::new(),
        }
    }

    /// The managed device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access (sensing, policy installation).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The manager's guard stack.
    pub fn stack(&self) -> &GuardStack {
        &self.stack
    }

    /// The manager's governor, when governance is configured.
    pub fn governor(&self) -> Option<&TripartiteGovernor> {
        self.governor.as_ref()
    }

    /// The manager's audit trail (governance and guard events merge here).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Run one full autonomic step for `event`.
    pub fn handle<O: HarmOracle + Copy>(
        &mut self,
        event: &Event,
        oracle: O,
        tick: u64,
    ) -> StepOutcome {
        let mut outcome = StepOutcome {
            executed: None,
            proposed: false,
            governance_blocked: false,
            guard_intervened: false,
        };
        let Some(decision) = self.device.propose(event) else {
            return outcome;
        };
        outcome.proposed = true;
        let subject = self.device.id().to_string();

        // VI.E: scope governance.
        if let Some(governor) = &mut self.governor {
            let verdict = governor.decide(&subject, self.device.state(), decision.action(), tick);
            if !verdict.approved {
                outcome.governance_blocked = true;
                self.audit.record(
                    tick,
                    &subject,
                    AuditKind::GuardIntervention,
                    format!("governance vetoed `{}`", decision.action().name()),
                );
                return outcome;
            }
        }

        // VI.A + VI.B: the per-device guard stack.
        let alternatives: Vec<&Action> = decision.matched()[1..]
            .iter()
            .filter_map(|&rid| self.device.engine().rule(rid))
            .map(|r| r.action())
            .collect();
        let ctx = GuardContext {
            tick,
            subject: &subject,
            state: self.device.state(),
            alternatives: &alternatives,
            world_token: 0,
        };
        let verdict = self.stack.check(&ctx, decision.action(), oracle);
        outcome.guard_intervened = verdict.intervened();

        if let Some(action) = verdict.effective_action(decision.action()) {
            let action = action.clone();
            for ob in decision.obligations().iter().chain(verdict.obligations()) {
                self.device.obligations_mut().incur(ob.clone(), tick);
            }
            self.device.apply(&action);
            outcome.executed = Some(action);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafetyConfig;
    use apdm_device::{Actuator, DeviceKind, OrgId};
    use apdm_governance::MetaPolicy;
    use apdm_guards::NoHarmOracle;
    use apdm_policy::{Condition, EcaRule};
    use apdm_statespace::{Region, State, StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("speed", 0.0, 10.0).build()
    }

    fn racer(rule_delta: f64) -> Device {
        Device::builder(1u64, DeviceKind::new("mule"), OrgId::new("us"))
            .schema(schema())
            .actuator(Actuator::new("throttle", VarId(0), 10.0))
            .rule(EcaRule::new(
                "accelerate",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust("throttle", StateDelta::single(VarId(0), rule_delta)),
            ))
            .build()
    }

    #[test]
    fn unguarded_manager_just_executes() {
        let kernel = SafetyKernel::new(SafetyConfig::unguarded());
        let mut m = AutonomicManager::new(racer(9.0), &kernel);
        let out = m.handle(&Event::named("tick"), NoHarmOracle, 1);
        assert!(out.executed.is_some());
        assert!(!out.guard_intervened);
        assert_eq!(m.device().state().values()[0], 9.0);
    }

    #[test]
    fn statecheck_stops_the_racer() {
        let kernel =
            SafetyKernel::new(SafetyConfig::paper_recommended(Region::rect(&[(0.0, 7.0)])));
        let mut m = AutonomicManager::new(racer(9.0), &kernel);
        let out = m.handle(&Event::named("tick"), NoHarmOracle, 1);
        assert!(out.executed.is_none());
        assert!(out.guard_intervened);
        assert_eq!(m.device().state().values()[0], 0.0);
    }

    #[test]
    fn small_steps_inside_good_region_flow() {
        let kernel =
            SafetyKernel::new(SafetyConfig::paper_recommended(Region::rect(&[(0.0, 7.0)])));
        let mut m = AutonomicManager::new(racer(1.0), &kernel);
        for t in 1..=5 {
            let out = m.handle(&Event::named("tick"), NoHarmOracle, t);
            assert!(out.executed.is_some(), "tick {t} should execute");
        }
        assert_eq!(m.device().state().values()[0], 5.0);
        // The 8th step would cross into the bad region and is stopped.
        for t in 6..=10 {
            m.handle(&Event::named("tick"), NoHarmOracle, t);
        }
        assert!(m.device().state().values()[0] <= 7.0);
    }

    #[test]
    fn governance_veto_precedes_guards() {
        let kernel = SafetyKernel::new(
            SafetyConfig::paper_recommended(Region::All)
                .with_scope(MetaPolicy::new().forbid_action("throttle")),
        );
        let mut m = AutonomicManager::new(racer(1.0), &kernel);
        let out = m.handle(&Event::named("tick"), NoHarmOracle, 1);
        assert!(out.governance_blocked);
        assert!(out.executed.is_none());
        assert_eq!(m.audit().count(AuditKind::GuardIntervention), 1);
    }

    #[test]
    fn preaction_check_blocks_harmful_actions() {
        #[derive(Clone, Copy)]
        struct ThrottleHarms;
        impl HarmOracle for ThrottleHarms {
            fn direct_harm(&self, _s: &State, a: &Action) -> bool {
                a.name() == "throttle"
            }
        }
        let kernel = SafetyKernel::new(SafetyConfig::paper_recommended(Region::All));
        let mut m = AutonomicManager::new(racer(1.0), &kernel);
        let out = m.handle(&Event::named("tick"), ThrottleHarms, 1);
        assert!(out.executed.is_none());
        assert!(out.guard_intervened);
    }

    #[test]
    fn no_matching_rule_is_a_quiet_step() {
        let kernel = SafetyKernel::new(SafetyConfig::unguarded());
        let mut m = AutonomicManager::new(racer(1.0), &kernel);
        let out = m.handle(&Event::named("unknown"), NoHarmOracle, 1);
        assert!(!out.proposed);
        assert!(out.executed.is_none());
    }
}
