//! Property-based tests for the world simulator's ground-truth invariants.

use proptest::prelude::*;

use apdm_device::{Device, DeviceId, DeviceKind, OrgId};
use apdm_guards::{GuardStack, PreActionCheck};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_sim::recorder::{run_recorded, RecordSpec};
use apdm_sim::runner::{run_e1, run_e6, E1Arm, E6Arm};
use apdm_sim::{actions, Fleet, FleetConfig, World, WorldConfig};
use apdm_statespace::{StateDelta, StateSchema};

fn small_world(humans: &[(i32, i32)]) -> World {
    let mut w = World::new(WorldConfig {
        width: 12,
        height: 12,
        heat_limit: 10.0,
        heat_zone: None,
    });
    for &(x, y) in humans {
        w.add_human(vec![(x, y), (x + 1, y), (x, y)], true);
    }
    w
}

fn striker(id: u64, guarded: bool) -> (Device, GuardStack) {
    let device = Device::builder(id, DeviceKind::new("s"), OrgId::new("us"))
        .schema(StateSchema::builder().var("x", 0.0, 1.0).build())
        .rule(EcaRule::new(
            "strike",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
        ))
        .build();
    let stack = if guarded {
        GuardStack::new().with_preaction(PreActionCheck::new())
    } else {
        GuardStack::new()
    };
    (device, stack)
}

proptest! {
    /// Harm is monotone and bounded: the harm log never shrinks, never
    /// exceeds the human count, and each human is harmed at most once.
    #[test]
    fn harm_monotone_and_bounded(
        humans in proptest::collection::vec((0i32..10, 0i32..10), 1..6),
        positions in proptest::collection::vec((0i32..10, 0i32..10), 1..4),
        ticks in 1u64..20,
    ) {
        let mut world = small_world(&humans);
        let mut fleet = Fleet::new(FleetConfig::default());
        for (i, &pos) in positions.iter().enumerate() {
            let (d, s) = striker(i as u64, false);
            fleet.add(d, s, pos);
        }
        let events: Vec<(DeviceId, Event)> =
            fleet.iter().map(|(&id, _)| (id, Event::named("tick"))).collect();
        let mut prev = 0;
        for t in 1..=ticks {
            fleet.step(&mut world, t, &events);
            let now = world.harms().len();
            prop_assert!(now >= prev);
            prev = now;
        }
        prop_assert!(world.harms().len() <= humans.len());
        let mut victims: Vec<usize> = world.harms().iter().map(|h| h.human).collect();
        victims.sort_unstable();
        victims.dedup();
        prop_assert_eq!(victims.len(), world.harms().len(), "each human harmed once");
        // Fleet metrics mirror the world exactly.
        prop_assert_eq!(fleet.metrics().harm_count(), world.harms().len());
    }

    /// A guarded fleet never harms fewer... never harms MORE than the same
    /// unguarded fleet on the same world and seed (guard monotonicity).
    #[test]
    fn guards_never_increase_direct_harm(
        humans in proptest::collection::vec((0i32..10, 0i32..10), 1..5),
        positions in proptest::collection::vec((0i32..10, 0i32..10), 1..4),
    ) {
        let run = |guarded: bool| {
            let mut world = small_world(&humans);
            let mut fleet = Fleet::new(FleetConfig::default());
            for (i, &pos) in positions.iter().enumerate() {
                let (d, s) = striker(i as u64, guarded);
                fleet.add(d, s, pos);
            }
            let events: Vec<(DeviceId, Event)> =
                fleet.iter().map(|(&id, _)| (id, Event::named("tick"))).collect();
            for t in 1..=10 {
                fleet.step(&mut world, t, &events);
            }
            world.harms().len()
        };
        prop_assert!(run(true) <= run(false));
        prop_assert_eq!(run(true), 0, "the pre-action check stops every strike");
    }

    /// Fleet stepping is deterministic: identical configurations and seeds
    /// produce identical harm logs.
    #[test]
    fn fleet_is_deterministic(
        humans in proptest::collection::vec((0i32..10, 0i32..10), 1..4),
        pos in (0i32..10, 0i32..10),
    ) {
        let run = || {
            let mut world = small_world(&humans);
            let mut fleet = Fleet::new(FleetConfig::default());
            let (d, s) = striker(0, false);
            fleet.add(d, s, pos);
            let events: Vec<(DeviceId, Event)> =
                fleet.iter().map(|(&id, _)| (id, Event::named("tick"))).collect();
            for t in 1..=8 {
                fleet.step(&mut world, t, &events);
            }
            world.harms().to_vec()
        };
        prop_assert_eq!(run(), run());
    }

    /// Experiment runners are deterministic in their seed.
    #[test]
    fn runners_deterministic(seed in 0u64..50) {
        prop_assert_eq!(
            run_e1(E1Arm::PreAction, 6, 6, 30, seed),
            run_e1(E1Arm::PreAction, 6, 6, 30, seed)
        );
        prop_assert_eq!(
            run_e6(E6Arm::GradientUtility, 4, 5, 20, seed),
            run_e6(E6Arm::GradientUtility, 4, 5, 20, seed)
        );
    }

    /// E1's headline invariant holds for arbitrary seeds, not just the
    /// tabled one: the pre-action arm never records a direct harm.
    #[test]
    fn preaction_blocks_direct_for_all_seeds(seed in 0u64..30) {
        let r = run_e1(E1Arm::PreAction, 8, 8, 40, seed);
        prop_assert_eq!(r.direct_harms, 0);
    }

    /// THE parallel-engine contract: for any recorded scenario — fleet
    /// size, run length, seed, tamper rate, snapshot cadence — and any
    /// worker count and cache setting, the sealed hash-chained ledger and
    /// the metrics are bit-identical to the sequential engine's.
    #[test]
    fn parallel_engine_bit_identical_for_all_scenarios(
        n_devices in 1usize..12,
        ticks in 1u64..40,
        seed in 0u64..1_000,
        p_tamper in 0.0f64..0.2,
        snapshot_every in 0u64..10,
        threads in 2usize..=8,
        cache in any::<bool>(),
    ) {
        let base = RecordSpec {
            n_devices,
            ticks,
            seed,
            p_tamper,
            snapshot_every,
            threads: 1,
            cache: false,
        };
        let sequential = run_recorded(&base);
        let parallel = run_recorded(&RecordSpec { threads, cache, ..base });
        prop_assert_eq!(&sequential.ledger, &parallel.ledger);
        prop_assert_eq!(&sequential.metrics, &parallel.metrics);
    }
}
