//! The offline situational analyzer of Section VI.D.
//!
//! > "If a manual check is involved, and the human making the check is
//! > assisted by **another machine which remains offline and disconnected
//! > from other machines** while assisting the human to run through a
//! > situational analysis of whether the new network configuration can
//! > potentially cause harm to the humans, the probability of any single
//! > device or a collection of devices entering a bad state can be
//! > significantly reduced."
//!
//! [`OfflineAnalyzer`] dry-runs a *copy* of the proposed configuration —
//! devices cloned from their blueprints, world cloned from the live one —
//! with **no guards installed** (the analysis asks what the configuration
//! *could* do, not what guards would permit) and reports the predicted
//! harms. Nothing the analyzer does touches the live world: it is offline by
//! construction.

use serde::{Deserialize, Serialize};

use apdm_device::{Device, DeviceId};
use apdm_guards::GuardStack;
use apdm_policy::Event;

use crate::world::Cell;
use crate::{Fleet, FleetConfig, HarmCause, World};

/// Predicted outcome of running a candidate configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// Predicted total harms over the horizon.
    pub predicted_harms: usize,
    /// Predicted direct harms.
    pub direct: usize,
    /// Predicted indirect (hazard) harms.
    pub indirect: usize,
    /// Predicted aggregate harms.
    pub aggregate: usize,
    /// Horizon simulated.
    pub horizon: u64,
}

impl WhatIfReport {
    /// Does the analysis predict any harm?
    pub fn is_safe(&self) -> bool {
        self.predicted_harms == 0
    }
}

/// Recommendation for admitting one candidate device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionRecommendation {
    /// Admitting the candidate is predicted to add no harm.
    Admit,
    /// Admitting the candidate is predicted to add harm.
    Refuse {
        /// Predicted harms with the current configuration.
        without: usize,
        /// Predicted harms if the candidate joins.
        with: usize,
    },
}

impl AdmissionRecommendation {
    /// Did the analysis recommend admission?
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionRecommendation::Admit)
    }
}

/// The offline machine: dry-runs candidate configurations on cloned state.
#[derive(Debug, Clone, Copy)]
pub struct OfflineAnalyzer {
    horizon: u64,
}

impl OfflineAnalyzer {
    /// An analyzer simulating `horizon` ticks ahead.
    ///
    /// # Panics
    ///
    /// Panics on a zero horizon — an analysis that looks nowhere predicts
    /// nothing.
    pub fn new(horizon: u64) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        OfflineAnalyzer { horizon }
    }

    /// The analysis horizon.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Dry-run `blueprints` (device + position) against a clone of `world`,
    /// unguarded, and report predicted harms. The live world is untouched.
    pub fn analyze(&self, blueprints: &[(Device, Cell)], world: &World) -> WhatIfReport {
        let mut sandbox_world = world.clone();
        let mut fleet = Fleet::new(FleetConfig::default());
        for (device, pos) in blueprints {
            fleet.add(device.clone(), GuardStack::new(), *pos);
        }
        let events: Vec<(DeviceId, Event)> = fleet
            .iter()
            .map(|(&id, _)| (id, Event::named("tick")))
            .collect();
        for t in 1..=self.horizon {
            fleet.step(&mut sandbox_world, t, &events);
        }
        let m = fleet.metrics();
        WhatIfReport {
            predicted_harms: m.harm_count(),
            direct: m.harms_by_cause(HarmCause::Direct),
            indirect: m.harms_by_cause(HarmCause::IndirectHazard),
            aggregate: m.harms_by_cause(HarmCause::Aggregate),
            horizon: self.horizon,
        }
    }

    /// Compare the configuration with and without `candidate`; recommend
    /// admission only when the candidate adds no predicted harm.
    pub fn recommend(
        &self,
        existing: &[(Device, Cell)],
        candidate: &(Device, Cell),
        world: &World,
    ) -> AdmissionRecommendation {
        let without = self.analyze(existing, world).predicted_harms;
        let mut with_candidate: Vec<(Device, Cell)> = existing.to_vec();
        with_candidate.push(candidate.clone());
        let with = self.analyze(&with_candidate, world).predicted_harms;
        if with > without {
            AdmissionRecommendation::Refuse { without, with }
        } else {
            AdmissionRecommendation::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::actions;
    use crate::world::WorldConfig;
    use apdm_device::{Actuator, DeviceKind, OrgId};
    use apdm_policy::{Action, Condition, EcaRule};
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("heat", 0.0, 10.0).build()
    }

    fn world_with_human() -> World {
        let mut w = World::new(WorldConfig {
            width: 10,
            height: 10,
            heat_limit: 10.0,
            heat_zone: None,
        });
        w.add_human(vec![(5, 5)], false);
        w
    }

    fn heater(id: u64, output: f64) -> (Device, Cell) {
        let d = Device::builder(id, DeviceKind::new("heater"), OrgId::new("us"))
            .schema(schema())
            .initial_state(&[output])
            .actuator(Actuator::new("emit-heat", VarId(0), 1.0))
            .rule(EcaRule::new(
                "hold-heat",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust("emit-heat", StateDelta::single(VarId(0), 0.0)),
            ))
            .build();
        (d, (0, id as i32))
    }

    fn striker(id: u64) -> (Device, Cell) {
        let d = Device::builder(id, DeviceKind::new("striker"), OrgId::new("us"))
            .schema(schema())
            .rule(EcaRule::new(
                "strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
            .build();
        (d, (5, 6))
    }

    #[test]
    fn safe_configuration_predicts_no_harm() {
        let analyzer = OfflineAnalyzer::new(20);
        let blueprints = vec![heater(1, 3.0), heater(2, 3.0)];
        let report = analyzer.analyze(&blueprints, &world_with_human());
        assert!(report.is_safe());
        assert_eq!(report.horizon, 20);
    }

    #[test]
    fn aggregate_overheat_is_predicted() {
        let analyzer = OfflineAnalyzer::new(20);
        let blueprints = vec![heater(1, 4.0), heater(2, 4.0), heater(3, 4.0)];
        let report = analyzer.analyze(&blueprints, &world_with_human());
        assert!(!report.is_safe());
        assert_eq!(report.aggregate, 1);
    }

    #[test]
    fn the_live_world_is_untouched() {
        let analyzer = OfflineAnalyzer::new(20);
        let world = world_with_human();
        let blueprints = vec![striker(1)];
        let report = analyzer.analyze(&blueprints, &world);
        assert!(report.direct > 0);
        // Offline by construction: the real human is unharmed, the real
        // world un-ticked.
        assert_eq!(world.humans_unharmed(), 1);
        assert_eq!(world.tick(), 0);
        assert!(world.harms().is_empty());
    }

    #[test]
    fn recommend_refuses_the_tipping_device() {
        let analyzer = OfflineAnalyzer::new(20);
        let world = world_with_human();
        let existing = vec![heater(1, 4.0), heater(2, 4.0)];
        // A third 4.0 heater tips 8.0 -> 12.0 > 10.0.
        let rec = analyzer.recommend(&existing, &heater(3, 4.0), &world);
        match rec {
            AdmissionRecommendation::Refuse { without, with } => {
                assert_eq!(without, 0);
                assert!(with > 0);
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        // A mild candidate is fine.
        assert!(analyzer
            .recommend(&existing, &heater(4, 1.0), &world)
            .is_admit());
    }

    #[test]
    fn recommend_tolerates_already_harmful_baselines() {
        // If the existing configuration already predicts harm, a harmless
        // candidate must not be blamed for it.
        let analyzer = OfflineAnalyzer::new(20);
        let world = world_with_human();
        let existing = vec![striker(1)];
        assert!(analyzer
            .recommend(&existing, &heater(2, 1.0), &world)
            .is_admit());
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let _ = OfflineAnalyzer::new(0);
    }
}
