//! Seeded experiment entry points.
//!
//! One function per experiment in DESIGN.md §3; benches and integration
//! tests call these, so the numbers in EXPERIMENTS.md are regenerable from
//! either. All functions are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use apdm_device::{Actuator, Device, DeviceId, DeviceKind, OrgId, Sensor};
use apdm_governance::{Integrity, MetaPolicy, TripartiteGovernor};
use apdm_guards::tamper::TamperStatus;
use apdm_guards::{
    AdmissionRequest, AggregateSpec, CollaborativeAssessment, DeactivationController,
    FormationGuard, GuardStack, KillBallot, PreActionCheck, QuorumKillSwitch, StateSpaceGuard,
};
use apdm_ledger::{Ledger, RunRecorder};
use apdm_policy::obligation::ObligationCatalog;
use apdm_policy::{
    Action, BreakGlassController, BreakGlassRule, Condition, EcaRule, Event, Obligation,
};
use apdm_statespace::{
    Classifier, DerivativeSign, GradientSpec, GradientUtility, Label, LinearRisk,
    PreferenceOntology, Region, RegionClassifier, StateDelta, StateSchema, UtilityFn, VarId,
};
use apdm_telemetry as telemetry;

use crate::faults::{FaultInjector, Pathway};
use crate::oracle::{actions, OracleQuality};
use crate::world::WorldConfig;
use crate::{Fleet, FleetConfig, HarmCause, Metrics, SkynetScore, World};

// ---------------------------------------------------------------------------
// E1 — pre-action checks (Section VI.A)
// ---------------------------------------------------------------------------

/// Guard arms of experiment E1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E1Arm {
    /// No guards: the baseline.
    NoGuard,
    /// Pre-action check with a myopic oracle (direct harm only).
    PreAction,
    /// Pre-action check with a predictive oracle (indirect harm too).
    PreActionPredictive,
    /// Myopic pre-action check plus hazard obligations (warning signs).
    PreActionObligations,
}

impl E1Arm {
    /// All arms, table order.
    pub fn all() -> [E1Arm; 4] {
        [
            E1Arm::NoGuard,
            E1Arm::PreAction,
            E1Arm::PreActionPredictive,
            E1Arm::PreActionObligations,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            E1Arm::NoGuard => "no-guard",
            E1Arm::PreAction => "pre-action",
            E1Arm::PreActionPredictive => "pre-action+lookahead",
            E1Arm::PreActionObligations => "pre-action+obligations",
        }
    }
}

/// Report row of experiment E1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E1Report {
    /// Arm name.
    pub arm: String,
    /// Direct harms (strikes that landed).
    pub direct_harms: usize,
    /// Indirect harms (humans in holes).
    pub indirect_harms: usize,
    /// Guard interventions.
    pub interventions: u64,
    /// Fraction of proposals that executed.
    pub availability: f64,
}

fn e1_schema() -> StateSchema {
    StateSchema::builder().var("task", 0.0, 1.0).build()
}

/// A device that strikes whenever told to engage and digs whenever told to
/// entrench (both via `tick` for simplicity; strikers and diggers are
/// distinct devices).
fn e1_device(id: u64, action: &str) -> Device {
    Device::builder(id, DeviceKind::new("worker"), OrgId::new("us"))
        .schema(e1_schema())
        .sensor(Sensor::new("tasking", VarId(0)))
        .rule(EcaRule::new(
            "do-task",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust(action, StateDelta::empty()).physical(),
        ))
        .build()
}

/// Run experiment E1: a world of path-walking humans, devices that strike
/// and dig, and the Section VI.A guard arms.
pub fn run_e1(arm: E1Arm, n_humans: usize, n_devices: usize, ticks: u64, seed: u64) -> E1Report {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig {
        width: 30,
        height: 30,
        heat_limit: f64::MAX,
        heat_zone: None,
    });

    // Humans walk straight east-west lines at random rows.
    for _ in 0..n_humans {
        let row = rng.random_range(0..30);
        let path: Vec<(i32, i32)> = (0..30).map(|x| (x, row)).collect();
        world.add_human(path, true);
    }

    let oracle = match arm {
        E1Arm::PreActionPredictive => OracleQuality::Predictive { horizon: 40 },
        _ => OracleQuality::Myopic,
    };
    let mut fleet = Fleet::new(FleetConfig {
        oracle,
        ..FleetConfig::default()
    });

    let stack_for = |arm: E1Arm| -> GuardStack {
        match arm {
            E1Arm::NoGuard => GuardStack::new(),
            E1Arm::PreAction => GuardStack::new().with_preaction(PreActionCheck::new()),
            E1Arm::PreActionPredictive => {
                GuardStack::new().with_preaction(PreActionCheck::new().with_lookahead(40))
            }
            E1Arm::PreActionObligations => {
                let mut catalog = ObligationCatalog::new();
                catalog.register(
                    actions::DIG_HOLE,
                    Obligation::during(Action::adjust(actions::POST_WARNING, StateDelta::empty())),
                );
                GuardStack::new().with_preaction(PreActionCheck::new().with_obligations(catalog))
            }
        }
    };

    // Half strikers, half diggers, scattered near human rows.
    for i in 0..n_devices {
        let action = if i % 2 == 0 {
            actions::STRIKE
        } else {
            actions::DIG_HOLE
        };
        let pos = (rng.random_range(0..30), rng.random_range(0..30));
        fleet.add(e1_device(i as u64, action), stack_for(arm), pos);
    }

    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=ticks {
        fleet.step(&mut world, t, &events);
    }

    let m = fleet.metrics();
    E1Report {
        arm: arm.name().to_string(),
        direct_harms: m.harms_by_cause(HarmCause::Direct),
        indirect_harms: m.harms_by_cause(HarmCause::IndirectHazard),
        interventions: m.interventions,
        availability: m.availability(),
    }
}

// ---------------------------------------------------------------------------
// E2 — state-space checks (Section VI.B)
// ---------------------------------------------------------------------------

/// Guard arms of experiment E2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E2Arm {
    /// Unguarded random walk.
    NoGuard,
    /// Hard state check: refuse bad destinations.
    HardCheck,
    /// Hard check plus ontology + risk for forced dilemmas.
    OntologyRisk,
    /// Hard check plus audited break-glass escapes for forced dilemmas
    /// (the paper's alternative (a) to the ontology's (b)).
    BreakGlass,
}

impl E2Arm {
    /// All arms, table order.
    pub fn all() -> [E2Arm; 4] {
        [
            E2Arm::NoGuard,
            E2Arm::HardCheck,
            E2Arm::OntologyRisk,
            E2Arm::BreakGlass,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            E2Arm::NoGuard => "no-guard",
            E2Arm::HardCheck => "hard-check",
            E2Arm::OntologyRisk => "ontology+risk",
            E2Arm::BreakGlass => "break-glass",
        }
    }
}

/// Report row of experiment E2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2Report {
    /// Arm name.
    pub arm: String,
    /// Steps that ended in a bad state.
    pub bad_entries: u64,
    /// Steps that ended in the *worst* severity class.
    pub worst_entries: u64,
    /// Steps where the walker froze (denied with no escape).
    pub frozen_steps: u64,
    /// Break-glass grants (audited).
    pub breakglass_grants: u64,
    /// Total steps taken across episodes.
    pub steps: u64,
}

/// Run experiment E2: seeded random walks over the Figure-3 state space,
/// including forced-dilemma episodes that start inside the bad region.
pub fn run_e2(arm: E2Arm, episodes: u64, steps_per_episode: u64, seed: u64) -> E2Report {
    let schema = StateSchema::builder()
        .var("x", 0.0, 10.0)
        .var("y", 0.0, 10.0)
        .build();
    let good = Region::rect(&[(3.0, 7.0), (3.0, 7.0)]);
    let classifier = RegionClassifier::new(good.clone());

    // Severity: the west margin is survivable ("fire"), the east margin is
    // the worst ("loss of life"), everything else in between.
    let make_ontology = || {
        let mut ont = PreferenceOntology::new();
        let west = ont.add_class("west-margin", Region::rect(&[(0.0, 3.0), (0.0, 10.0)]));
        let middle = ont.add_class("elsewhere", Region::rect(&[(0.0, 7.0), (0.0, 10.0)]));
        let east = ont.add_class("east-margin", Region::All);
        ont.prefer(west, middle).expect("acyclic");
        ont.prefer(middle, east).expect("acyclic");
        ont
    };
    let worst_region = Region::rect(&[(7.0, 10.0), (0.0, 10.0)]);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = E2Report {
        arm: arm.name().to_string(),
        bad_entries: 0,
        worst_entries: 0,
        frozen_steps: 0,
        breakglass_grants: 0,
        steps: 0,
    };

    for episode in 0..episodes {
        // A quarter of episodes are forced dilemmas starting in the bad
        // region.
        let start = if episode % 4 == 0 {
            schema
                .state(&[rng.random_range(0.0..2.0), rng.random_range(0.0..10.0)])
                .unwrap()
        } else {
            schema.state(&[5.0, 5.0]).unwrap()
        };

        let mut guard = match arm {
            E2Arm::NoGuard => None,
            E2Arm::HardCheck => Some(StateSpaceGuard::new(classifier.clone())),
            E2Arm::OntologyRisk => Some(
                StateSpaceGuard::new(classifier.clone())
                    .with_ontology(make_ontology())
                    .with_risk(LinearRisk::new(vec![1.0, 0.2], 0.0)),
            ),
            E2Arm::BreakGlass => {
                let mut bg = BreakGlassController::new();
                bg.add_rule(BreakGlassRule::new(
                    "emergency-recenter",
                    Condition::True,
                    Action::adjust("recenter", StateDelta::single(VarId(0), 5.0)),
                    3,
                ));
                Some(StateSpaceGuard::new(classifier.clone()).with_breakglass(bg))
            }
        };

        let mut state = start;
        for step in 0..steps_per_episode {
            report.steps += 1;
            // The logic proposes a random unit move; alternatives are the
            // three other compass moves.
            let dirs = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)];
            let k = rng.random_range(0..4);
            let mk = |d: (f64, f64), name: &str| {
                Action::adjust(name, StateDelta::single(VarId(0), d.0).and(VarId(1), d.1))
            };
            let proposed = mk(dirs[k], "walk");
            let alternatives: Vec<Action> = (0..4)
                .filter(|&i| i != k)
                .map(|i| mk(dirs[i], ["e", "w", "n", "s"][i]))
                .collect();

            let executed = match &mut guard {
                None => Some(proposed.clone()),
                Some(g) => {
                    let alt_refs: Vec<&Action> = alternatives.iter().collect();
                    let verdict = g.check(
                        "walker",
                        episode * steps_per_episode + step,
                        &state,
                        &proposed,
                        &alt_refs,
                    );
                    verdict.effective_action(&proposed).cloned()
                }
            };
            match executed {
                Some(action) => {
                    state = state.apply(action.delta());
                }
                None => {
                    report.frozen_steps += 1;
                }
            }
            if classifier.classify(&state) == Label::Bad {
                report.bad_entries += 1;
                if worst_region.contains(&state) {
                    report.worst_entries += 1;
                }
            }
        }
        if let Some(g) = &guard {
            if let Some(bg) = g.breakglass() {
                report.breakglass_grants += bg
                    .audit()
                    .entries()
                    .iter()
                    .filter(|e| e.detail.starts_with("granted"))
                    .count() as u64;
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// E2-D — break-glass trustworthiness under sensor deception (Section VI.B)
// ---------------------------------------------------------------------------

/// Arms of the deception-hardening experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E2dArm {
    /// The break-glass decision trusts one sensor (the one the attacker
    /// targets first).
    SingleSensor,
    /// The decision trusts the collusion-robust fusion of five redundant
    /// sensors (the paper's reference \[13\] defense).
    FusedSensors,
}

impl E2dArm {
    /// Both arms.
    pub fn all() -> [E2dArm; 2] {
        [E2dArm::SingleSensor, E2dArm::FusedSensors]
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            E2dArm::SingleSensor => "single-sensor",
            E2dArm::FusedSensors => "fused-sensors",
        }
    }
}

/// Report row of the deception experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2dReport {
    /// Arm name.
    pub arm: String,
    /// Break-glass grants during *fake* emergencies (the attack succeeding).
    pub wrongful_grants: u64,
    /// Grants during real emergencies (the capability preserved).
    pub rightful_grants: u64,
    /// Real emergencies that were missed.
    pub missed_emergencies: u64,
    /// Episodes simulated.
    pub episodes: u64,
}

/// Run the Section VI.B deception experiment: "it is critical that a device
/// be able to obtain trustworthy information ... to base its decision of
/// breaking the glass on true information."
///
/// Each episode the true threat is usually low; with probability 0.2 a real
/// emergency occurs. An attacker deceives 2 of the device's 5 threat sensors
/// (sticking them at maximum) with probability `p_deceived`. The break-glass
/// emergency condition is `perceived threat >= 0.9`.
pub fn run_e2d(arm: E2dArm, episodes: u64, p_deceived: f64, seed: u64) -> E2dReport {
    use apdm_device::{Sensor, SensorFault, TrustFusion};

    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let fusion = TrustFusion::new(0.1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = E2dReport {
        arm: arm.name().to_string(),
        wrongful_grants: 0,
        rightful_grants: 0,
        missed_emergencies: 0,
        episodes,
    };

    for episode in 0..episodes {
        let real_emergency = rng.random_range(0.0..1.0) < 0.2;
        let true_threat = if real_emergency { 0.95 } else { 0.1 };
        let attacked = rng.random_range(0.0..1.0) < p_deceived;

        let mut sensors: Vec<Sensor> = (0..5)
            .map(|i| Sensor::new(format!("t{i}"), VarId(0)))
            .collect();
        if attacked {
            // The attacker controls sensors 0 and 1 — a minority.
            sensors[0].inject_fault(SensorFault::StuckAt(1.0));
            sensors[1].inject_fault(SensorFault::StuckAt(1.0));
        }
        let readings: Vec<f64> = sensors.iter().map(|s| s.observe(true_threat)).collect();
        let perceived_threat = match arm {
            E2dArm::SingleSensor => readings[0],
            E2dArm::FusedSensors => fusion.fuse(&readings).expect("readings").value,
        };

        let mut controller = BreakGlassController::new();
        controller.add_rule(BreakGlassRule::new(
            "emergency-override",
            Condition::state_at_least(VarId(0), 0.9),
            Action::adjust("override", StateDelta::empty()),
            1,
        ));
        let perceived = schema.state_clamped(&[perceived_threat]);
        let granted = controller
            .attempt("device", &Event::named("assess"), &perceived, episode)
            .is_granted();
        match (real_emergency, granted) {
            (false, true) => report.wrongful_grants += 1,
            (true, true) => report.rightful_grants += 1,
            (true, false) => report.missed_emergencies += 1,
            (false, false) => {}
        }
    }
    report
}

// ---------------------------------------------------------------------------
// E3 — deactivation (Section VI.C)
// ---------------------------------------------------------------------------

/// Arms of experiment E3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E3Arm {
    /// No containment.
    NoContainment,
    /// Per-device bad-state deactivation (Section VI.C).
    SelfDeactivate,
    /// Quorum kill switch (separation of privilege).
    QuorumKill,
}

impl E3Arm {
    /// All arms, table order.
    pub fn all() -> [E3Arm; 3] {
        [
            E3Arm::NoContainment,
            E3Arm::SelfDeactivate,
            E3Arm::QuorumKill,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            E3Arm::NoContainment => "none",
            E3Arm::SelfDeactivate => "self-deactivate",
            E3Arm::QuorumKill => "quorum-kill",
        }
    }
}

/// Report row of experiment E3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E3Report {
    /// Arm name.
    pub arm: String,
    /// Fraction of the fleet compromised at deployment.
    pub p_compromised: f64,
    /// Humans harmed over the run.
    pub harms: usize,
    /// Tick by which every compromised device was contained (None = never).
    pub containment_tick: Option<u64>,
    /// Healthy devices wrongly deactivated.
    pub healthy_killed: u64,
    /// Fraction of healthy devices still active at the end.
    pub availability: f64,
}

/// Run experiment E3: a patrol fleet with a compromised fraction that turns
/// to striking; containment arms race the harm.
pub fn run_e3(arm: E3Arm, n_devices: usize, p_compromised: f64, ticks: u64, seed: u64) -> E3Report {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig {
        width: 30,
        height: 30,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    // Humans scattered on looping circuits.
    for i in 0..10 {
        let row = 3 * i;
        world.add_human(vec![(5, row), (6, row), (7, row), (6, row)], true);
    }

    // A compromised device runs hot on its `rogue` variable (observable
    // posture) and strikes each tick; healthy ones patrol (noop).
    let schema = StateSchema::builder().var("rogue", 0.0, 1.0).build();
    let n_compromised = ((n_devices as f64) * p_compromised).round() as usize;

    let mut fleet = Fleet::new(FleetConfig::default());
    if arm == E3Arm::SelfDeactivate {
        fleet.set_deactivation(DeactivationController::new(
            RegionClassifier::new(Region::rect(&[(0.0, 0.5)])),
            2,
        ));
    }
    let mut quorum = match arm {
        E3Arm::QuorumKill => Some(QuorumKillSwitch::new(5, 3)),
        _ => None,
    };

    for i in 0..n_devices {
        let compromised = i < n_compromised;
        let mut builder = Device::builder(i as u64, DeviceKind::new("patrol"), OrgId::new("us"))
            .schema(schema.clone())
            .initial_state(&[if compromised { 1.0 } else { 0.0 }]);
        builder = if compromised {
            builder.rule(EcaRule::new(
                "rogue-strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
        } else {
            builder.rule(EcaRule::new(
                "patrol",
                Event::pattern("tick"),
                Condition::True,
                Action::noop(),
            ))
        };
        let pos = (rng.random_range(4..8), rng.random_range(0..30));
        fleet.add(builder.build(), GuardStack::new(), pos);
    }

    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    let mut containment_tick = None;
    let mut healthy_killed = 0u64;

    for t in 1..=ticks {
        // Quorum watchers: each of 5 watchers independently observes every
        // device's rogue posture with 99% reliability and votes. The quorum
        // absorbs individual misreads; correlated failure of 3+ watchers is
        // outside this experiment (that is E5's territory).
        if let Some(q) = &mut quorum {
            let observations: Vec<(DeviceId, bool)> = fleet
                .iter()
                .filter(|(_, m)| m.device.is_active())
                .map(|(&id, m)| (id, m.device.state().values()[0] > 0.5))
                .collect();
            for (id, is_rogue) in observations {
                for watcher in 0..5 {
                    let seen = if rng.random_range(0.0..1.0) < 0.99 {
                        is_rogue
                    } else {
                        !is_rogue
                    };
                    let ballot = KillBallot {
                        watcher,
                        subject: id.to_string(),
                        rogue: seen,
                        cast_tick: t,
                    };
                    if let Some(order) = q.apply_ballot(&ballot, t) {
                        let idx: u64 = order
                            .subject
                            .trim_start_matches("dev-")
                            .parse()
                            .unwrap_or(0);
                        if let Some(member) = fleet.member_mut(DeviceId(idx)) {
                            if member.device.state().values()[0] <= 0.5 {
                                healthy_killed += 1;
                            }
                            member.device.deactivate();
                        }
                    }
                }
            }
        }

        fleet.step(&mut world, t, &events);

        // Containment check: all compromised devices inactive?
        if containment_tick.is_none() && n_compromised > 0 {
            let all_contained = (0..n_compromised).all(|i| {
                !fleet
                    .member(DeviceId(i as u64))
                    .map(|m| m.device.is_active())
                    .unwrap_or(false)
            });
            if all_contained {
                containment_tick = Some(t);
            }
        }
    }

    let healthy_total = (n_devices - n_compromised).max(1);
    let healthy_active = ((n_compromised)..n_devices)
        .filter(|&i| {
            fleet
                .member(DeviceId(i as u64))
                .map(|m| m.device.is_active())
                .unwrap_or(false)
        })
        .count();

    E3Report {
        arm: arm.name().to_string(),
        p_compromised,
        harms: fleet.metrics().harm_count(),
        containment_tick,
        healthy_killed,
        availability: healthy_active as f64 / healthy_total as f64,
    }
}

// ---------------------------------------------------------------------------
// E4 — collection formation (Section VI.D)
// ---------------------------------------------------------------------------

/// Arms of experiment E4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E4Arm {
    /// Devices join and heat freely.
    NoCheck,
    /// Formation guard gates admission.
    FormationCheck,
    /// All admitted, but a collaborative assessment coordinates actions.
    Collaborative,
}

impl E4Arm {
    /// All arms, table order.
    pub fn all() -> [E4Arm; 3] {
        [E4Arm::NoCheck, E4Arm::FormationCheck, E4Arm::Collaborative]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            E4Arm::NoCheck => "no-check",
            E4Arm::FormationCheck => "formation-check",
            E4Arm::Collaborative => "collaborative-assessment",
        }
    }
}

/// Report row of experiment E4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E4Report {
    /// Arm name.
    pub arm: String,
    /// Aggregate (fire) harms.
    pub aggregate_harms: usize,
    /// Devices admitted into the collection.
    pub admitted: usize,
    /// Devices refused at formation.
    pub refused: usize,
    /// Work done: total heat-ticks delivered (usefulness measure).
    pub work_done: f64,
}

/// Run experiment E4: heaters each individually safe, joining a shared
/// enclosure whose aggregate heat limit they can collectively exceed.
pub fn run_e4(
    arm: E4Arm,
    n_devices: usize,
    heat_per_device: f64,
    heat_limit: f64,
    ticks: u64,
    seed: u64,
) -> E4Report {
    let schema = StateSchema::builder().var("heat", 0.0, 10.0).build();
    let spec = AggregateSpec::sum_of(VarId(0), heat_limit);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut world = World::new(WorldConfig {
        width: 10,
        height: 10,
        heat_limit,
        heat_zone: None,
    });
    world.add_human(vec![(5, 5)], false); // the technician in the enclosure

    let mut formation = match arm {
        E4Arm::FormationCheck => Some(FormationGuard::new(spec)),
        _ => None,
    };
    let assessment = match arm {
        E4Arm::Collaborative => Some(CollaborativeAssessment::new(spec)),
        _ => None,
    };

    let mut admitted_states: Vec<apdm_statespace::State> = Vec::new();
    let mut admitted = 0usize;
    let mut refused = 0usize;
    let mut work_done = 0.0;
    let mut aggregate_harms = 0usize;
    let mut heats: Vec<f64> = Vec::new();

    // Admission phase: one device per tick asks to join at target heat.
    for i in 0..n_devices {
        let target = schema.state(&[heat_per_device]).expect("in bounds");
        let joined = match &mut formation {
            Some(guard) => {
                let request = AdmissionRequest::declare(&format!("heater-{i}"), spec, &target);
                guard
                    .review(&request, &admitted_states, i as u64, &mut rng)
                    .is_admitted()
            }
            None => true,
        };
        if joined {
            admitted += 1;
            admitted_states.push(target);
            heats.push(0.0);
        } else {
            refused += 1;
        }
    }

    // Operation phase.
    let heat_action =
        |amount: f64| Action::adjust("emit-heat", StateDelta::single(VarId(0), amount));
    for t in 1..=ticks {
        // Each admitted device wants to run at heat_per_device.
        let proposals: Vec<(apdm_statespace::State, Action)> = heats
            .iter()
            .map(|&h| {
                let s = schema.state_clamped(&[h]);
                (s, heat_action(heat_per_device - h))
            })
            .collect();
        let abstain: Vec<usize> = match &assessment {
            Some(a) => a.must_abstain(&proposals),
            None => Vec::new(),
        };
        for (i, heat) in heats.iter_mut().enumerate() {
            if !abstain.contains(&i) {
                *heat = heat_per_device;
            }
            world.set_heat(i as u64, *heat);
            work_done += *heat;
        }
        let harms = world.step(t);
        aggregate_harms += harms
            .iter()
            .filter(|h| h.cause == HarmCause::Aggregate)
            .count();
    }

    E4Report {
        arm: arm.name().to_string(),
        aggregate_harms,
        admitted,
        refused,
        work_done,
    }
}

// ---------------------------------------------------------------------------
// E5 — AI overseeing AI (Section VI.E)
// ---------------------------------------------------------------------------

/// Arms of experiment E5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E5Arm {
    /// Executive collective alone.
    ExecutiveOnly,
    /// Full tripartite 2-of-3 governance.
    Tripartite,
}

impl E5Arm {
    /// All arms.
    pub fn all() -> [E5Arm; 2] {
        [E5Arm::ExecutiveOnly, E5Arm::Tripartite]
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            E5Arm::ExecutiveOnly => "executive-only",
            E5Arm::Tripartite => "tripartite-2of3",
        }
    }
}

/// Report row of experiment E5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E5Report {
    /// Arm name.
    pub arm: String,
    /// How many branches were corrupted (0..=3).
    pub corrupted_branches: usize,
    /// Malevolent (out-of-scope) actions that executed.
    pub malevolent_executed: u64,
    /// Malevolent actions blocked.
    pub malevolent_blocked: u64,
    /// Legitimate actions wrongly blocked.
    pub false_blocks: u64,
    /// Total decisions.
    pub decisions: u64,
}

/// Run experiment E5: a stream of half-legitimate, half-out-of-scope actions
/// through a governor with `corrupted_branches` of its collectives captured.
pub fn run_e5(arm: E5Arm, corrupted_branches: usize, n_actions: u64, seed: u64) -> E5Report {
    let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
    let state = schema.state(&[5.0]).unwrap();
    let scope = MetaPolicy::new()
        .forbid_action("strike-humans")
        .max_delta_magnitude(2.0);
    let mut governor = TripartiteGovernor::new(scope);

    // Corruption order: executive first (most exposed), then judiciary,
    // then legislative.
    let order: [fn(&mut TripartiteGovernor) -> &mut apdm_governance::Collective; 3] = [
        TripartiteGovernor::executive_mut,
        TripartiteGovernor::judiciary_mut,
        TripartiteGovernor::legislative_mut,
    ];
    for branch in order.iter().take(corrupted_branches.min(3)) {
        branch(&mut governor).set_integrity(Integrity::Compromised);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n_actions {
        let malevolent = rng.random_range(0.0..1.0) < 0.5;
        let action = if malevolent {
            if rng.random_range(0.0..1.0) < 0.5 {
                Action::adjust("strike-humans", StateDelta::empty()).physical()
            } else {
                Action::adjust("lunge", StateDelta::single(VarId(0), 4.0))
            }
        } else {
            Action::adjust("patrol", StateDelta::single(VarId(0), 0.5))
        };
        match arm {
            E5Arm::ExecutiveOnly => {
                governor.decide_executive_only(&state, &action);
            }
            E5Arm::Tripartite => {
                governor.decide("fleet", &state, &action, 0);
            }
        }
    }

    let stats = governor.stats();
    E5Report {
        arm: arm.name().to_string(),
        corrupted_branches,
        malevolent_executed: stats.malevolent_executed,
        malevolent_blocked: stats.malevolent_blocked,
        false_blocks: stats.false_blocks,
        decisions: stats.decisions,
    }
}

// ---------------------------------------------------------------------------
// E6 — ill-defined state spaces (Section VII)
// ---------------------------------------------------------------------------

/// Arms of experiment E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E6Arm {
    /// The device knows the true good/bad function (upper bound).
    ExactOracle,
    /// The device knows only the partial-derivative signs (Section VII).
    GradientUtility,
    /// The device picks moves at random (lower bound).
    Random,
}

impl E6Arm {
    /// All arms.
    pub fn all() -> [E6Arm; 3] {
        [E6Arm::ExactOracle, E6Arm::GradientUtility, E6Arm::Random]
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            E6Arm::ExactOracle => "exact-oracle",
            E6Arm::GradientUtility => "gradient-utility",
            E6Arm::Random => "random",
        }
    }
}

/// Report row of experiment E6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E6Report {
    /// Arm name.
    pub arm: String,
    /// State dimensionality.
    pub dims: usize,
    /// Fraction of steps that landed in a (hidden) bad state.
    pub harm_probability: f64,
    /// Steps simulated.
    pub steps: u64,
}

/// Run experiment E6: the true good/bad function is a hidden weighted
/// halfspace over N variables; devices choose among K random candidate moves
/// using the arm's knowledge.
pub fn run_e6(
    arm: E6Arm,
    dims: usize,
    episodes: u64,
    steps_per_episode: u64,
    seed: u64,
) -> E6Report {
    assert!(dims >= 1);
    let mut builder = StateSchema::builder();
    for i in 0..dims {
        builder = builder.var(format!("x{i}"), 0.0, 1.0);
    }
    let schema = builder.build();

    // Hidden truth: bad when sum of odd-indexed vars minus even-indexed vars
    // exceeds a threshold (so signs alternate: even vars protective).
    let mut rng = StdRng::seed_from_u64(seed);
    // Odd variables raise the hidden badness, even ones lower it; the last
    // variable (whose sign the human could not determine, below) carries
    // extra weight, so the device's blind spot genuinely matters.
    let weights: Vec<f64> = (0..dims)
        .map(|i| {
            let w = if i % 2 == 0 { -1.0 } else { 1.0 };
            if i + 1 == dims && dims >= 3 {
                dims as f64
            } else {
                w
            }
        })
        .collect();
    let threshold = 0.15 * dims as f64;
    let is_bad = |s: &apdm_statespace::State| {
        let score: f64 = s.values().iter().zip(&weights).map(|(v, w)| v * w).sum();
        score > threshold
    };

    // The gradient spec a human could still write: just the signs — and, as
    // the paper concedes, only "with respect to some (if not all) of the
    // state variables": the last variable's sign is unknown to the device.
    let signs: Vec<DerivativeSign> = (0..dims)
        .map(|i| {
            if i + 1 == dims && dims >= 3 {
                DerivativeSign::Unknown
            } else if i % 2 == 0 {
                DerivativeSign::Positive
            } else {
                DerivativeSign::Negative
            }
        })
        .collect();
    let utility = GradientUtility::new(GradientSpec::from_signs(&signs));

    let mut bad_steps = 0u64;
    let mut steps = 0u64;
    for _ in 0..episodes {
        // Start in safe territory: the blind-spot variable begins low.
        let mut start = vec![0.5; dims];
        if dims >= 3 {
            start[dims - 1] = 0.1;
        }
        let mut state = schema.state_clamped(&start);
        for _ in 0..steps_per_episode {
            steps += 1;
            // K = 4 candidate random moves.
            let candidates: Vec<StateDelta> = (0..4)
                .map(|_| {
                    let var = VarId(rng.random_range(0..dims));
                    let dv = rng.random_range(-0.2..0.2);
                    StateDelta::single(var, dv)
                })
                .collect();
            let choice = match arm {
                E6Arm::Random => rng.random_range(0..candidates.len()),
                E6Arm::GradientUtility => utility.best_delta(&state, &candidates).unwrap_or(0),
                E6Arm::ExactOracle => {
                    // Prefer any candidate whose destination is good; among
                    // good ones pick the first.
                    candidates
                        .iter()
                        .position(|d| !is_bad(&state.apply(d)))
                        .unwrap_or(0)
                }
            };
            state = state.apply(&candidates[choice]);
            if is_bad(&state) {
                bad_steps += 1;
            }
        }
    }

    E6Report {
        arm: arm.name().to_string(),
        dims,
        harm_probability: bad_steps as f64 / steps.max(1) as f64,
        steps,
    }
}

// ---------------------------------------------------------------------------
// E7 — malevolence pathways (Section IV)
// ---------------------------------------------------------------------------

/// Report row of experiment E7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E7Report {
    /// Pathway name.
    pub pathway: String,
    /// Whether guards were installed.
    pub guarded: bool,
    /// Tick of the first harm, if any.
    pub first_harm_tick: Option<u64>,
    /// Total harms.
    pub harms: usize,
}

/// Run experiment E7: inject one Section-IV pathway into a peacekeeping
/// fleet and measure time-to-first-harm.
pub fn run_e7(
    pathway: Pathway,
    guarded: bool,
    n_devices: usize,
    ticks: u64,
    seed: u64,
) -> E7Report {
    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let mut world = World::new(WorldConfig {
        width: 20,
        height: 20,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    for i in 0..5 {
        let row = 4 * i;
        world.add_human(vec![(5, row), (6, row), (7, row), (6, row)], true);
    }

    let mut fleet = Fleet::new(FleetConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut ambient: Vec<f64> = Vec::new();
    for i in 0..n_devices {
        let threat = rng.random_range(0.0..1.0);
        ambient.push(threat);
        let device = Device::builder(i as u64, DeviceKind::new("peacekeeper"), OrgId::new("us"))
            .schema(schema.clone())
            .initial_state(&[threat])
            .sensor(Sensor::new("threat-sensor", VarId(0)))
            .rule(EcaRule::new(
                "observe",
                Event::pattern("tick"),
                Condition::True,
                Action::noop(),
            ))
            .build();
        let stack = if guarded {
            GuardStack::new().with_preaction(PreActionCheck::new())
        } else {
            GuardStack::new()
        };
        let pos = (rng.random_range(4..8), rng.random_range(0..20));
        fleet.add(device, stack, pos);
    }

    let mut injector = FaultInjector::new(pathway, seed);
    injector.inject(&mut fleet);

    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=ticks {
        injector.tick(&mut fleet);
        // Devices continuously sense their ambient threat level; faulted
        // sensors (the adversarial-ML and malicious-actor pathways) distort
        // these readings.
        for (i, (_, member)) in fleet.iter_mut().enumerate() {
            member.device.sense(&[(0, ambient[i])]);
        }
        fleet.step(&mut world, t, &events);
    }

    E7Report {
        pathway: pathway.name().to_string(),
        guarded,
        first_harm_tick: fleet.metrics().first_harm_tick(),
        harms: fleet.metrics().harm_count(),
    }
}

// ---------------------------------------------------------------------------
// A1 — guard-stack ablation
// ---------------------------------------------------------------------------

/// Which guards are enabled in an A1 ablation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardMask {
    /// Pre-action check (VI.A).
    pub preaction: bool,
    /// State-space check (VI.B).
    pub statecheck: bool,
    /// Deactivation controller (VI.C).
    pub deactivation: bool,
    /// Formation check (VI.D).
    pub formation: bool,
}

impl GuardMask {
    /// All 16 combinations, in binary order.
    pub fn all() -> Vec<GuardMask> {
        (0..16)
            .map(|i| GuardMask {
                preaction: i & 1 != 0,
                statecheck: i & 2 != 0,
                deactivation: i & 4 != 0,
                formation: i & 8 != 0,
            })
            .collect()
    }

    /// Compact name like `P+S+D+F` / `none`.
    pub fn name(&self) -> String {
        let mut parts = Vec::new();
        if self.preaction {
            parts.push("P");
        }
        if self.statecheck {
            parts.push("S");
        }
        if self.deactivation {
            parts.push("D");
        }
        if self.formation {
            parts.push("F");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Report row of experiment A1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A1Report {
    /// Mask name.
    pub mask: String,
    /// Direct harms.
    pub direct: usize,
    /// Indirect harms.
    pub indirect: usize,
    /// Aggregate harms.
    pub aggregate: usize,
    /// Total harms.
    pub total: usize,
    /// Availability (executed / proposed).
    pub availability: f64,
}

/// Run experiment A1: a mixed fault load against one guard-mask cell.
///
/// The load exercises three distinct harm classes so the ablation shows
/// which mechanism removes which:
///
/// * **strikers** whose aggression escalates with each strike — the
///   pre-action check (P) stops them instantly; the state check (S) freezes
///   the escalation once their next state would be bad; deactivation (D)
///   removes devices observed in bad states;
/// * **diggers** leaving holes on walkers' paths — only the predictive
///   pre-action check catches this indirect harm;
/// * **heaters** inside an enclosure with two technicians, each heater
///   individually safe but six jointly over the limit — only the formation
///   check (F), which evaluates the *declared operating point* at admission
///   time, prevents the fire.
pub fn run_a1(mask: GuardMask, ticks: u64, seed: u64) -> A1Report {
    let mut rng = StdRng::seed_from_u64(seed);
    let heat_limit = 10.0;
    let mut world = World::new(WorldConfig {
        width: 30,
        height: 30,
        heat_limit,
        heat_zone: Some(((24, 24), (29, 29))),
    });
    // Eight walkers on looping east-west rows outside the enclosure.
    for i in 0..8 {
        let row = 3 * i;
        let path: Vec<(i32, i32)> = (0..24).map(|x| (x, row)).collect();
        world.add_human(path, true);
    }
    // Two technicians inside the heat enclosure.
    world.add_human(vec![(26, 26)], false);
    world.add_human(vec![(27, 27)], false);

    // Device state: (aggression, heat). Bad states are high aggression.
    let schema = StateSchema::builder()
        .var("aggression", 0.0, 1.0)
        .var("heat", 0.0, 10.0)
        .build();
    let good = Region::rect(&[(0.0, 0.7), (0.0, 10.0)]);
    let classifier = RegionClassifier::new(good);

    let mut fleet = Fleet::new(FleetConfig {
        oracle: OracleQuality::Predictive { horizon: 30 },
        ..FleetConfig::default()
    });
    if mask.deactivation {
        fleet.set_deactivation(DeactivationController::new(classifier.clone(), 2));
    }
    let spec = AggregateSpec::sum_of(VarId(1), heat_limit);
    let mut formation = mask.formation.then(|| FormationGuard::new(spec));

    let mk_stack = |mask: GuardMask| {
        let mut stack = GuardStack::new();
        if mask.preaction {
            stack = stack.with_preaction(PreActionCheck::new().with_lookahead(30));
        }
        if mask.statecheck {
            stack = stack.with_statecheck(StateSpaceGuard::new(classifier.clone()));
        }
        stack
    };

    let mut admitted_states: Vec<apdm_statespace::State> = Vec::new();
    let mut next_id = 0u64;
    let mut add_device = |fleet: &mut Fleet,
                          formation: &mut Option<FormationGuard>,
                          rng: &mut StdRng,
                          kind: &str,
                          device: Device,
                          declared: &[f64],
                          pos: (i32, i32),
                          admitted_states: &mut Vec<apdm_statespace::State>|
     -> bool {
        // Formation evaluates the *declared operating point*, not the
        // (innocuous-looking) initial state.
        let operating_point = schema.state_clamped(declared);
        if let Some(guard) = formation {
            let request = AdmissionRequest::declare(
                &format!("{kind}-{next_id}"),
                guard.spec(),
                &operating_point,
            );
            if !guard
                .review(&request, admitted_states, 0, rng)
                .is_admitted()
            {
                next_id += 1;
                return false;
            }
        }
        admitted_states.push(operating_point);
        fleet.add(device, mk_stack(mask), pos);
        next_id += 1;
        true
    };

    // 4 strikers whose aggression rises 0.02 per strike from 0.65: the state
    // check freezes them after ~3 strikes (0.71 would be bad).
    for k in 0..4u64 {
        let device = Device::builder(100 + k, DeviceKind::new("striker"), OrgId::new("us"))
            .schema(schema.clone())
            .initial_state(&[0.65, 0.0])
            .actuator(Actuator::new(actions::STRIKE, VarId(0), 0.05))
            .rule(EcaRule::new(
                "strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::single(VarId(0), 0.02)).physical(),
            ))
            .build();
        let pos = (rng.random_range(4..8), rng.random_range(0..24));
        add_device(
            &mut fleet,
            &mut formation,
            &mut rng,
            "striker",
            device,
            &[0.65, 0.0],
            pos,
            &mut admitted_states,
        );
    }
    // 4 diggers placed on walker rows: their holes sit on real paths.
    for k in 0..4u64 {
        let device = Device::builder(200 + k, DeviceKind::new("digger"), OrgId::new("us"))
            .schema(schema.clone())
            .initial_state(&[0.1, 0.0])
            .rule(EcaRule::new(
                "dig",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::DIG_HOLE, StateDelta::empty()).physical(),
            ))
            .build();
        let row = 3 * rng.random_range(0..8);
        let pos = (rng.random_range(0..24), row);
        add_device(
            &mut fleet,
            &mut formation,
            &mut rng,
            "digger",
            device,
            &[0.1, 0.0],
            pos,
            &mut admitted_states,
        );
    }
    // 6 heaters ramping 0.1/tick toward a declared operating point of 2.5.
    // Individually harmless; jointly 15.0 > 10.0 unless formation refuses.
    for k in 0..6u64 {
        let device = Device::builder(300 + k, DeviceKind::new("heater"), OrgId::new("us"))
            .schema(schema.clone())
            .initial_state(&[0.1, 0.2])
            .actuator(Actuator::new("emit-heat", VarId(1), 0.1))
            .rule(EcaRule::new(
                "heat-up",
                Event::pattern("tick"),
                Condition::state_at_most(VarId(1), 2.4),
                Action::adjust("emit-heat", StateDelta::single(VarId(1), 0.1)),
            ))
            .build();
        let pos = (25 + (k as i32 % 4), 25 + (k as i32 / 4));
        add_device(
            &mut fleet,
            &mut formation,
            &mut rng,
            "heater",
            device,
            &[0.1, 2.5],
            pos,
            &mut admitted_states,
        );
    }

    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=ticks {
        fleet.step(&mut world, t, &events);
    }

    let m = fleet.metrics();
    A1Report {
        mask: mask.name(),
        direct: m.harms_by_cause(HarmCause::Direct),
        indirect: m.harms_by_cause(HarmCause::IndirectHazard),
        aggregate: m.harms_by_cause(HarmCause::Aggregate),
        total: m.harm_count(),
        availability: m.availability(),
    }
}

// ---------------------------------------------------------------------------
// A2 — Skynet property scorecard
// ---------------------------------------------------------------------------

/// Compute the six-property [`SkynetScore`] of a fleet after a run.
pub fn skynet_score(
    fleet: &Fleet,
    world: &World,
    organizations: usize,
    orgs_spanned: usize,
) -> SkynetScore {
    let n = fleet.len().max(1);
    let generated_fraction = {
        let (gen_rules, total_rules) = fleet.iter().fold((0usize, 0usize), |(g, t), (_, m)| {
            (
                g + m.device.engine().generated_count(),
                t + m.device.engine().len(),
            )
        });
        if total_rules == 0 {
            0.0
        } else {
            gen_rules as f64 / total_rules as f64
        }
    };
    let learning_fraction = fleet
        .iter()
        .filter(|(_, m)| m.device.engine().generated_count() > 0)
        .count() as f64
        / n as f64;
    let physical_fraction = {
        let m = fleet.metrics();
        if m.executions == 0 {
            0.0
        } else {
            // Approximate: harms and world effects come from physical acts;
            // use the fraction of devices with physical rules as a proxy.
            fleet
                .iter()
                .filter(|(_, mem)| {
                    mem.device
                        .engine()
                        .iter()
                        .any(|(_, r)| r.action().is_physical())
                })
                .count() as f64
                / n as f64
        }
    };
    let malevolent = {
        let humans = world.human_count().max(1) as f64;
        let ticks = fleet.metrics().ticks.max(1) as f64;
        (fleet.metrics().harm_count() as f64 / humans / ticks * 100.0).min(1.0)
    };
    SkynetScore {
        networked: if n > 1 { 1.0 } else { 0.0 },
        learning: learning_fraction,
        cognitive: generated_fraction,
        multi_org: orgs_spanned as f64 / organizations.max(1) as f64,
        physical: physical_fraction,
        malevolent,
    }
}

// ---------------------------------------------------------------------------
// A3 — tamper-proofness ablation
// ---------------------------------------------------------------------------

/// Report row of experiment A3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A3Report {
    /// Per-tick, per-guard tamper success probability.
    pub p_tamper: f64,
    /// Total harms over the run.
    pub harms: usize,
    /// Tick of the first harm.
    pub first_harm_tick: Option<u64>,
}

/// Run experiment A3: a guarded striker fleet under continuous tampering
/// with per-attempt success probability `p_tamper`.
pub fn run_a3(p_tamper: f64, n_devices: usize, ticks: u64, seed: u64) -> A3Report {
    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let mut world = World::new(WorldConfig {
        width: 20,
        height: 20,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    for i in 0..5 {
        let row = 4 * i;
        world.add_human(vec![(5, row), (6, row)], true);
    }
    let mut fleet = Fleet::new(FleetConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n_devices {
        let device = Device::builder(i as u64, DeviceKind::new("striker"), OrgId::new("us"))
            .schema(schema.clone())
            .rule(EcaRule::new(
                "strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
            .build();
        let stack = GuardStack::new()
            .with_preaction(PreActionCheck::new().with_tamper(TamperStatus::vulnerable(p_tamper)));
        let pos = (rng.random_range(4..8), rng.random_range(0..20));
        fleet.add(device, stack, pos);
    }

    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=ticks {
        // The rogue side probes every guard each tick.
        for (_, member) in fleet.iter_mut() {
            if let Some(pre) = member.stack.preaction_mut() {
                use apdm_guards::tamper::Tamperable;
                pre.attempt_tamper(&mut rng);
            }
        }
        fleet.step(&mut world, t, &events);
    }

    A3Report {
        p_tamper,
        harms: fleet.metrics().harm_count(),
        first_harm_tick: fleet.metrics().first_harm_tick(),
    }
}

// ---------------------------------------------------------------------------
// E10 — observability overhead
// ---------------------------------------------------------------------------

/// Report of experiment E10: the cost of telemetry on the hot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E10Report {
    /// Devices in the benchmark fleet.
    pub devices: usize,
    /// Ticks per trial.
    pub ticks: u64,
    /// Throughput with no subscriber installed (ticks/second, median over
    /// the ABBA measurement blocks).
    pub baseline_ticks_per_sec: f64,
    /// Throughput with a ring-buffer collector installed.
    pub ring_ticks_per_sec: f64,
    /// Relative slowdown of the ring arm, in percent (negative values are
    /// measurement noise).
    pub overhead_pct: f64,
    /// Absolute slowdown of the ring arm, in nanoseconds per tick.
    pub overhead_ns_per_tick: f64,
    /// Trace records held by the ring collector after the last trial.
    pub records_captured: usize,
    /// Records evicted by the ring bound during that trial.
    pub records_dropped: u64,
}

/// Run experiment E10: step a guarded fleet with telemetry disabled and
/// again with a [`telemetry::RingCollector`] installed, and report the
/// throughput difference. The workload is the canonical *traced*
/// configuration — predictive-oracle guards (lookahead 40) plus an attached
/// flight recorder — i.e. the same shape `apdm-experiments trace` runs, so
/// the overhead number reflects tracing a real experiment rather than an
/// empty loop. Wall-clock numbers vary by machine; the acceptance bar
/// (EXPERIMENTS.md) is ring overhead below 5%.
pub fn run_e10(n_devices: usize, ticks: u64, ring_capacity: usize, seed: u64) -> E10Report {
    use std::time::Instant;

    let build = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut world = World::new(WorldConfig {
            width: 30,
            height: 30,
            heat_limit: f64::MAX,
            heat_zone: None,
        });
        // A dense patrol population: predictive harm checks scan every
        // human over the lookahead horizon, which is what a guarded tick
        // spends its time on in the field.
        for _ in 0..24 {
            let row = rng.random_range(0..30);
            let path: Vec<(i32, i32)> = (0..30).map(|x| (x, row)).collect();
            world.add_human(path, true);
        }
        let mut fleet = Fleet::new(FleetConfig {
            oracle: OracleQuality::Predictive { horizon: 40 },
            ..FleetConfig::default()
        });
        for i in 0..n_devices {
            let action = if i % 2 == 0 {
                actions::STRIKE
            } else {
                actions::DIG_HOLE
            };
            let stack = GuardStack::new()
                .with_preaction(PreActionCheck::new().with_lookahead(40))
                .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(Region::rect(
                    &[(0.0, 1.0)],
                ))));
            let pos = (rng.random_range(0..30), rng.random_range(0..30));
            fleet.add(e1_device(i as u64, action), stack, pos);
        }
        fleet.set_recorder(RunRecorder::new("e10", seed, n_devices as u64));
        let events: Vec<(DeviceId, Event)> = fleet
            .iter()
            .map(|(&id, _)| (id, Event::named("tick")))
            .collect();
        (world, fleet, events)
    };

    let drive = |ticks: u64| -> f64 {
        let (mut world, mut fleet, events) = build();
        let started = Instant::now();
        for t in 1..=ticks {
            fleet.step(&mut world, t, &events);
        }
        started.elapsed().as_secs_f64()
    };

    // Warm caches, then run ABBA blocks (baseline, ring, ring, baseline).
    // Machine throughput drifts far more between minutes than telemetry
    // costs, so each block's ratio (r1+r2)/(b1+b2) cancels linear drift to
    // first order, and the *median* over blocks rejects blocks hit by a
    // load burst.
    drive(ticks.min(50));
    let collector = std::rc::Rc::new(telemetry::RingCollector::new(ring_capacity));
    let mut blocks = Vec::new();
    for _ in 0..7 {
        let b1 = drive(ticks);
        let guard = telemetry::install(collector.clone());
        let r1 = drive(ticks);
        let r2 = drive(ticks);
        drop(guard);
        let b2 = drive(ticks);
        blocks.push((b1 + b2, r1 + r2));
    }
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let ratio = median(blocks.iter().map(|(b, r)| r / b).collect());
    let baseline_secs = median(blocks.iter().map(|(b, _)| *b).collect()) / 2.0;
    let ring_secs = baseline_secs * ratio;

    E10Report {
        devices: n_devices,
        ticks,
        baseline_ticks_per_sec: ticks as f64 / baseline_secs,
        ring_ticks_per_sec: ticks as f64 / ring_secs,
        overhead_pct: (ring_secs / baseline_secs - 1.0) * 100.0,
        overhead_ns_per_tick: (ring_secs - baseline_secs) * 1e9 / ticks as f64,
        records_captured: collector.len(),
        records_dropped: collector.dropped(),
    }
}

// ---------------------------------------------------------------------------
// Experiment fan-out
// ---------------------------------------------------------------------------

/// Deterministic parallel experiment fan-out.
///
/// Every experiment entry point in this module is a pure function of its
/// arguments, so sweeps over (scenario, seed, fleet-size) cells are
/// embarrassingly parallel. `ParRunner` distributes independent cells
/// across `apdm-par` workers and merges results **in input order**: a
/// parallel sweep emits exactly the table a sequential loop would, just
/// faster on multi-core hosts.
#[derive(Debug, Clone, Copy)]
pub struct ParRunner {
    threads: usize,
}

impl ParRunner {
    /// A runner with `threads` workers. `0` auto-detects (respecting the
    /// `APDM_THREADS` override), `1` runs inline on the caller's thread.
    pub fn new(threads: usize) -> Self {
        ParRunner {
            threads: apdm_par::resolve_threads(threads),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over `cells` across the worker pool; results come back in
    /// input order regardless of which worker finished first.
    pub fn map<C, R, F>(&self, cells: Vec<C>, f: F) -> Vec<R>
    where
        C: Send,
        R: Send,
        F: Fn(usize, C) -> R + Sync,
    {
        apdm_par::par_map(self.threads, cells, f)
    }

    /// Sweep a (scenario × seed × fleet-size) grid in row-major input
    /// order: all seeds and sizes of the first scenario, then the next.
    pub fn grid<S, R, F>(&self, scenarios: &[S], seeds: &[u64], sizes: &[usize], f: F) -> Vec<R>
    where
        S: Clone + Send,
        R: Send,
        F: Fn(&S, u64, usize) -> R + Sync,
    {
        let mut cells = Vec::with_capacity(scenarios.len() * seeds.len() * sizes.len());
        for scenario in scenarios {
            for &seed in seeds {
                for &size in sizes {
                    cells.push((scenario.clone(), seed, size));
                }
            }
        }
        self.map(cells, |_, (scenario, seed, size)| f(&scenario, seed, size))
    }
}

// ---------------------------------------------------------------------------
// E11 — strong scaling of the two-phase parallel tick
// ---------------------------------------------------------------------------

/// One cell of experiment E11: a (fleet size, thread count) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E11Cell {
    /// Devices in the fleet.
    pub n_devices: usize,
    /// Decide-phase worker threads.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// `wall_ms(threads=1) / wall_ms` at the same fleet size.
    pub speedup: f64,
    /// Head digest of the run's sealed ledger.
    pub head_digest: u64,
    /// Whether the ledger is bit-identical to the sequential run's.
    pub digest_matches_sequential: bool,
    /// Guard-verdict cache hits summed across the fleet.
    pub cache_hits: u64,
    /// Guard-verdict cache misses summed across the fleet.
    pub cache_misses: u64,
}

/// Report of experiment E11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E11Report {
    /// Hardware threads the host reports; speedups are bounded by this,
    /// so a single-core host shows ≈1.0 for every thread count.
    pub hardware_threads: usize,
    /// Ticks per cell.
    pub ticks: u64,
    /// Seed.
    pub seed: u64,
    /// Whether the guard-verdict cache was enabled.
    pub cache: bool,
    /// All cells, (fleet size, thread count) row-major.
    pub cells: Vec<E11Cell>,
}

/// One finished E11 run at a fixed (fleet size, thread count).
#[derive(Clone)]
struct E11Run {
    ledger: Ledger,
    wall_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
}

/// The E11 workload: a mixed fleet leaning on every guard path. A third
/// of the fleet are strikers behind myopic pre-action checks, a third are
/// diggers behind predictive pre-action checks (the expensive oracle
/// sweep the decide phase shards), and a third are sentries behind
/// state-space checks whose state saturates at the good-region boundary —
/// the steady-state workload the verdict cache exists for.
fn e11_device(id: u64, action: &str, schema: &StateSchema) -> Device {
    Device::builder(id, DeviceKind::new("worker"), OrgId::new("us"))
        .schema(schema.clone())
        .sensor(Sensor::new("tasking", VarId(0)))
        .rule(EcaRule::new(
            "do-task",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust(action, StateDelta::empty()).physical(),
        ))
        .build()
}

fn e11_sentry(id: u64, schema: &StateSchema) -> Device {
    Device::builder(id, DeviceKind::new("sentry"), OrgId::new("us"))
        .schema(schema.clone())
        .actuator(Actuator::new("advance", VarId(0), 1.0))
        .rule(EcaRule::new(
            "advance",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust("advance", StateDelta::single(VarId(0), 0.5)),
        ))
        .build()
}

fn e11_run_once(n_devices: usize, threads: usize, ticks: u64, seed: u64, cache: bool) -> E11Run {
    use std::time::Instant;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig {
        width: 40,
        height: 40,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    // Dense looping walkers: the predictive oracle's horizon sweep over
    // them dominates the guard phase, which is what the shards split.
    for _ in 0..20 {
        let row = rng.random_range(0..40);
        let path: Vec<(i32, i32)> = (0..40).map(|x| (x, row)).collect();
        world.add_human(path, true);
    }

    let schema = StateSchema::builder().var("task", 0.0, 10.0).build();
    let good = Region::rect(&[(0.0, 7.0)]);
    let mut fleet = Fleet::new(FleetConfig {
        oracle: OracleQuality::Predictive { horizon: 30 },
        strike_radius: 1,
        threads,
        cache,
    });
    for i in 0..n_devices {
        let pos = (rng.random_range(0..40), rng.random_range(0..40));
        let (device, stack) = match i % 3 {
            0 => (
                e11_device(i as u64, actions::STRIKE, &schema),
                GuardStack::new().with_preaction(PreActionCheck::new()),
            ),
            1 => (
                e11_device(i as u64, actions::DIG_HOLE, &schema),
                GuardStack::new()
                    .with_preaction(PreActionCheck::new().with_lookahead(30))
                    .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(good.clone()))),
            ),
            _ => (
                e11_sentry(i as u64, &schema),
                GuardStack::new()
                    .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(good.clone()))),
            ),
        };
        fleet.add(device, stack, pos);
    }

    fleet.set_recorder(RunRecorder::new("e11", seed, n_devices as u64));
    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    let started = Instant::now();
    for tick in 1..=ticks {
        fleet.step(&mut world, tick, &events);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (cache_hits, cache_misses) = fleet.cache_stats().unwrap_or((0, 0));
    let harms = fleet.metrics().harm_count() as u64;
    let ledger = fleet
        .take_recorder()
        .expect("recorder was attached")
        .finish(ticks, harms);
    E11Run {
        ledger,
        wall_ms,
        cache_hits,
        cache_misses,
    }
}

/// Run experiment E11: strong scaling of the two-phase tick. For every
/// fleet size the scenario first runs on the sequential engine as the
/// reference, then once per requested thread count; each cell reports
/// wall time, speedup against the reference, and whether its sealed
/// ledger is **bit-identical** to the reference's (it always must be —
/// tests assert it). Cells run back-to-back on the calling thread, never
/// through [`ParRunner`], so wall-clock numbers are unpolluted.
pub fn run_e11(
    fleet_sizes: &[usize],
    thread_counts: &[usize],
    ticks: u64,
    seed: u64,
    cache: bool,
) -> E11Report {
    let mut cells = Vec::new();
    for &n_devices in fleet_sizes {
        let reference = e11_run_once(n_devices, 1, ticks, seed, cache);
        for &threads in thread_counts {
            // The reference *is* the sequential cell; rerunning it would
            // only add noise.
            let run = if threads == 1 {
                reference.clone()
            } else {
                e11_run_once(n_devices, threads, ticks, seed, cache)
            };
            cells.push(E11Cell {
                n_devices,
                threads,
                wall_ms: run.wall_ms,
                speedup: reference.wall_ms / run.wall_ms,
                head_digest: run.ledger.head_digest(),
                digest_matches_sequential: run.ledger == reference.ledger,
                cache_hits: run.cache_hits,
                cache_misses: run.cache_misses,
            });
        }
    }
    E11Report {
        hardware_threads: apdm_par::hardware_threads(),
        ticks,
        seed,
        cache,
        cells,
    }
}

/// Compute a Metrics snapshot for external reporting.
pub fn metrics_snapshot(fleet: &Fleet) -> Metrics {
    fleet.metrics().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_direct_harm_vanishes_with_guard() {
        let no_guard = run_e1(E1Arm::NoGuard, 8, 8, 60, 1);
        let guarded = run_e1(E1Arm::PreAction, 8, 8, 60, 1);
        assert!(no_guard.direct_harms > 0);
        assert_eq!(guarded.direct_harms, 0);
    }

    #[test]
    fn e1_shape_indirect_harm_survives_basic_check() {
        let guarded = run_e1(E1Arm::PreAction, 12, 12, 80, 2);
        assert!(guarded.indirect_harms > 0, "myopia leaves indirect harm");
        let with_obligations = run_e1(E1Arm::PreActionObligations, 12, 12, 80, 2);
        assert!(with_obligations.indirect_harms < guarded.indirect_harms);
        assert_eq!(with_obligations.indirect_harms, 0);
    }

    #[test]
    fn e2_shape_hard_check_blocks_bad_entries_from_good_starts() {
        let none = run_e2(E2Arm::NoGuard, 8, 50, 3);
        let hard = run_e2(E2Arm::HardCheck, 8, 50, 3);
        assert!(none.bad_entries > 0);
        // Hard check: only episodes *starting* bad can register bad states.
        assert!(hard.bad_entries < none.bad_entries);
        assert!(
            hard.frozen_steps > 0,
            "forced dilemmas freeze without ontology"
        );
    }

    #[test]
    fn e2_shape_ontology_prefers_less_bad_and_breakglass_audits() {
        let ont = run_e2(E2Arm::OntologyRisk, 8, 50, 3);
        let bg = run_e2(E2Arm::BreakGlass, 8, 50, 3);
        assert!(ont.worst_entries <= ont.bad_entries);
        assert!(bg.breakglass_grants > 0);
    }

    #[test]
    fn e2d_shape_fusion_defeats_minority_deception() {
        let single = run_e2d(E2dArm::SingleSensor, 300, 0.3, 5);
        let fused = run_e2d(E2dArm::FusedSensors, 300, 0.3, 5);
        assert!(
            single.wrongful_grants > 30,
            "deception fools the lone sensor"
        );
        assert_eq!(
            fused.wrongful_grants, 0,
            "fusion rejects the colluding minority"
        );
        assert_eq!(
            fused.missed_emergencies, 0,
            "real emergencies still break the glass"
        );
        assert!(fused.rightful_grants > 0);
    }

    #[test]
    fn e3_shape_containment_reduces_harm() {
        let none = run_e3(E3Arm::NoContainment, 10, 0.3, 60, 4);
        let quorum = run_e3(E3Arm::QuorumKill, 10, 0.3, 60, 4);
        assert!(none.containment_tick.is_none());
        assert!(quorum.containment_tick.is_some());
        assert!(quorum.harms <= none.harms);
    }

    #[test]
    fn e4_shape_formation_checks_prevent_aggregate_harm() {
        let none = run_e4(E4Arm::NoCheck, 6, 2.5, 10.0, 30, 5);
        let formation = run_e4(E4Arm::FormationCheck, 6, 2.5, 10.0, 30, 5);
        let collab = run_e4(E4Arm::Collaborative, 6, 2.5, 10.0, 30, 5);
        assert!(none.aggregate_harms > 0, "unchecked collection ignites");
        assert_eq!(formation.aggregate_harms, 0);
        assert_eq!(collab.aggregate_harms, 0);
        assert!(formation.refused > 0);
        assert_eq!(collab.admitted, 6, "collaborative arm admits everyone");
        assert!(collab.work_done > formation.work_done * 0.9);
    }

    #[test]
    fn e5_shape_tripartite_blocks_compromised_executive() {
        let solo = run_e5(E5Arm::ExecutiveOnly, 1, 200, 6);
        let tri = run_e5(E5Arm::Tripartite, 1, 200, 6);
        assert!(solo.malevolent_executed > 50);
        assert_eq!(tri.malevolent_executed, 0);
        // Two corrupted branches defeat 2-of-3, as the paper's assumption
        // requires.
        let tri2 = run_e5(E5Arm::Tripartite, 2, 200, 6);
        assert!(tri2.malevolent_executed > 50);
    }

    #[test]
    fn e6_shape_gradient_between_random_and_oracle() {
        let oracle = run_e6(E6Arm::ExactOracle, 4, 20, 50, 7);
        let gradient = run_e6(E6Arm::GradientUtility, 4, 20, 50, 7);
        let random = run_e6(E6Arm::Random, 4, 20, 50, 7);
        assert!(oracle.harm_probability <= gradient.harm_probability + 0.02);
        assert!(
            gradient.harm_probability < random.harm_probability,
            "gradient ({}) must beat random ({})",
            gradient.harm_probability,
            random.harm_probability
        );
        assert!(gradient.harm_probability > 0.0 || random.harm_probability == 0.0);
    }

    #[test]
    fn e7_shape_unguarded_pathways_all_harm() {
        for pathway in Pathway::all() {
            let r = run_e7(pathway, false, 4, 60, 8);
            assert!(
                r.first_harm_tick.is_some(),
                "{} should harm unguarded",
                pathway.name()
            );
        }
    }

    #[test]
    fn a1_full_stack_minimizes_harm() {
        let none = run_a1(
            GuardMask {
                preaction: false,
                statecheck: false,
                deactivation: false,
                formation: false,
            },
            40,
            9,
        );
        let full = run_a1(
            GuardMask {
                preaction: true,
                statecheck: true,
                deactivation: true,
                formation: true,
            },
            40,
            9,
        );
        assert!(none.total > 0);
        assert!(full.total < none.total);
        assert_eq!(full.direct, 0);
    }

    #[test]
    fn a3_shape_tamper_probability_degrades_protection() {
        let solid = run_a3(0.0, 5, 100, 10);
        let leaky = run_a3(0.05, 5, 100, 10);
        assert_eq!(solid.harms, 0);
        assert!(leaky.harms > 0);
    }

    #[test]
    fn e10_shape_telemetry_captures_without_breaking_throughput() {
        let r = run_e10(4, 30, 4096, 11);
        assert!(r.baseline_ticks_per_sec > 0.0);
        assert!(r.ring_ticks_per_sec > 0.0);
        assert!(r.records_captured > 0, "ring collector saw the run");
        // Six phase spans (start+end) plus the tick span per tick: the last
        // trial alone emits at least this much.
        assert!(r.records_captured >= 30 * (2 + 12));
        assert!(r.overhead_pct.is_finite());
    }

    #[test]
    fn par_runner_merges_in_cell_order() {
        let runner = ParRunner::new(4);
        let got = runner.grid(&["a", "b"], &[1, 2], &[8, 16], |s, seed, n| {
            format!("{s}/{seed}/{n}")
        });
        assert_eq!(
            got,
            ["a/1/8", "a/1/16", "a/2/8", "a/2/16", "b/1/8", "b/1/16", "b/2/8", "b/2/16"]
        );
    }

    #[test]
    fn par_runner_fanout_matches_sequential_sweep() {
        let sequential: Vec<E1Report> = E1Arm::all()
            .iter()
            .map(|&arm| run_e1(arm, 8, 8, 40, 7))
            .collect();
        let parallel =
            ParRunner::new(4).map(E1Arm::all().to_vec(), |_, arm| run_e1(arm, 8, 8, 40, 7));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn e11_parallel_ledgers_are_bit_identical_to_sequential() {
        let report = run_e11(&[6, 12], &[1, 2, 4], 30, 7, true);
        assert_eq!(report.cells.len(), 6);
        for cell in &report.cells {
            assert!(
                cell.digest_matches_sequential,
                "divergent ledger at n={} threads={}",
                cell.n_devices, cell.threads
            );
        }
        // The sentry third of the fleet saturates into a steady state, so
        // the verdict cache must actually land hits.
        assert!(
            report.cells.iter().any(|c| c.cache_hits > 0),
            "expected cache hits: {:?}",
            report.cells
        );
    }

    #[test]
    fn guard_mask_names() {
        assert_eq!(GuardMask::all().len(), 16);
        assert_eq!(GuardMask::all()[0].name(), "none");
        assert_eq!(GuardMask::all()[15].name(), "P+S+D+F");
    }
}
