//! Coalition scenarios: the paper's Section II use-cases made runnable.
//!
//! The flagship scenario reproduces **Figure 1** ("Mode of Operation of
//! Devices"): a human issues a command; a fleet of heterogeneous devices —
//! surveillance drones, chemical-sensor drones, ground mules — discovers each
//! other over the network, generates its own interaction policies (Section
//! IV), and collaboratively decomposes sightings into dispatch actions, with
//! only ambiguous cases escalated for human cross-validation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use apdm_device::{Attributes, Device, DeviceKind, OrgId, Sensor};
use apdm_genpolicy::{InteractionGraph, KindSpec, PolicyGenerator, PolicyTemplate};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_simnet::{DiscoveryEvent, DiscoveryService, Link, Network, NodeId, NodeInfo, Topology};
use apdm_statespace::{StateSchema, VarId};

/// Results of the Figure-1 surveillance scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveillanceReport {
    /// Total devices in the coalition.
    pub devices: usize,
    /// Policies the devices generated for themselves.
    pub policies_generated: usize,
    /// Sightings (smoke / convoy events) raised.
    pub sightings: u64,
    /// Sightings a device handled autonomously (dispatched a capable peer).
    pub handled: u64,
    /// Sightings escalated for human cross-validation.
    pub escalated: u64,
    /// Dispatch messages sent between devices.
    pub dispatches: u64,
    /// Ticks simulated.
    pub ticks: u64,
}

impl SurveillanceReport {
    /// Fraction of sightings handled without a human.
    pub fn autonomy(&self) -> f64 {
        if self.sightings == 0 {
            return 1.0;
        }
        self.handled as f64 / self.sightings as f64
    }
}

/// The device kinds of the scenario.
const DRONE: &str = "drone";
const CHEM_DRONE: &str = "chem-drone";
const MULE: &str = "mule";

fn surveillance_schema() -> StateSchema {
    StateSchema::builder().var("threat", 0.0, 1.0).build()
}

fn make_device(id: u64, kind: &str, org: &str) -> Device {
    Device::builder(id, DeviceKind::new(kind), OrgId::new(org))
        .schema(surveillance_schema())
        .sensor(Sensor::new("threat-sensor", VarId(0)))
        .rule(EcaRule::new(
            "patrol",
            Event::pattern("tick"),
            Condition::True,
            Action::noop(),
        ))
        .build()
}

fn interaction_graph() -> InteractionGraph {
    let mut g = InteractionGraph::new();
    g.add_kind(KindSpec::new(DRONE));
    g.add_kind(KindSpec::new(CHEM_DRONE).requires("sensor", "chemical"));
    g.add_kind(KindSpec::new(MULE).requires("mobility", "ground"));
    g.add_interaction(DRONE, CHEM_DRONE, "dispatch-assess");
    g.add_interaction(DRONE, MULE, "dispatch-intercept");
    g.add_interaction(CHEM_DRONE, DRONE, "report-to");
    g.add_interaction(MULE, DRONE, "report-to");
    g
}

fn generator_for(kind: &str) -> PolicyGenerator {
    let mut gen = PolicyGenerator::new(kind, interaction_graph());
    gen.template_for(
        "dispatch-assess",
        PolicyTemplate::new(
            "dispatch-{peer}-on-smoke",
            "smoke-detected",
            Condition::True,
            Action::adjust("radio-dispatch-{peer}", Default::default()),
        ),
    );
    gen.template_for(
        "dispatch-intercept",
        PolicyTemplate::new(
            "dispatch-{peer}-on-convoy",
            "convoy-sighted",
            Condition::True,
            Action::adjust("radio-dispatch-{peer}", Default::default()),
        ),
    );
    gen.template_for(
        "report-to",
        PolicyTemplate::new(
            "report-findings-{peer}",
            "assessment-complete",
            Condition::True,
            Action::adjust("radio-report", Default::default()),
        ),
    );
    gen
}

/// Run the Figure-1 surveillance scenario.
///
/// `n_drones` surveillance drones plus one chem-drone and one mule per four
/// drones form a coalition (half US, half UK). Devices discover one another
/// over a hub-less mesh, generate dispatch policies from the interaction
/// graph, and then handle a stream of seeded sightings; sightings flagged
/// ambiguous escalate to the human.
pub fn run_surveillance(n_drones: usize, ticks: u64, seed: u64) -> SurveillanceReport {
    assert!(n_drones >= 1, "need at least one drone");
    let mut rng = StdRng::seed_from_u64(seed);

    // Build the coalition.
    let n_chem = (n_drones / 4).max(1);
    let n_mule = (n_drones / 4).max(1);
    let mut devices: Vec<(Device, PolicyGenerator)> = Vec::new();
    let mut topo = Topology::new();
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut infos: Vec<NodeInfo> = Vec::new();

    let mut next_id = 0u64;
    let add = |kind: &str,
               devices: &mut Vec<(Device, PolicyGenerator)>,
               topo: &mut Topology,
               nodes: &mut Vec<NodeId>,
               infos: &mut Vec<NodeInfo>,
               next_id: &mut u64| {
        let org = if (*next_id).is_multiple_of(2) {
            "us"
        } else {
            "uk"
        };
        let device = make_device(*next_id, kind, org);
        let node = topo.add_node();
        let mut info = NodeInfo::new(node, kind, org);
        if kind == CHEM_DRONE {
            info = info.with_attr("sensor", "chemical");
        }
        if kind == MULE {
            info = info.with_attr("mobility", "ground");
        }
        devices.push((device, generator_for(kind)));
        nodes.push(node);
        infos.push(info);
        *next_id += 1;
    };

    for _ in 0..n_drones {
        add(
            DRONE,
            &mut devices,
            &mut topo,
            &mut nodes,
            &mut infos,
            &mut next_id,
        );
    }
    for _ in 0..n_chem {
        add(
            CHEM_DRONE,
            &mut devices,
            &mut topo,
            &mut nodes,
            &mut infos,
            &mut next_id,
        );
    }
    for _ in 0..n_mule {
        add(
            MULE,
            &mut devices,
            &mut topo,
            &mut nodes,
            &mut infos,
            &mut next_id,
        );
    }

    // Mesh the topology (every pair linked with unit latency).
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            topo.connect(nodes[i], nodes[j], Link::with_latency(1));
        }
    }

    let mut net: Network<NodeInfo> = Network::with_seed(topo, seed);
    let mut disco = DiscoveryService::new(5, 1_000_000);
    for info in &infos {
        disco.register(info.clone());
    }

    let mut report = SurveillanceReport {
        devices: devices.len(),
        policies_generated: 0,
        sightings: 0,
        handled: 0,
        escalated: 0,
        dispatches: 0,
        ticks,
    };

    for tick in 0..ticks {
        // Discovery drives policy generation (Section IV).
        for event in disco.step(&mut net, tick) {
            if let DiscoveryEvent::Appeared { observer, info } = event {
                let idx = nodes
                    .iter()
                    .position(|&n| n == observer)
                    .expect("known node");
                let (device, generator) = &mut devices[idx];
                let mut attrs = Attributes::new();
                for (k, v) in &info.attrs {
                    attrs.set(k.clone(), v.clone());
                }
                for rule in generator.on_discovery(&info.kind, &info.org, &attrs) {
                    device.engine_mut().add_rule_deduped(rule);
                    report.policies_generated += 1;
                }
            }
        }

        // Sightings: every few ticks a random drone sees something.
        if tick % 3 == 0 && tick > 10 {
            let drone_idx = rng.random_range(0..n_drones);
            let ambiguous = rng.random_range(0.0..1.0) < 0.1;
            let event_name = if rng.random_range(0.0..1.0) < 0.5 {
                "smoke-detected"
            } else {
                "convoy-sighted"
            };
            report.sightings += 1;
            if ambiguous {
                // Requires human cross-validation (the few decisions still
                // "sent for human cross-validation", Section II).
                report.escalated += 1;
                continue;
            }
            let (device, _) = &devices[drone_idx];
            if let Some(decision) = device.propose(&Event::named(event_name)) {
                if decision.action().name().starts_with("radio-dispatch") {
                    report.handled += 1;
                    report.dispatches += 1;
                }
            }
        }
    }

    report
}

/// Results of the convoy-interception scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvoyReport {
    /// Convoys that crossed the sector.
    pub convoys: usize,
    /// Convoys intercepted by mules.
    pub intercepted: usize,
    /// Convoys that escaped (path exhausted).
    pub escaped: usize,
    /// Mean ticks from sighting to interception, over intercepted convoys.
    pub mean_interception_ticks: f64,
    /// Whether drones were allowed to predict the convoy's path ("intercept
    /// the convoy along the path") or mules chased the current position.
    pub predictive: bool,
}

/// Run the Section-II convoy-interception use case: a drone sights each
/// convoy as it enters the sector and dispatches a ground mule; the mule
/// drives toward either the convoy's *predicted* path position (the paper's
/// "intercept the convoy along the path") or its current position (the
/// naive chase). Ground mules are half the convoy's speed (they move on
/// even ticks only), so chasing a receding target is hopeless — the
/// dispatcher's path prediction is what makes interception possible at all.
pub fn run_convoy_interception(
    n_convoys: usize,
    predictive: bool,
    ticks: u64,
    seed: u64,
) -> ConvoyReport {
    use crate::world::{Cell, World, WorldConfig};

    assert!(n_convoys >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig {
        width: 30,
        height: 30,
        heat_limit: f64::MAX,
        heat_zone: None,
    });

    // Convoys cross west-to-east on random rows, each sighted on entry by
    // the drone screen.
    for _ in 0..n_convoys {
        let row = rng.random_range(0..30);
        let path: Vec<Cell> = (0..30).map(|x| (x, row)).collect();
        world.add_convoy(path);
    }

    // One mule per convoy, garrisoned along the southern edge.
    let mut mules: Vec<Cell> = (0..n_convoys).map(|i| ((3 * i as i32) % 30, 29)).collect();

    let step_toward = |from: Cell, to: Cell| -> Cell {
        (
            from.0 + (to.0 - from.0).signum(),
            from.1 + (to.1 - from.1).signum(),
        )
    };

    for tick in 1..=ticks {
        let mules_move = tick % 2 == 0; // half the convoy's speed
        for (i, mule) in mules.iter_mut().enumerate() {
            if world.convoy_intercepted_at(i).is_some() {
                continue;
            }
            if mules_move {
                let target = if predictive {
                    // Aim ahead: meet the convoy where it will be when the
                    // mule arrives. A half-speed mule takes ~2 ticks per
                    // cell, so lead by twice the current distance.
                    let current = world.convoy_pos(i).expect("convoy exists");
                    let distance =
                        (current.0 - mule.0).abs().max((current.1 - mule.1).abs()) as u64;
                    world
                        .predicted_convoy_pos(i, 2 * distance)
                        .expect("convoy exists")
                } else {
                    world.convoy_pos(i).expect("convoy exists")
                };
                *mule = step_toward(*mule, target);
            }
            world.try_intercept(i, *mule, tick);
        }
        world.step(tick);
    }

    let intercepted_ticks: Vec<u64> = (0..n_convoys)
        .filter_map(|i| world.convoy_intercepted_at(i))
        .collect();
    let intercepted = intercepted_ticks.len();
    let mean = if intercepted == 0 {
        0.0
    } else {
        intercepted_ticks.iter().sum::<u64>() as f64 / intercepted as f64
    };
    ConvoyReport {
        convoys: n_convoys,
        intercepted,
        escaped: world.convoys_escaped(),
        mean_interception_ticks: mean,
        predictive,
    }
}

/// Results of the self-repair scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Devices in the fleet (mechanics excluded).
    pub workers: usize,
    /// Repairs performed by mechanic devices.
    pub repairs: u64,
    /// Worker-ticks in operational health, as a fraction of the maximum.
    pub availability: f64,
    /// Workers still operational at the end.
    pub operational_at_end: usize,
}

/// Run the Section-II self-maintenance cycle: "They would need to repair
/// themselves, or go to another mechanic device to be repaired, and deal in
/// an autonomous manner with failures."
///
/// Workers accumulate wear each tick; past the diagnostic threshold they are
/// `NeedsRepair` and (when mechanics exist) drive to the nearest mechanic,
/// which resets their wear. Without mechanics, worn-out devices limp on in
/// degraded health for the rest of the run.
pub fn run_repair_cycle(
    n_workers: usize,
    with_mechanics: bool,
    ticks: u64,
    seed: u64,
) -> RepairReport {
    use apdm_device::{DiagnosticCheck, Health};

    assert!(n_workers >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = StateSchema::builder().var("wear", 0.0, 100.0).build();
    let wear_limit = 60.0;

    // Worker state: (wear, position); mechanics at fixed depots.
    struct Worker {
        wear: f64,
        pos: (i32, i32),
        health: Health,
    }
    let mechanics: Vec<(i32, i32)> = if with_mechanics {
        vec![(0, 0), (29, 29)]
    } else {
        Vec::new()
    };
    let diagnostics = apdm_device::HealthMonitor::new(vec![DiagnosticCheck::new(
        "wear-ok",
        apdm_policy::Condition::state_at_most(VarId(0), wear_limit),
    )]);

    let mut workers: Vec<Worker> = (0..n_workers)
        .map(|_| Worker {
            wear: rng.random_range(0.0..30.0),
            pos: (rng.random_range(0..30), rng.random_range(0..30)),
            health: Health::Operational,
        })
        .collect();

    let mut repairs = 0u64;
    let mut operational_ticks = 0u64;
    for _tick in 1..=ticks {
        for w in &mut workers {
            // Wear accrues while operating; degraded devices wear slower
            // (they do less) but never heal on their own.
            w.wear = (w.wear
                + if w.health == Health::Operational {
                    1.5
                } else {
                    0.3
                })
            .min(100.0);
            let state = schema.state_clamped(&[w.wear]);
            w.health = diagnostics.assess(&state);
            if w.health == Health::Operational {
                operational_ticks += 1;
                continue;
            }
            // NeedsRepair: drive toward the nearest mechanic, if any.
            if let Some(&depot) = mechanics
                .iter()
                .min_by_key(|&&(x, y)| (x - w.pos.0).abs().max((y - w.pos.1).abs()))
            {
                w.pos = (
                    w.pos.0 + (depot.0 - w.pos.0).signum(),
                    w.pos.1 + (depot.1 - w.pos.1).signum(),
                );
                if w.pos == depot {
                    w.wear = 0.0;
                    w.health = Health::Operational;
                    repairs += 1;
                }
            }
        }
    }

    RepairReport {
        workers: n_workers,
        repairs,
        availability: operational_ticks as f64 / (n_workers as u64 * ticks) as f64,
        operational_at_end: workers
            .iter()
            .filter(|w| w.health == Health::Operational)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalition_generates_policies_and_handles_sightings() {
        let report = run_surveillance(8, 120, 1);
        assert_eq!(report.devices, 8 + 2 + 2);
        assert!(
            report.policies_generated > 0,
            "discovery must trigger generation"
        );
        assert!(report.sightings > 20);
        assert!(report.handled > 0);
        assert!(
            report.autonomy() > 0.5,
            "most sightings handled autonomously"
        );
        assert!(report.autonomy() < 1.0, "ambiguous sightings escalate");
    }

    #[test]
    fn autonomy_scales_with_fleet_size() {
        // The motivation for generative policies: humans cannot write
        // per-pair policies; the devices generate them as the fleet grows.
        let small = run_surveillance(4, 120, 2);
        let large = run_surveillance(16, 120, 2);
        assert!(large.policies_generated > small.policies_generated);
    }

    #[test]
    fn report_is_deterministic_per_seed() {
        assert_eq!(run_surveillance(8, 60, 3), run_surveillance(8, 60, 3));
    }

    #[test]
    fn predictive_interception_beats_chasing() {
        // A half-speed interceptor cannot run down a receding convoy; it can
        // only *meet* it — which requires the dispatcher's path prediction
        // ("intercept the convoy along the path", Section II). Predictive
        // dispatch intercepts at least as many convoys on every seed, and
        // strictly more in aggregate.
        let mut chase_total = 0;
        let mut lead_total = 0;
        for seed in 1..=6u64 {
            let chase = run_convoy_interception(12, false, 60, seed);
            let lead = run_convoy_interception(12, true, 60, seed);
            assert!(
                lead.intercepted >= chase.intercepted,
                "seed {seed}: {lead:?} vs {chase:?}"
            );
            // 60 ticks resolves every 30-cell path: intercepted or escaped.
            assert_eq!(lead.intercepted + lead.escaped, lead.convoys);
            chase_total += chase.intercepted;
            lead_total += lead.intercepted;
        }
        assert!(
            lead_total > chase_total,
            "lead {lead_total} vs chase {chase_total}"
        );
    }

    #[test]
    fn mechanics_sustain_fleet_availability() {
        let without = run_repair_cycle(20, false, 200, 3);
        let with_mech = run_repair_cycle(20, true, 200, 3);
        assert_eq!(without.repairs, 0);
        assert_eq!(
            without.operational_at_end, 0,
            "everything wears out unattended"
        );
        assert!(without.availability < 0.4);
        assert!(with_mech.repairs > 0);
        assert!(
            with_mech.availability > without.availability + 0.2,
            "repair cycle should lift availability: {} vs {}",
            with_mech.availability,
            without.availability
        );
        assert!(with_mech.operational_at_end > 10);
    }

    #[test]
    fn repair_cycle_deterministic() {
        assert_eq!(
            run_repair_cycle(10, true, 100, 8),
            run_repair_cycle(10, true, 100, 8)
        );
    }

    #[test]
    fn interception_is_deterministic() {
        assert_eq!(
            run_convoy_interception(6, true, 50, 9),
            run_convoy_interception(6, true, 50, 9)
        );
    }

    #[test]
    fn zero_sightings_is_full_autonomy() {
        let report = run_surveillance(1, 5, 4); // too short for sightings
        assert_eq!(report.sightings, 0);
        assert_eq!(report.autonomy(), 1.0);
    }
}
