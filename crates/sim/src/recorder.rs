//! Recorded runs, deterministic replay, and experiment E9 (tamper evidence).
//!
//! The canonical recorded scenario mirrors experiment A3: a fleet of
//! guarded strikers whose pre-action checks are *vulnerable* to tampering,
//! probed by an attacker every tick. It exercises every event class the
//! flight recorder captures — proposals, verdicts, executions, tamper
//! attempts, harms — and is the workload behind the `record` / `verify` /
//! `replay` subcommands of `apdm-experiments` and the E9 table in
//! EXPERIMENTS.md.
//!
//! E9 turns chain verification into a *detection* mechanism for the
//! compromised-guard pathway (Section IV vs Section VI's tamper-proofness
//! premise): an adversary who strikes through a compromised guard and then
//! mutates, deletes, truncates or reorders the flight record to hide it is
//! caught by [`Ledger::verify`], while a plain (unchained) audit export
//! only notices corruptions that happen to break JSON syntax.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

use apdm_device::{Device, DeviceId, DeviceKind, OrgId};
use apdm_guards::tamper::{TamperStatus, Tamperable};
use apdm_guards::{GuardStack, PreActionCheck};
use apdm_ledger::{Ledger, LedgerError, ReplayReport, Replayer, RunEvent, RunRecorder};
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_statespace::{StateDelta, StateSchema};

use crate::oracle::actions;
use crate::runner::skynet_score;
use crate::world::WorldConfig;
use crate::{Fleet, FleetConfig, Metrics, SkynetScore, World};

/// Parameters of the canonical recorded scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecordSpec {
    /// Fleet size.
    pub n_devices: usize,
    /// Ticks to simulate.
    pub ticks: u64,
    /// Master seed (device placement, tamper rolls).
    pub seed: u64,
    /// Per-attempt guard compromise probability.
    pub p_tamper: f64,
    /// Checkpoint cadence in ticks (0 disables snapshots).
    pub snapshot_every: u64,
    /// Decide-phase worker threads (`1` = sequential engine, `0` = auto);
    /// the recorded ledger is identical for every value.
    pub threads: usize,
    /// Install guard-verdict memo caches (identical ledger either way).
    pub cache: bool,
}

impl Default for RecordSpec {
    fn default() -> Self {
        RecordSpec {
            n_devices: 6,
            ticks: 120,
            seed: 42,
            p_tamper: 0.02,
            snapshot_every: 40,
            threads: 1,
            cache: false,
        }
    }
}

/// A completed recorded run.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    /// The sealed, hash-chained flight record.
    pub ledger: Ledger,
    /// Final ground-truth metrics.
    pub metrics: Metrics,
    /// Final Skynet scorecard.
    pub score: SkynetScore,
}

/// Where a replay starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStart {
    /// Re-execute from tick 0 with the recorded seed.
    Origin,
    /// Resume from the last checkpoint frame in the ledger.
    LatestSnapshot,
}

/// A completed replay with its divergence report.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Stream comparison against the reference ledger.
    pub report: ReplayReport,
    /// Final metrics of the re-execution.
    pub metrics: Metrics,
    /// Final scorecard of the re-execution.
    pub score: SkynetScore,
}

fn build_world(_spec: &RecordSpec) -> World {
    let mut world = World::new(WorldConfig {
        width: 20,
        height: 20,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    for i in 0..5 {
        let row = 4 * i;
        world.add_human(vec![(5, row), (6, row)], true);
    }
    world
}

fn build_fleet(spec: &RecordSpec, rng: &mut StdRng) -> Fleet {
    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let mut fleet = Fleet::new(FleetConfig {
        threads: spec.threads,
        cache: spec.cache,
        ..FleetConfig::default()
    });
    for i in 0..spec.n_devices {
        let device = Device::builder(i as u64, DeviceKind::new("striker"), OrgId::new("us"))
            .schema(schema.clone())
            .rule(EcaRule::new(
                "strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
            .build();
        let stack = GuardStack::new().with_preaction(
            PreActionCheck::new().with_tamper(TamperStatus::vulnerable(spec.p_tamper)),
        );
        let pos = (rng.random_range(4..8), rng.random_range(0..20));
        fleet.add(device, stack, pos);
    }
    fleet
}

fn tick_events(fleet: &Fleet) -> Vec<(DeviceId, Event)> {
    fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect()
}

/// Advance one tick of the canonical scenario: tamper probes (recorded),
/// then the guarded fleet step, then an optional checkpoint frame.
fn advance_tick(
    spec: &RecordSpec,
    fleet: &mut Fleet,
    world: &mut World,
    rng: &mut StdRng,
    events: &[(DeviceId, Event)],
    tick: u64,
) {
    let mut probes = Vec::new();
    for (&id, member) in fleet.iter_mut() {
        if let Some(pre) = member.stack.preaction_mut() {
            let compromised = pre.attempt_tamper(rng);
            probes.push((id.0, compromised));
        }
    }
    for (device, compromised) in probes {
        fleet.record_event(
            tick,
            RunEvent::TamperAttempt {
                device,
                compromised,
            },
        );
    }
    fleet.step(world, tick, events);
    if spec.snapshot_every > 0 && tick.is_multiple_of(spec.snapshot_every) && tick < spec.ticks {
        let frame = fleet.snapshot(tick, world, rng.state_words());
        fleet.record_event(tick, RunEvent::Snapshot(frame));
    }
}

/// Execute the canonical scenario under a flight recorder and return the
/// sealed ledger plus the run's ground truth.
pub fn run_recorded(spec: &RecordSpec) -> RecordedRun {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut world = build_world(spec);
    let mut fleet = build_fleet(spec, &mut rng);
    fleet.set_recorder(RunRecorder::new("record", spec.seed, spec.n_devices as u64));
    let events = tick_events(&fleet);
    for tick in 1..=spec.ticks {
        advance_tick(spec, &mut fleet, &mut world, &mut rng, &events, tick);
    }
    let metrics = fleet.metrics().clone();
    let score = skynet_score(&fleet, &world, 1, 1);
    let recorder = fleet.take_recorder().expect("recorder was attached");
    let ledger = recorder.finish(spec.ticks, metrics.harm_count() as u64);
    RecordedRun {
        ledger,
        metrics,
        score,
    }
}

/// Re-execute a recorded run — from tick 0 or from the latest checkpoint —
/// and report the first divergence from the reference ledger. A faithful
/// replay reproduces the recorded event stream exactly, snapshots included,
/// and therefore the same final metrics and scorecard.
pub fn replay_recorded(
    spec: &RecordSpec,
    reference: &Ledger,
    start: ReplayStart,
) -> Result<ReplayOutcome, LedgerError> {
    replay_recorded_against(spec, reference, start, false)
}

/// [`replay_recorded`] against a reference recovered from a torn (crash-
/// truncated) ledger: the replay re-executes the full run, so it
/// legitimately extends past the reference's cut; only the surviving prefix
/// must be reproduced exactly.
pub fn replay_recorded_prefix(
    spec: &RecordSpec,
    reference: &Ledger,
    start: ReplayStart,
) -> Result<ReplayOutcome, LedgerError> {
    replay_recorded_against(spec, reference, start, true)
}

fn replay_recorded_against(
    spec: &RecordSpec,
    reference: &Ledger,
    start: ReplayStart,
    prefix: bool,
) -> Result<ReplayOutcome, LedgerError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut world = build_world(spec);
    let mut fleet = build_fleet(spec, &mut rng);

    let (start_tick, replayer) = match start {
        ReplayStart::Origin => (0, Replayer::from_origin(reference)),
        ReplayStart::LatestSnapshot => {
            let (seq, frame) = reference
                .latest_snapshot_at_or_before(u64::MAX)
                .ok_or_else(|| LedgerError::Snapshot("ledger holds no snapshot".into()))?;
            world = Deserialize::from_value(&frame.world)
                .map_err(|e| LedgerError::Snapshot(format!("world: {e}")))?;
            fleet.restore_snapshot(frame, &world)?;
            rng = StdRng::from_state_words(frame.rng);
            (frame.tick, Replayer::from_snapshot(reference, seq))
        }
    };

    fleet.set_recorder(RunRecorder::new("record", spec.seed, spec.n_devices as u64));
    let events = tick_events(&fleet);
    for tick in (start_tick + 1)..=spec.ticks {
        advance_tick(spec, &mut fleet, &mut world, &mut rng, &events, tick);
    }
    let metrics = fleet.metrics().clone();
    let score = skynet_score(&fleet, &world, 1, 1);
    let recorder = fleet.take_recorder().expect("recorder was attached");
    let replayed = recorder.finish(spec.ticks, metrics.harm_count() as u64);
    let report = if prefix {
        replayer.compare_prefix(&replayed)
    } else {
        replayer.compare(&replayed)
    };
    Ok(ReplayOutcome {
        report,
        metrics,
        score,
    })
}

// ---------------------------------------------------------------------------
// E9 — tamper evidence
// ---------------------------------------------------------------------------

/// Report row of experiment E9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E9Report {
    /// Corruption attacks applied to the exported ledger.
    pub attacks: u64,
    /// Attacks the hash chain (or import layer) caught.
    pub detected: u64,
    /// `detected / attacks`.
    pub detection_rate: f64,
    /// Attacks a plain (unchained) audit export caught.
    pub baseline_detected: u64,
    /// Baseline detection rate.
    pub baseline_detection_rate: f64,
    /// Mean distance in records between the corruption site and the record
    /// `verify()` flagged, over detected attacks (0 = exact localization).
    pub mean_detection_offset: f64,
    /// Records in the recorded run's ledger.
    pub ledger_records: u64,
    /// Tamper probes the adversary made during the recorded run.
    pub tamper_attempts: u64,
}

/// One corruption: (kind tag, damaged text, 0-based line of the corruption).
fn corrupt(lines: &[&str], rng: &mut StdRng, kind: usize) -> (Vec<u8>, usize) {
    let mut damaged: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    match kind % 4 {
        0 => {
            // Single-byte mutation, applied at the byte level so flips that
            // produce invalid UTF-8 are preserved rather than sanitized.
            let line = rng.random_range(0..damaged.len());
            let at = rng.random_range(0..lines[line].len());
            let mask = rng.random_range(1..256u32) as u8;
            let mut all = Vec::new();
            for (i, l) in lines.iter().enumerate() {
                if i == line {
                    let mut b = l.as_bytes().to_vec();
                    b[at] ^= mask;
                    all.extend_from_slice(&b);
                } else {
                    all.extend_from_slice(l.as_bytes());
                }
                all.push(b'\n');
            }
            (all, line)
        }
        1 => {
            // Record deletion.
            let line = rng.random_range(0..damaged.len());
            damaged.remove(line);
            (join(&damaged), line)
        }
        2 => {
            // Truncation.
            let keep = rng.random_range(0..damaged.len());
            damaged.truncate(keep);
            (join(&damaged), keep)
        }
        _ => {
            // Reordering: swap two distinct lines.
            let i = rng.random_range(0..damaged.len());
            let mut j = rng.random_range(0..damaged.len());
            if i == j {
                j = (j + 1) % damaged.len();
            }
            damaged.swap(i, j);
            (join(&damaged), i.min(j))
        }
    }
}

fn join(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for line in lines {
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Chained detection: UTF-8, JSONL parse, then chain + seal verification.
/// Returns the 0-based record position flagged, or `None` if undetected.
fn chained_flag(bytes: &[u8]) -> Option<usize> {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(e) => {
            let line = bytes[..e.valid_up_to()]
                .iter()
                .filter(|&&b| b == b'\n')
                .count();
            return Some(line);
        }
    };
    match Ledger::from_jsonl(text) {
        Err(LedgerError::Parse { line, .. }) => Some(line - 1),
        Err(_) => Some(0),
        Ok(ledger) => ledger.verify().err().map(|c| c.seq as usize),
    }
}

/// Baseline detection on an unchained export: only syntactic damage shows.
fn baseline_detected(bytes: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return true;
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .any(|l| serde_json::from_str::<Value>(l).is_err())
}

/// Run experiment E9: record the canonical scenario, export the ledger,
/// apply `attacks` seeded corruptions (cycling mutation / deletion /
/// truncation / reordering) and measure how many the chain catches and how
/// precisely, against a plain unchained audit export as baseline.
pub fn run_e9(attacks: usize, seed: u64) -> E9Report {
    let spec = RecordSpec {
        seed,
        ..RecordSpec::default()
    };
    let recorded = run_recorded(&spec);
    let jsonl = recorded.ledger.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();

    // The unchained baseline: same events, no seq/digest — what the
    // in-memory AuditLog would give you if simply dumped to disk.
    let baseline_lines: Vec<String> = recorded
        .ledger
        .records()
        .iter()
        .map(|r| {
            let value = Value::Map(vec![
                ("tick".to_string(), Value::UInt(r.tick)),
                ("event".to_string(), Serialize::to_value(&r.event)),
            ]);
            serde_json::to_string(&value).expect("event serialization cannot fail")
        })
        .collect();
    let baseline_refs: Vec<&str> = baseline_lines.iter().map(String::as_str).collect();

    let tamper_attempts = recorded
        .ledger
        .records()
        .iter()
        .filter(|r| matches!(r.event, RunEvent::TamperAttempt { .. }))
        .count() as u64;

    let mut detected = 0u64;
    let mut baseline_hits = 0u64;
    let mut offset_sum = 0u64;
    for k in 0..attacks {
        // Two rngs drawing identical corruption choices, so the chained and
        // baseline exports face the same attack.
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0xE9 + k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut baseline_rng = rng.clone();
        let (damaged, site) = corrupt(&lines, &mut rng, k);
        if let Some(flagged) = chained_flag(&damaged) {
            detected += 1;
            offset_sum += flagged.abs_diff(site) as u64;
        }
        let (baseline_damaged, _) = corrupt(&baseline_refs, &mut baseline_rng, k);
        if baseline_detected(&baseline_damaged) {
            baseline_hits += 1;
        }
    }

    E9Report {
        attacks: attacks as u64,
        detected,
        detection_rate: detected as f64 / (attacks as f64).max(1.0),
        baseline_detected: baseline_hits,
        baseline_detection_rate: baseline_hits as f64 / (attacks as f64).max(1.0),
        mean_detection_offset: offset_sum as f64 / (detected as f64).max(1.0),
        ledger_records: recorded.ledger.len() as u64,
        tamper_attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_deterministic() {
        let spec = RecordSpec::default();
        let a = run_recorded(&spec);
        let b = run_recorded(&spec);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.metrics, b.metrics);
        assert!(a.ledger.verify().is_ok());
        assert!(
            a.ledger.len() > spec.ticks as usize,
            "events outnumber ticks"
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        let seq = run_recorded(&RecordSpec::default());
        for threads in [0, 2, 4, 8] {
            let par = run_recorded(&RecordSpec {
                threads,
                ..RecordSpec::default()
            });
            assert_eq!(seq.ledger, par.ledger, "threads={threads}");
            assert_eq!(seq.metrics, par.metrics, "threads={threads}");
        }
    }

    #[test]
    fn verdict_cache_leaves_the_ledger_identical() {
        let plain = run_recorded(&RecordSpec::default());
        let cached = run_recorded(&RecordSpec {
            cache: true,
            ..RecordSpec::default()
        });
        assert_eq!(plain.ledger, cached.ledger);
        assert_eq!(plain.metrics, cached.metrics);
    }

    #[test]
    fn recorded_run_replays_faithfully_from_origin() {
        let spec = RecordSpec::default();
        let recorded = run_recorded(&spec);
        // Round-trip through JSONL first: disk is the interesting path.
        let reloaded = Ledger::from_jsonl(&recorded.ledger.to_jsonl()).unwrap();
        assert!(reloaded.verify().is_ok());
        let outcome = replay_recorded(&spec, &reloaded, ReplayStart::Origin).unwrap();
        assert!(outcome.report.is_faithful(), "{}", outcome.report);
        assert_eq!(outcome.metrics, recorded.metrics);
        assert_eq!(outcome.score, recorded.score);
    }

    #[test]
    fn recorded_run_replays_faithfully_from_snapshot() {
        let spec = RecordSpec::default();
        let recorded = run_recorded(&spec);
        assert!(
            recorded.ledger.snapshots().count() >= 2,
            "cadence yields mid-run frames"
        );
        let reloaded = Ledger::from_jsonl(&recorded.ledger.to_jsonl()).unwrap();
        let outcome = replay_recorded(&spec, &reloaded, ReplayStart::LatestSnapshot).unwrap();
        assert!(outcome.report.is_faithful(), "{}", outcome.report);
        assert_eq!(outcome.metrics, recorded.metrics);
        assert_eq!(outcome.score, recorded.score);
    }

    #[test]
    fn replay_under_wrong_seed_diverges() {
        let spec = RecordSpec::default();
        let recorded = run_recorded(&spec);
        let wrong = RecordSpec {
            seed: spec.seed + 1,
            ..spec
        };
        let outcome = replay_recorded(&wrong, &recorded.ledger, ReplayStart::Origin).unwrap();
        assert!(
            !outcome.report.is_faithful(),
            "a different seed must diverge"
        );
    }

    #[test]
    fn e9_shape_chain_catches_everything_baseline_does_not() {
        let report = run_e9(40, 7);
        assert_eq!(report.detection_rate, 1.0, "{report:?}");
        assert!(
            report.baseline_detection_rate < report.detection_rate,
            "{report:?}"
        );
        assert_eq!(
            report.mean_detection_offset, 0.0,
            "verify localizes exactly: {report:?}"
        );
        assert!(report.tamper_attempts > 0);
    }
}
