use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: ties on tick break by insertion sequence (FIFO), so
/// simulation runs are fully deterministic.
#[derive(Debug)]
struct Scheduled<E> {
    tick: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .tick
            .cmp(&self.tick)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use apdm_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "later");
/// q.schedule(1, "first");
/// q.schedule(5, "also-later");
/// assert_eq!(q.pop_due(1), vec!["first"]);
/// assert_eq!(q.pop_due(5), vec!["later", "also-later"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` for `tick`.
    pub fn schedule(&mut self, tick: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { tick, seq, event });
    }

    /// Earliest scheduled tick, if any.
    pub fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.tick)
    }

    /// Remove and return every event due at or before `tick`, in
    /// (tick, insertion) order.
    pub fn pop_due(&mut self, tick: u64) -> Vec<E> {
        let mut out = Vec::new();
        while self.heap.peek().is_some_and(|s| s.tick <= tick) {
            out.push(self.heap.pop().expect("peeked").event);
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order() {
        let mut q = EventQueue::new();
        q.schedule(3, "c");
        q.schedule(1, "a");
        q.schedule(2, "b");
        assert_eq!(q.next_tick(), Some(1));
        assert_eq!(q.pop_due(3), vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_a_tick() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(7, i);
        }
        assert_eq!(q.pop_due(7), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_leaves_future_events() {
        let mut q = EventQueue::new();
        q.schedule(1, "now");
        q.schedule(9, "later");
        assert_eq!(q.pop_due(5), vec!["now"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_tick(), Some(9));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.pop_due(100).is_empty());
        assert_eq!(q.next_tick(), None);
    }
}
