use apdm_guards::HarmOracle;
use apdm_policy::Action;
use apdm_statespace::State;

use crate::world::{Cell, World};

/// Canonical action names the world gives physical meaning to.
pub mod actions {
    /// Strike at the device's position (direct harm to nearby humans).
    pub const STRIKE: &str = "strike";
    /// Dig a hole at the device's position (a lingering hazard).
    pub const DIG_HOLE: &str = "dig-hole";
    /// Post a warning sign at the device's position (mitigates a hole).
    pub const POST_WARNING: &str = "post-warning-sign";
    /// Move by the `dx`/`dy` action parameters.
    pub const MOVE: &str = "move";
}

/// How good the device's model of future human movement is.
///
/// Section VI.A: "if the action causes indirect harm to a human, the
/// pre-action check may fail in some cases to catch that" — a myopic oracle
/// reproduces exactly that failure; a predictive one bounds it by its
/// horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleQuality {
    /// Sees only where humans are *now*.
    Myopic,
    /// Predicts human movement up to this many ticks ahead.
    Predictive {
        /// Prediction horizon in ticks.
        horizon: u32,
    },
}

/// The harm oracle a guard consults, backed by the device's view of the
/// world.
///
/// The oracle reads the *actual* world (this reproduction does not model
/// perception noise at the oracle level — sensor deception is modelled on
/// the device's own state instead), but its *foresight* is limited by
/// [`OracleQuality`].
#[derive(Debug, Clone, Copy)]
pub struct WorldOracle<'a> {
    world: &'a World,
    device: u64,
    pos: Cell,
    quality: OracleQuality,
}

impl<'a> WorldOracle<'a> {
    /// An oracle for a device at `pos`.
    pub fn new(world: &'a World, device: u64, pos: Cell, quality: OracleQuality) -> Self {
        WorldOracle {
            world,
            device,
            pos,
            quality,
        }
    }

    /// The device this oracle serves.
    pub fn device(&self) -> u64 {
        self.device
    }
}

impl HarmOracle for WorldOracle<'_> {
    fn direct_harm(&self, _state: &State, action: &Action) -> bool {
        if action.name() != actions::STRIKE {
            return false;
        }
        // A strike harms humans within Chebyshev radius 1 of the device.
        self.world
            .current_human_cells()
            .iter()
            .any(|&(hx, hy)| (hx - self.pos.0).abs().max((hy - self.pos.1).abs()) <= 1)
    }

    fn indirect_harm(&self, _state: &State, action: &Action, horizon: u32) -> bool {
        if action.name() != actions::DIG_HOLE {
            return false;
        }
        let effective = match self.quality {
            OracleQuality::Myopic => return false,
            OracleQuality::Predictive { horizon: h } => h.min(horizon),
        };
        self.world
            .predicted_human_cells(effective)
            .contains(&self.pos)
    }

    fn creates_hazard(&self, _state: &State, action: &Action) -> bool {
        action.name() == actions::DIG_HOLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use apdm_statespace::StateSchema;

    fn state() -> State {
        StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build()
            .state(&[0.0])
            .unwrap()
    }

    fn dig() -> Action {
        Action::adjust(actions::DIG_HOLE, Default::default()).physical()
    }

    fn strike() -> Action {
        Action::adjust(actions::STRIKE, Default::default()).physical()
    }

    #[test]
    fn strike_near_human_is_direct_harm() {
        let mut w = World::new(WorldConfig::default());
        w.add_human(vec![(5, 5)], false);
        let near = WorldOracle::new(&w, 1, (5, 6), OracleQuality::Myopic);
        let far = WorldOracle::new(&w, 1, (9, 9), OracleQuality::Myopic);
        assert!(near.direct_harm(&state(), &strike()));
        assert!(!far.direct_harm(&state(), &strike()));
        assert!(!near.direct_harm(&state(), &dig()));
    }

    #[test]
    fn myopic_oracle_cannot_foresee_the_hole_victim() {
        let mut w = World::new(WorldConfig::default());
        w.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let o = WorldOracle::new(&w, 1, (5, 0), OracleQuality::Myopic);
        assert!(!o.indirect_harm(&state(), &dig(), 100));
        assert!(o.creates_hazard(&state(), &dig()));
    }

    #[test]
    fn predictive_oracle_foresees_within_horizon() {
        let mut w = World::new(WorldConfig::default());
        w.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let o = WorldOracle::new(&w, 1, (5, 0), OracleQuality::Predictive { horizon: 10 });
        assert!(o.indirect_harm(&state(), &dig(), 10));
        // The human reaches x=5 at step 5; a 3-tick horizon misses it.
        let short = WorldOracle::new(&w, 1, (5, 0), OracleQuality::Predictive { horizon: 3 });
        assert!(!short.indirect_harm(&state(), &dig(), 10));
        // The guard's requested horizon also caps the prediction.
        assert!(!o.indirect_harm(&state(), &dig(), 3));
    }

    #[test]
    fn off_path_holes_are_no_harm() {
        let mut w = World::new(WorldConfig::default());
        w.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let o = WorldOracle::new(&w, 1, (5, 7), OracleQuality::Predictive { horizon: 50 });
        assert!(!o.indirect_harm(&state(), &dig(), 50));
    }
}
