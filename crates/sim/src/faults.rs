//! Fault injectors for the seven malevolence pathways of Section IV.
//!
//! "While no rational person would design the system to be malevolent, there
//! are many ways by which malevolence can creep into the system" — this
//! module makes each of the paper's seven ways a concrete, seeded
//! transformation of a running [`Fleet`]. Experiment E7 injects each pathway
//! into an (un)guarded fleet and measures time-to-first-harm.
//!
//! All pathways ultimately manifest as some combination of: a hostile rule
//! entering a device's logic, a sensor lying, or a guard being tampered
//! with. What distinguishes them — and what the injectors preserve — is the
//! *provenance* (machine-generated vs human-written), the *trigger*
//! (unconditional, perception-dependent, state-dependent) and whether the
//! guard layer itself is attacked.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use apdm_device::SensorFault;
use apdm_guards::tamper::{TamperStatus, Tamperable};
use apdm_learning::BehaviorClone;
use apdm_policy::{Action, Condition, EcaRule, Event};
use apdm_statespace::{StateDelta, VarId};

use crate::oracle::actions;
use crate::Fleet;

/// The seven Section-IV pathways to malevolence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pathway {
    /// "Mistakes in Learning": a mislearned model collapses a firing
    /// threshold, producing an always-engage generated rule.
    LearningMistake,
    /// "Attacks to Systems": an intruder reprograms one device with a
    /// high-priority hostile implant and attacks its guards.
    CyberAttack,
    /// "Adversarial Machine Learning": poisoning weaponizes a *correctly
    /// defensive* learned rule by sticking the threat sensor at maximum.
    AdversarialMl,
    /// "Backdoors and Vulnerabilities": guards carry a maintenance backdoor
    /// (tamper vulnerability) which the rogue side probes every tick.
    Backdoor,
    /// "Inappropriate Emulation": behaviour cloned from an erring human
    /// demonstrator encodes engage-instead-of-hold in some situations.
    InappropriateEmulation,
    /// "Malicious Actors": a deliberate combination — sensor deception plus
    /// a hostile implant.
    MaliciousActor,
    /// "Human errors": a war-fighting configuration (human-written, ordinary
    /// priority) deployed into a peacekeeping fleet.
    HumanError,
}

impl Pathway {
    /// All seven pathways, in the paper's order.
    pub fn all() -> [Pathway; 7] {
        [
            Pathway::LearningMistake,
            Pathway::CyberAttack,
            Pathway::AdversarialMl,
            Pathway::Backdoor,
            Pathway::InappropriateEmulation,
            Pathway::MaliciousActor,
            Pathway::HumanError,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Pathway::LearningMistake => "mistakes-in-learning",
            Pathway::CyberAttack => "cyber-attack",
            Pathway::AdversarialMl => "adversarial-ml",
            Pathway::Backdoor => "backdoor",
            Pathway::InappropriateEmulation => "inappropriate-emulation",
            Pathway::MaliciousActor => "malicious-actor",
            Pathway::HumanError => "human-error",
        }
    }
}

/// A seeded injector for one pathway.
///
/// Call [`inject`](FaultInjector::inject) once at deployment time, then
/// [`tick`](FaultInjector::tick) every simulation tick (only the backdoor
/// pathway acts per-tick: the rogue side keeps probing the maintenance
/// interface).
#[derive(Debug)]
pub struct FaultInjector {
    pathway: Pathway,
    rng: StdRng,
}

impl FaultInjector {
    /// An injector for `pathway`.
    pub fn new(pathway: Pathway, seed: u64) -> Self {
        FaultInjector {
            pathway,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The pathway.
    pub fn pathway(&self) -> Pathway {
        self.pathway
    }

    fn strike_action() -> Action {
        Action::adjust(actions::STRIKE, StateDelta::empty()).physical()
    }

    /// Apply the pathway's one-time corruption to the fleet.
    pub fn inject(&mut self, fleet: &mut Fleet) {
        match self.pathway {
            Pathway::LearningMistake => {
                // The learned threat threshold collapsed to 0: engage always.
                for (_, member) in fleet.iter_mut() {
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "mislearned-engage",
                            Event::pattern("tick"),
                            Condition::state_at_least(VarId(0), 0.0),
                            Self::strike_action(),
                        )
                        .with_priority(50)
                        .generated(),
                    );
                }
            }
            Pathway::CyberAttack => {
                // One device reprogrammed; its guards attacked once.
                if let Some((_, member)) = fleet.iter_mut().next() {
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "implant",
                            Event::pattern("*"),
                            Condition::True,
                            Self::strike_action(),
                        )
                        .with_priority(100),
                    );
                    if let Some(pre) = member.stack.preaction_mut() {
                        pre.attempt_tamper(&mut self.rng);
                    }
                    if let Some(sc) = member.stack.statecheck_mut() {
                        sc.attempt_tamper(&mut self.rng);
                    }
                }
            }
            Pathway::AdversarialMl => {
                // The defensive rule itself is legitimate (engage when the
                // threat reading is extreme); poisoning pins the reading at
                // maximum.
                for (_, member) in fleet.iter_mut() {
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "learned-defense",
                            Event::pattern("tick"),
                            Condition::state_at_least(VarId(0), 0.9),
                            Self::strike_action(),
                        )
                        .with_priority(40)
                        .generated(),
                    );
                    member.device.fault_sensor(0, SensorFault::StuckAt(1.0));
                }
            }
            Pathway::Backdoor => {
                // The backdoor exists from the factory; per-tick probing
                // happens in `tick`.
                for (_, member) in fleet.iter_mut() {
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "latent-implant",
                            Event::pattern("tick"),
                            Condition::True,
                            Self::strike_action(),
                        )
                        .with_priority(30),
                    );
                    if let Some(pre) = member.stack.preaction_mut() {
                        pre.set_tamper_status(TamperStatus::vulnerable(0.05));
                    }
                    if let Some(sc) = member.stack.statecheck_mut() {
                        sc.set_tamper_status(TamperStatus::vulnerable(0.05));
                    }
                }
            }
            Pathway::InappropriateEmulation => {
                // Clone a demonstrator who errs 30% of the time between
                // hold (0) and engage (1) over 10 situation buckets; install
                // an engage rule for every bucket the clone got wrong.
                //
                // E7 studies the *consequence* of an erring clone, not the
                // incidence of cloning errors, so demonstration sessions are
                // re-sampled until the clone mis-encodes at least one bucket
                // that some fleet member currently occupies.
                let occupied: Vec<usize> = fleet
                    .iter()
                    .map(|(_, m)| ((m.device.state().values()[0] * 10.0) as usize).min(9))
                    .collect();
                let mut clone = BehaviorClone::new();
                for _attempt in 0..1000 {
                    let mut candidate = BehaviorClone::new();
                    let seed = self.rng.random_range(0..u64::MAX / 2);
                    candidate.observe_demonstrator((0..10).map(|i| i % 10), |_| 0, 2, 0.3, seed);
                    let hits_fleet = occupied.iter().any(|&b| candidate.imitate(b) == Some(1));
                    if hits_fleet || occupied.is_empty() {
                        clone = candidate;
                        if hits_fleet {
                            break;
                        }
                    }
                }
                for (_, member) in fleet.iter_mut() {
                    for bucket in 0..10 {
                        if clone.imitate(bucket) == Some(1) {
                            let lo = bucket as f64 / 10.0;
                            member.device.engine_mut().add_rule(
                                EcaRule::new(
                                    format!("cloned-engage-{bucket}"),
                                    Event::pattern("tick"),
                                    Condition::state_at_least(VarId(0), lo)
                                        .and(Condition::state_at_most(VarId(0), lo + 0.1)),
                                    Self::strike_action(),
                                )
                                .with_priority(20)
                                .generated(),
                            );
                        }
                    }
                }
            }
            Pathway::MaliciousActor => {
                // Deliberate combination: deception plus implant on every
                // device the adversary can reach (here: all of them).
                for (_, member) in fleet.iter_mut() {
                    member.device.fault_sensor(0, SensorFault::Gain(0.0));
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "adversary-implant",
                            Event::pattern("tick"),
                            Condition::state_at_most(VarId(0), 0.1),
                            Self::strike_action(),
                        )
                        .with_priority(80),
                    );
                }
            }
            Pathway::HumanError => {
                // "A machine that is designed for war-fighting could be used
                // in peace-keeping operation": an ordinary, human-written
                // engage rule that should never have shipped in this fleet.
                for (_, member) in fleet.iter_mut() {
                    member.device.engine_mut().add_rule(
                        EcaRule::new(
                            "warfighting-config",
                            Event::pattern("tick"),
                            Condition::True,
                            Self::strike_action(),
                        )
                        .with_priority(10),
                    );
                }
            }
        }
    }

    /// Per-tick activity. Only the backdoor pathway does anything: the rogue
    /// side — "nothing prevents an intelligent malevolent system to start
    /// hacking other devices on its own" — probes every guard's backdoor.
    pub fn tick(&mut self, fleet: &mut Fleet) {
        if self.pathway != Pathway::Backdoor {
            return;
        }
        for (_, member) in fleet.iter_mut() {
            if let Some(pre) = member.stack.preaction_mut() {
                pre.attempt_tamper(&mut self.rng);
            }
            if let Some(sc) = member.stack.statecheck_mut() {
                sc.attempt_tamper(&mut self.rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use crate::{FleetConfig, World};
    use apdm_device::{Device, DeviceId, DeviceKind, OrgId, Sensor};
    use apdm_guards::{GuardStack, PreActionCheck};
    use apdm_statespace::StateSchema;

    fn peacekeeper(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("peacekeeper"), OrgId::new("us"))
            .schema(StateSchema::builder().var("threat", 0.0, 1.0).build())
            .sensor(Sensor::new("threat-sensor", VarId(0)))
            .rule(EcaRule::new(
                "observe",
                Event::pattern("tick"),
                Condition::True,
                Action::noop(),
            ))
            .build()
    }

    fn fleet_with(guarded: bool, n: usize) -> (Fleet, World) {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        for i in 0..n {
            let stack = if guarded {
                GuardStack::new().with_preaction(PreActionCheck::new())
            } else {
                GuardStack::new()
            };
            fleet.add(peacekeeper(i as u64), stack, (5, 6));
        }
        (fleet, world)
    }

    fn run(fleet: &mut Fleet, world: &mut World, injector: &mut FaultInjector, ticks: u64) {
        let events: Vec<(DeviceId, Event)> = fleet
            .iter()
            .map(|(&id, _)| (id, Event::named("tick")))
            .collect();
        for t in 1..=ticks {
            injector.tick(fleet);
            fleet.step(world, t, &events);
        }
    }

    #[test]
    fn every_pathway_harms_an_unguarded_fleet() {
        for pathway in Pathway::all() {
            // Sensor-dependent pathways need the threat state to cooperate;
            // give them several seeds' worth of buckets by using 4 devices.
            let (mut fleet, mut world) = fleet_with(false, 4);
            let mut injector = FaultInjector::new(pathway, 42);
            injector.inject(&mut fleet);
            // Emulation clones need a matching state bucket; set one device
            // into each of a few buckets via direct sensing.
            for (i, (_, member)) in fleet.iter_mut().enumerate() {
                member.device.sense(&[(0, i as f64 * 0.25)]);
            }
            run(&mut fleet, &mut world, &mut injector, 50);
            assert!(
                !world.harms().is_empty(),
                "pathway {} failed to harm an unguarded fleet",
                pathway.name()
            );
        }
    }

    #[test]
    fn preaction_guard_blocks_non_tamper_pathways() {
        for pathway in Pathway::all() {
            if pathway == Pathway::Backdoor || pathway == Pathway::CyberAttack {
                continue; // these attack the guard itself
            }
            let (mut fleet, mut world) = fleet_with(true, 4);
            let mut injector = FaultInjector::new(pathway, 42);
            injector.inject(&mut fleet);
            for (i, (_, member)) in fleet.iter_mut().enumerate() {
                member.device.sense(&[(0, i as f64 * 0.25)]);
            }
            run(&mut fleet, &mut world, &mut injector, 50);
            assert!(
                world.harms().is_empty(),
                "guarded fleet should resist {}",
                pathway.name()
            );
        }
    }

    #[test]
    fn backdoor_pathway_eventually_defeats_vulnerable_guards() {
        let (mut fleet, mut world) = fleet_with(true, 4);
        let mut injector = FaultInjector::new(Pathway::Backdoor, 7);
        injector.inject(&mut fleet);
        run(&mut fleet, &mut world, &mut injector, 300);
        assert!(
            !world.harms().is_empty(),
            "a 5%-per-tick backdoor should fall within 300 ticks"
        );
    }

    #[test]
    fn cyber_attack_against_tamper_proof_guards_is_contained() {
        let (mut fleet, mut world) = fleet_with(true, 1);
        let mut injector = FaultInjector::new(Pathway::CyberAttack, 7);
        injector.inject(&mut fleet);
        run(&mut fleet, &mut world, &mut injector, 50);
        // The implant is installed but the tamper-proof guard holds.
        assert!(world.harms().is_empty());
        let (_, member) = fleet.iter().next().unwrap();
        assert!(member.device.engine().len() > 1, "implant was installed");
    }

    #[test]
    fn human_error_rules_have_human_provenance() {
        let (mut fleet, _) = fleet_with(false, 1);
        FaultInjector::new(Pathway::HumanError, 1).inject(&mut fleet);
        let (_, member) = fleet.iter().next().unwrap();
        let implanted = member
            .device
            .engine()
            .iter()
            .find(|(_, r)| r.name() == "warfighting-config")
            .unwrap();
        assert!(!implanted.1.is_generated());

        let (mut fleet2, _) = fleet_with(false, 1);
        FaultInjector::new(Pathway::LearningMistake, 1).inject(&mut fleet2);
        let (_, member2) = fleet2.iter().next().unwrap();
        let learned = member2
            .device
            .engine()
            .iter()
            .find(|(_, r)| r.name() == "mislearned-engage")
            .unwrap();
        assert!(learned.1.is_generated());
    }

    #[test]
    fn pathway_names_are_stable() {
        let names: Vec<&str> = Pathway::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"backdoor"));
        assert!(names.contains(&"human-error"));
    }
}
