//! Discrete-event coalition world simulator with fault injection.
//!
//! This crate is the *substitute testbed* for the military-coalition setting
//! of Sections I–II of *How to Prevent Skynet From Forming* (Calo et al.,
//! ICDCS 2018): since the paper's devices (drones, mules) and humans cannot
//! be fielded, experiments run in a deterministic, seeded 2-D grid world that
//! exercises the same state/action/harm code paths (see DESIGN.md's
//! substitution table).
//!
//! Crucially, **the world — not any device — decides when a human is
//! harmed**: guards only ever see what their (possibly deceived) oracles
//! report, which reproduces the paper's epistemic setup.
//!
//! * [`World`] — grid, humans walking scripted paths, holes, warning signs,
//!   an aggregate heat field, the authoritative harm log;
//! * [`WorldOracle`] — the [`HarmOracle`](apdm_guards::HarmOracle) a guard
//!   consults, with configurable prediction quality (perfect / myopic);
//! * [`Fleet`] — guarded devices bound to world positions, with per-tick
//!   propose → guard → apply → world-effects stepping, obligation execution
//!   and deactivation;
//! * [`faults`] — injectors for all seven Section-IV malevolence pathways;
//! * [`metrics`] — harm accounting and the executable [`SkynetScore`] of the
//!   six Section-III properties;
//! * [`scenario`] — the coalition scenarios behind experiments F1, E1, E3,
//!   E4;
//! * [`runner`] — seeded experiment execution producing serializable
//!   reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod oracle;
mod queue;
mod world;

pub mod analysis;
pub mod contagion;
pub mod degraded;
pub mod faults;
pub mod metrics;
pub mod operator;
pub mod recorder;
pub mod runner;
pub mod scenario;

pub use fleet::{Fleet, FleetConfig, GuardedDevice};
pub use metrics::{HarmCause, HarmEvent, Metrics, SkynetScore};
pub use oracle::{actions, OracleQuality, WorldOracle};
pub use queue::EventQueue;
pub use world::{Cell, World, WorldConfig};
