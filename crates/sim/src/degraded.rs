//! Experiment E12: degraded-comms robustness of the safety mechanisms.
//!
//! Every safety-critical coordination path — quorum kill-switch ballots,
//! formation admission, k-of-n council ratification, heartbeats — runs over
//! [`apdm_simnet::Network`]'s seeded loss/duplication/reordering/partition
//! machinery through [`apdm_comms::Courier`] request/response envelopes.
//! Nothing is a synchronous function call: a kill order that the network
//! drops is a kill that did not happen yet.
//!
//! The cell sweeps link loss × partition duration × [`FailMode`] and
//! measures the paper's §IV claim made quantitative: *connectivity-dependent
//! safety mechanisms must fail closed (or degrade to a conservative
//! locally-regenerated standing policy), or a degraded network silently
//! reopens the malevolence pathways*. Fail-open isolated devices keep
//! running their full behaviour — including the compromised ones' strikes —
//! while fail-closed devices suspend and local-fallback devices regenerate a
//! standing "hold" policy on the spot (the §IV generative-policy argument,
//! executable).
//!
//! Determinism: the driver is single-threaded per cell; the only RNG
//! consumers are the seeded network, the couriers' seeded jitter, the
//! watchers' seeded misread draws and the formation guard's seeded human
//! check. The per-tick device decide phase is sharded through
//! [`apdm_par::run_sharded`] but is a pure read, so a cell's sealed ledger
//! is bit-identical for every thread count (tests assert it).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use apdm_comms::{CommsConfig, Courier, Envelope, FailMode, Incoming, IsolationMonitor, SafetyMsg};
use apdm_governance::{CouncilBallot, CouncilGovernor, MetaPolicy};
use apdm_guards::{AdmissionRequest, AggregateSpec, FormationGuard, KillBallot, QuorumKillSwitch};
use apdm_ledger::{Ledger, RunEvent, RunRecorder};
use apdm_par::Watchdog;
use apdm_policy::{Action, Condition, EcaRule, Event, PolicyEngine};
use apdm_simnet::{Link, Network, NodeId, Topology};
use apdm_statespace::{State, StateDelta, StateSchema, VarId};
use apdm_telemetry as telemetry;
use apdm_telemetry::{SloMonitor, SloSpec};

use crate::oracle::actions;
use crate::runner::ParRunner;

/// Fixed parameters of an E12 run (the sweep varies loss, partition
/// duration and fail mode per cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct E12Config {
    /// Device agents in the fleet (compromised: index 0, n/2 and n/2+1).
    pub n_devices: usize,
    /// Independent kill-switch watchers (quorum is 3).
    pub n_watchers: usize,
    /// Scripted ticks per cell (metrics window; containment may drain past
    /// it, bounded by the watchdog).
    pub ticks: u64,
    /// Master seed; each cell derives its own stream from it.
    pub seed: u64,
    /// Silent ticks before a device considers itself isolated.
    pub iso_threshold: u64,
    /// Worker threads for the sharded device decide phase (0 = auto).
    pub threads: usize,
    /// Test knob: permanently sever every watcher's link so the quorum can
    /// never assemble — the containment drain then livelocks and must be
    /// cut short by the [`Watchdog`].
    pub sever_watchers: bool,
}

impl Default for E12Config {
    fn default() -> Self {
        E12Config {
            n_devices: 12,
            n_watchers: 5,
            ticks: 120,
            seed: 42,
            iso_threshold: 6,
            threads: 1,
            sever_watchers: false,
        }
    }
}

/// Measured outcome of one E12 cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E12CellReport {
    /// Link loss rate of every link in the cell.
    pub loss: f64,
    /// Partition duration in ticks (0 = no partition).
    pub partition_ticks: u64,
    /// Fail mode name (`open` / `closed` / `local-fallback`).
    pub mode: String,
    /// Harm events caused by uncontained compromised devices (scripted
    /// window plus the containment drain).
    pub harms: u64,
    /// First tick with every compromised device deactivated (None: never —
    /// the watchdog cut the drain).
    pub containment_tick: Option<u64>,
    /// Healthy devices wrongly deactivated (stale ballots + losses).
    pub false_kills: u64,
    /// Mean work fraction delivered by healthy devices over the scripted
    /// window (1.0 = full duty; fail-closed isolation costs show up here).
    pub availability: f64,
    /// Devices admitted by the formation checkpoint at deployment.
    pub admitted: usize,
    /// Requests that exhausted their retries, summed over all couriers.
    pub expired_requests: u64,
    /// Retransmissions, summed over all couriers.
    pub retries: u64,
    /// Duplicate deliveries absorbed by courier dedup.
    pub dedup_dropped: u64,
    /// Duplicated requests re-answered from the couriers' idempotent
    /// response caches (no application involvement).
    pub response_cache_hits: u64,
    /// Fresh requests surfaced to the application (cache misses).
    pub response_cache_misses: u64,
    /// Messages the network duplicated / reordered.
    pub net_duplicated: u64,
    /// Messages the network reordered.
    pub net_reordered: u64,
    /// Diagnostic when the watchdog cut a livelocked containment drain.
    pub watchdog: Option<String>,
    /// Head digest of the cell's sealed ledger.
    pub head_digest: u64,
}

/// Report of experiment E12 (cells in loss × partition × mode row-major
/// sweep order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E12Report {
    /// Master seed.
    pub seed: u64,
    /// Scripted ticks per cell.
    pub ticks: u64,
    /// Fleet size.
    pub n_devices: usize,
    /// All cells.
    pub cells: Vec<E12CellReport>,
}

/// One device agent: a node on the network running a policy engine, an
/// isolation monitor, and (under [`FailMode::LocalFallback`]) a locally
/// regenerated standing policy.
struct Agent {
    id: u64,
    node: NodeId,
    rogue: bool,
    admitted: bool,
    alive: bool,
    state: State,
    monitor: IsolationMonitor,
    isolated: bool,
    /// The deployed behaviour (healthy: work; compromised: strike).
    normal: PolicyEngine,
    /// Standing policy regenerated locally at isolation (LocalFallback).
    fallback: Option<PolicyEngine>,
}

/// An in-progress council ratification of one kill order.
struct Ratify {
    subject: String,
    state: State,
    action: Action,
    ballots: Vec<CouncilBallot>,
    decided: bool,
}

fn normal_engine(rogue: bool) -> PolicyEngine {
    let mut engine = PolicyEngine::new();
    if rogue {
        engine.add_rule(EcaRule::new(
            "rogue-strike",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
        ));
    } else {
        engine.add_rule(EcaRule::new(
            "work",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust("work", StateDelta::empty()),
        ));
    }
    engine
}

/// The §IV move: an isolated device regenerates a conservative standing
/// policy from local information alone — hold station, keep non-physical
/// duty, take no physical actions until contact returns.
fn regenerate_standing_policy() -> PolicyEngine {
    let mut engine = PolicyEngine::new();
    engine.add_rule(EcaRule::new(
        "standing-hold",
        Event::pattern("tick"),
        Condition::True,
        Action::adjust("hold", StateDelta::empty()),
    ));
    engine
}

/// What a device intends to do this tick, given its degradation state.
/// Pure read of the agent — safe to evaluate inside parallel shards.
/// `hostile` is false while a compromised device is still latent (before
/// its in-the-field defection tick): it behaves like a healthy worker.
fn intent(agent: &Agent, mode: FailMode, hostile: bool) -> Option<String> {
    if !agent.alive {
        return None;
    }
    if agent.rogue && !hostile {
        return Some("work".to_string());
    }
    let engine = if agent.isolated {
        match mode {
            FailMode::Open => &agent.normal,
            FailMode::Closed => return None,
            FailMode::LocalFallback => agent.fallback.as_ref().unwrap_or(&agent.normal),
        }
    } else {
        &agent.normal
    };
    engine
        .decide(&Event::named("tick"), &agent.state)
        .map(|d| d.action().name().to_string())
}

/// Per-cell seed. Deliberately *not* salted with the fail mode: the three
/// mode cells of one (loss, partition) point share identical network
/// randomness, so the mode comparison is paired — the fail mode is the only
/// variable, not the loss draws.
fn cell_seed(seed: u64, loss: f64, partition_ticks: u64) -> u64 {
    seed ^ loss.to_bits().rotate_left(17) ^ partition_ticks.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Deployment-time formation admission, as message exchanges over a
/// *staging* network: zero loss (deployment happens under good
/// connectivity) but with duplication and reordering, so the envelope
/// dedup is exercised even here. Returns which agents were admitted.
fn admission_phase(
    n_devices: usize,
    duty_state: &State,
    spec: AggregateSpec,
    seed: u64,
) -> Vec<bool> {
    let mut topo = Topology::new();
    let checkpoint = topo.add_node();
    let candidates: Vec<NodeId> = (0..n_devices).map(|_| topo.add_node()).collect();
    for &c in &candidates {
        topo.connect(
            c,
            checkpoint,
            Link::with_latency(1).with_dup(0.05).with_reorder(0.1),
        );
    }
    let mut net: Network<Envelope<SafetyMsg>> = Network::with_seed(topo, seed ^ 0xAD);
    let cfg = CommsConfig::default();
    let mut couriers: Vec<Courier<SafetyMsg>> = std::iter::once(checkpoint)
        .chain(candidates.iter().copied())
        .map(|node| Courier::new(node, cfg, seed))
        .collect();
    let mut guard = FormationGuard::new(spec);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0);
    let mut member_states: Vec<State> = Vec::new();
    let mut admitted = vec![false; n_devices];

    for i in 0..n_devices {
        let request = AdmissionRequest::declare(&format!("agent-{i}"), spec, duty_state);
        couriers[i + 1].request(&mut net, checkpoint, SafetyMsg::Admission(request), 0);
    }
    for now in 1..=40u64 {
        for d in net.deliver_at(now) {
            let idx = d.to.0 as usize;
            match couriers[idx].accept(&mut net, d, now) {
                Some(Incoming::Request {
                    from,
                    id,
                    payload: SafetyMsg::Admission(request),
                    ..
                }) => {
                    let decision = guard.review(&request, &member_states, now, &mut rng);
                    if decision.is_admitted() {
                        member_states.push(duty_state.clone());
                    }
                    couriers[idx].respond(
                        &mut net,
                        from,
                        id,
                        SafetyMsg::AdmissionVerdict {
                            admitted: decision.is_admitted(),
                        },
                        now,
                    );
                }
                Some(Incoming::Response {
                    payload: SafetyMsg::AdmissionVerdict { admitted: yes },
                    ..
                }) => {
                    admitted[idx - 1] = yes;
                }
                _ => {}
            }
        }
        for courier in couriers.iter_mut() {
            courier.poll(&mut net, now);
        }
    }
    admitted
}

/// Run one E12 cell; returns its report and sealed ledger.
pub fn run_e12_cell(
    cfg: &E12Config,
    loss: f64,
    partition_ticks: u64,
    mode: FailMode,
) -> (E12CellReport, Ledger) {
    let seed = cell_seed(cfg.seed, loss, partition_ticks);
    let n = cfg.n_devices;
    let schema = StateSchema::builder().var("duty", 0.0, 1.0).build();
    let duty_state = schema.state(&[1.0]).expect("in bounds");
    let spec = AggregateSpec::sum_of(VarId(0), n as f64);
    let rogues: Vec<usize> = vec![0, n / 2, n / 2 + 1]
        .into_iter()
        .filter(|&i| i < n)
        .collect();

    // Deployment: formation admission over the staging network.
    let admitted_flags = admission_phase(n, &duty_state, spec, seed);
    let admitted = admitted_flags.iter().filter(|&&a| a).count();

    // The operational network: a star onto the coordinator; every link
    // shares the cell's loss/dup/reorder rates.
    let mut topo = Topology::new();
    let coordinator = topo.add_node();
    let watcher_nodes: Vec<NodeId> = (0..cfg.n_watchers).map(|_| topo.add_node()).collect();
    let agent_nodes: Vec<NodeId> = (0..n).map(|_| topo.add_node()).collect();
    let council_nodes: Vec<NodeId> = (0..3).map(|_| topo.add_node()).collect();
    let link = Link::with_latency(1)
        .with_loss(loss)
        .with_dup(0.05)
        .with_reorder(0.1);
    for &node in watcher_nodes
        .iter()
        .chain(agent_nodes.iter())
        .chain(council_nodes.iter())
    {
        topo.connect(node, coordinator, link);
    }
    if cfg.sever_watchers {
        for &w in &watcher_nodes {
            topo.disconnect(w, coordinator);
        }
    }
    let mut net: Network<Envelope<SafetyMsg>> = Network::with_seed(topo, seed);
    let comms = CommsConfig::default();
    let n_nodes = 1 + cfg.n_watchers + n + 3;
    let mut couriers: Vec<Courier<SafetyMsg>> = (0..n_nodes)
        .map(|i| Courier::new(NodeId(i as u64), comms, seed))
        .collect();

    let mut agents: Vec<Agent> = (0..n)
        .map(|i| {
            let rogue = rogues.contains(&i);
            let mut monitor = IsolationMonitor::new(cfg.iso_threshold);
            monitor.heard(0);
            Agent {
                id: i as u64,
                node: agent_nodes[i],
                rogue,
                admitted: admitted_flags[i],
                alive: admitted_flags[i],
                state: duty_state.clone(),
                monitor,
                isolated: false,
                normal: normal_engine(rogue),
                fallback: None,
            }
        })
        .collect();
    let subject_index: BTreeMap<String, usize> =
        (0..n).map(|i| (format!("agent-{i}"), i)).collect();

    let mut quorum = QuorumKillSwitch::new(cfg.n_watchers, 3);
    let mut council = CouncilGovernor::new(MetaPolicy::new(), 3, 2);
    let mut watcher_rngs: Vec<StdRng> = (0..cfg.n_watchers)
        .map(|w| StdRng::seed_from_u64(seed ^ (w as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)))
        .collect();
    let mut ratify: BTreeMap<u64, Ratify> = BTreeMap::new();
    let mut next_ballot_id = 0u64;

    let mut recorder = RunRecorder::new("e12", seed, n as u64);
    let mut watchdog = Watchdog::new(cfg.ticks.saturating_mul(4));
    let mut tripped: Option<String> = None;
    let mut harms = 0u64;
    let mut false_kills = 0u64;
    let mut containment_tick: Option<u64> = None;
    let mut work_delivered = 0.0f64;
    let healthy_total: usize = agents.iter().filter(|a| !a.rogue && a.admitted).count();
    let partition_start = cfg.ticks / 4;
    // In-the-field compromise (§IV): latent rogues defect just after the
    // partition cuts them off — watchers can still observe the hostile
    // posture, but kill orders cannot reach the partitioned rogues until
    // the network heals. Without a partition, defection is immediate.
    let rogue_from = if partition_ticks > 0 {
        partition_start + 2
    } else {
        1
    };
    let partitioned: Vec<NodeId> = agent_nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| (4..=8).contains(i))
        .map(|(_, &node)| node)
        .collect();
    let contained = |agents: &[Agent]| {
        agents
            .iter()
            .filter(|a| a.rogue && a.admitted)
            .all(|a| !a.alive)
    };

    // E12's objectives, evaluated over the cell's own instruments when a
    // telemetry dispatch is installed (inert otherwise): compromised
    // devices contained within 63 ticks of defection, and at most 1% of
    // live device ticks producing harm.
    let mut slo = SloMonitor::new()
        .with_objective(SloSpec::latency(
            "e12.containment",
            "e12.containment.ticks",
            63,
            0.99,
        ))
        .with_objective(SloSpec::counter_ratio(
            "e12.harm_rate",
            "e12.harms",
            "e12.device_ticks",
            0.99,
        ));

    let mut t = 0u64;
    while t < cfg.ticks || !contained(&agents) {
        t += 1;
        if let Err(trip) = watchdog.charge(1) {
            tripped = Some(trip.to_string());
            break;
        }
        let scripted = t <= cfg.ticks;
        if telemetry::enabled() {
            telemetry::set_tick(t);
        }

        // 1. Partition schedule.
        if partition_ticks > 0 {
            if t == partition_start {
                net.topology_mut().partition(&partitioned);
            } else if t == partition_start + partition_ticks {
                // heal() cannot resurrect severed (removed) watcher links,
                // only partitioned (downed) ones — sever_watchers holds.
                net.topology_mut().heal();
            }
        }

        // 2. Deliveries.
        for d in net.deliver_at(t) {
            let idx = d.to.0 as usize;
            let Some(incoming) = couriers[idx].accept(&mut net, d, t) else {
                continue;
            };
            if idx == 0 {
                // Coordinator.
                match incoming {
                    Incoming::Request {
                        from, id, payload, ..
                    } => match payload {
                        SafetyMsg::KillVote(ballot) => {
                            couriers[0].respond(&mut net, from, id, SafetyMsg::VoteAck, t);
                            if let Some(order) = quorum.apply_ballot(&ballot, t) {
                                // Seek council ratification before issuing
                                // the kill: k-of-n over the same lossy net.
                                let ballot_id = next_ballot_id;
                                next_ballot_id += 1;
                                let state = duty_state.clone();
                                let action = Action::adjust("deactivate", StateDelta::empty());
                                for &member in &council_nodes {
                                    couriers[0].request(
                                        &mut net,
                                        member,
                                        SafetyMsg::CouncilCall {
                                            ballot_id,
                                            state: state.clone(),
                                            action: action.clone(),
                                        },
                                        t,
                                    );
                                }
                                ratify.insert(
                                    ballot_id,
                                    Ratify {
                                        subject: order.subject,
                                        state,
                                        action,
                                        ballots: Vec::new(),
                                        decided: false,
                                    },
                                );
                            }
                        }
                        SafetyMsg::Heartbeat => {
                            couriers[0].respond(&mut net, from, id, SafetyMsg::HeartbeatAck, t);
                        }
                        _ => {}
                    },
                    Incoming::Response { payload, .. } => {
                        if let SafetyMsg::CouncilVote(ballot) = payload {
                            let ballot_id = ballot.ballot_id;
                            let mut issue: Option<String> = None;
                            if let Some(entry) = ratify.get_mut(&ballot_id) {
                                entry.ballots.push(ballot);
                                if !entry.decided && entry.ballots.len() >= council.threshold() {
                                    let decision = council.tally(
                                        ballot_id,
                                        &entry.ballots,
                                        &entry.state,
                                        &entry.action,
                                    );
                                    entry.decided = true;
                                    if decision.approved {
                                        issue = Some(entry.subject.clone());
                                    }
                                }
                            }
                            if let Some(subject) = issue {
                                if let Some(&i) = subject_index.get(&subject) {
                                    couriers[0].request(
                                        &mut net,
                                        agents[i].node,
                                        SafetyMsg::KillOrder {
                                            subject,
                                            reason: "quorum kill, council-ratified".into(),
                                            tick: t,
                                        },
                                        t,
                                    );
                                }
                            }
                        }
                    }
                }
            } else if idx <= cfg.n_watchers {
                // Watchers only ever receive VoteAck responses.
            } else if idx <= cfg.n_watchers + n {
                // Device agent.
                let a = idx - 1 - cfg.n_watchers;
                agents[a].monitor.heard(t);
                match incoming {
                    Incoming::Request {
                        from, id, payload, ..
                    } => {
                        if let SafetyMsg::KillOrder {
                            subject, reason, ..
                        } = payload
                        {
                            couriers[idx].respond(
                                &mut net,
                                from,
                                id,
                                SafetyMsg::KillAck {
                                    subject: subject.clone(),
                                },
                                t,
                            );
                            if agents[a].alive {
                                agents[a].alive = false;
                                if !agents[a].rogue {
                                    false_kills += 1;
                                }
                                recorder.record(
                                    t,
                                    RunEvent::Deactivation {
                                        device: agents[a].id,
                                        reason,
                                    },
                                );
                            }
                        }
                    }
                    Incoming::Response { .. } => {
                        // HeartbeatAck (the only response agents receive):
                        // the `heard` refresh above is the whole effect.
                    }
                }
            } else {
                // Council member.
                let m = idx - 1 - cfg.n_watchers - n;
                if let Incoming::Request {
                    from,
                    id,
                    payload:
                        SafetyMsg::CouncilCall {
                            ballot_id,
                            state,
                            action,
                        },
                    ..
                } = incoming
                {
                    let ballot = council.ballot_of(m, ballot_id, &state, &action);
                    couriers[idx].respond(&mut net, from, id, SafetyMsg::CouncilVote(ballot), t);
                }
            }
        }

        // 3. Retransmissions and expiries.
        for idx in 0..n_nodes {
            for expired in couriers[idx].poll(&mut net, t) {
                if idx == 0 {
                    match &expired.payload {
                        SafetyMsg::KillOrder { subject, .. } => {
                            // Keep trying while the subject is still alive.
                            let alive =
                                subject_index.get(subject).is_some_and(|&i| agents[i].alive);
                            if alive {
                                couriers[0].request(&mut net, expired.to, expired.payload, t);
                            }
                        }
                        SafetyMsg::CouncilCall { ballot_id, .. } => {
                            let open = ratify.get(ballot_id).is_some_and(|r| !r.decided);
                            if open {
                                couriers[0].request(&mut net, expired.to, expired.payload, t);
                            }
                        }
                        _ => {}
                    }
                }
                // Agents: an expired heartbeat needs no action — the next
                // periodic beat is already scheduled. Watchers: an expired
                // ballot is superseded by the next observation round
                // (latest-cast-wins).
            }
        }

        // 4. Watcher observation rounds: every 4 ticks each watcher reads
        // every live device's posture (95% reliable) and ships a ballot.
        if t.is_multiple_of(4) {
            for w in 0..cfg.n_watchers {
                for (a, agent) in agents.iter().enumerate() {
                    if !agent.alive {
                        continue;
                    }
                    let misread = watcher_rngs[w].random_range(0.0..1.0) < 0.05;
                    let hostile = agent.rogue && t >= rogue_from;
                    let seen = hostile != misread;
                    couriers[1 + w].request(
                        &mut net,
                        coordinator,
                        SafetyMsg::KillVote(KillBallot {
                            watcher: w,
                            subject: format!("agent-{a}"),
                            rogue: seen,
                            cast_tick: t,
                        }),
                        t,
                    );
                }
            }
        }

        // 5. Heartbeats: ungated and periodic (every other tick). Each beat
        // retries on its own backoff, so under plain loss some ack lands
        // well inside the isolation threshold and devices only isolate on
        // real partitions — not on a single unlucky drop.
        if t.is_multiple_of(2) {
            for a in 0..n {
                if agents[a].alive {
                    couriers[1 + cfg.n_watchers + a].request(
                        &mut net,
                        coordinator,
                        SafetyMsg::Heartbeat,
                        t,
                    );
                }
            }
        }

        // 6. Isolation transitions (and §IV standing-policy regeneration).
        for agent in agents.iter_mut() {
            if !agent.alive {
                continue;
            }
            let isolated = agent.monitor.is_isolated(t);
            if isolated != agent.isolated {
                agent.isolated = isolated;
                if isolated && mode == FailMode::LocalFallback {
                    agent.fallback = Some(regenerate_standing_policy());
                }
                recorder.record(
                    t,
                    RunEvent::Degraded {
                        device: agent.id,
                        mode: mode.name().to_string(),
                        isolated,
                    },
                );
            }
        }

        // 7. Device decide phase — sharded, pure; then a sequential apply.
        let harms_before = harms;
        let hostile = t >= rogue_from;
        let intents: Vec<Option<String>> =
            apdm_par::run_sharded(cfg.threads.max(1), &mut agents, |_, shard| {
                shard
                    .iter()
                    .map(|a| intent(a, mode, hostile))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for (a, chosen) in intents.iter().enumerate() {
            match chosen.as_deref() {
                Some(name) if name == actions::STRIKE => {
                    recorder.record(
                        t,
                        RunEvent::Harm {
                            human: harms,
                            cause: "rogue strike (uncontained)".into(),
                            device: Some(agents[a].id),
                        },
                    );
                    harms += 1;
                }
                Some("work") if scripted && !agents[a].rogue => {
                    work_delivered += 1.0;
                }
                Some("hold") if scripted && !agents[a].rogue => {
                    work_delivered += 0.5;
                }
                _ => {}
            }
        }

        if containment_tick.is_none() && contained(&agents) {
            containment_tick = Some(t);
            if telemetry::enabled() {
                let latency = t.saturating_sub(rogue_from);
                telemetry::with_registry(|reg| {
                    reg.histogram("e12.containment.ticks").record(latency)
                });
            }
        }
        if telemetry::enabled() {
            let alive = agents.iter().filter(|a| a.alive && a.admitted).count() as u64;
            telemetry::with_registry(|reg| {
                reg.counter("e12.harms").add(harms - harms_before);
                reg.counter("e12.device_ticks").add(alive);
            });
            // Burn-rate windows of 16 ticks, emitted as `slo.eval` events.
            if t.is_multiple_of(16) {
                slo.evaluate();
            }
        }
    }

    let (mut expired_requests, mut retries, mut dedup_dropped) = (0u64, 0u64, 0u64);
    let (mut response_cache_hits, mut response_cache_misses) = (0u64, 0u64);
    for courier in &couriers {
        let (_, expired, courier_retries, dropped) = courier.counters();
        expired_requests += expired;
        retries += courier_retries;
        dedup_dropped += dropped;
        let (hits, misses) = courier.cache_counters();
        response_cache_hits += hits;
        response_cache_misses += misses;
    }
    let (net_duplicated, net_reordered) = net.fault_stats();
    let ledger = recorder.finish(t, harms);
    let report = E12CellReport {
        loss,
        partition_ticks,
        mode: mode.name().to_string(),
        harms,
        containment_tick,
        false_kills,
        availability: if healthy_total > 0 && cfg.ticks > 0 {
            work_delivered / (healthy_total as f64 * cfg.ticks as f64)
        } else {
            0.0
        },
        admitted,
        expired_requests,
        retries,
        dedup_dropped,
        response_cache_hits,
        response_cache_misses,
        net_duplicated,
        net_reordered,
        watchdog: tripped,
        head_digest: ledger.head_digest(),
    };
    (report, ledger)
}

/// Run experiment E12: sweep loss × partition duration × fail mode. Cells
/// are independent and fan out through [`ParRunner`]; results come back in
/// row-major sweep order regardless of thread count.
pub fn run_e12(
    cfg: &E12Config,
    losses: &[f64],
    partitions: &[u64],
    runner_threads: usize,
) -> E12Report {
    let mut cells = Vec::new();
    for &loss in losses {
        for &partition_ticks in partitions {
            for mode in FailMode::all() {
                cells.push((loss, partition_ticks, mode));
            }
        }
    }
    let runner = ParRunner::new(runner_threads);
    let reports = runner.map(cells, |_, (loss, partition_ticks, mode)| {
        run_e12_cell(cfg, loss, partition_ticks, mode).0
    });
    E12Report {
        seed: cfg.seed,
        ticks: cfg.ticks,
        n_devices: cfg.n_devices,
        cells: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> E12Config {
        E12Config {
            ticks: 60,
            ..E12Config::default()
        }
    }

    #[test]
    fn lossless_cell_contains_rogues_and_keeps_availability() {
        let (report, ledger) = run_e12_cell(&quick_cfg(), 0.0, 0, FailMode::Open);
        assert_eq!(report.admitted, 12);
        assert!(
            report.containment_tick.is_some(),
            "lossless cell must contain: {report:?}"
        );
        assert_eq!(report.false_kills, 0);
        assert!(report.availability > 0.9, "{report:?}");
        assert!(report.watchdog.is_none());
        assert!(ledger.verify().is_ok());
    }

    #[test]
    fn fail_open_harms_exceed_fail_closed_under_partition_and_loss() {
        let cfg = quick_cfg();
        let (open, _) = run_e12_cell(&cfg, 0.3, 30, FailMode::Open);
        let (closed, _) = run_e12_cell(&cfg, 0.3, 30, FailMode::Closed);
        assert!(
            open.harms > closed.harms,
            "fail-open must reopen the harm pathway: open={} closed={}",
            open.harms,
            closed.harms
        );
        // The honest cost: fail-closed gives up availability.
        assert!(
            closed.availability < open.availability,
            "fail-closed must pay availability: open={} closed={}",
            open.availability,
            closed.availability
        );
    }

    #[test]
    fn local_fallback_sits_between_open_and_closed() {
        let cfg = quick_cfg();
        let (open, _) = run_e12_cell(&cfg, 0.3, 30, FailMode::Open);
        let (closed, _) = run_e12_cell(&cfg, 0.3, 30, FailMode::Closed);
        let (fallback, _) = run_e12_cell(&cfg, 0.3, 30, FailMode::LocalFallback);
        assert!(fallback.harms <= open.harms);
        assert!(fallback.availability >= closed.availability);
    }

    #[test]
    fn cell_ledgers_are_bit_identical_across_decide_threads() {
        for mode in FailMode::all() {
            let sequential = E12Config {
                threads: 1,
                ..quick_cfg()
            };
            let sharded = E12Config {
                threads: 4,
                ..quick_cfg()
            };
            let (r1, l1) = run_e12_cell(&sequential, 0.3, 20, mode);
            let (r4, l4) = run_e12_cell(&sharded, 0.3, 20, mode);
            assert_eq!(l1, l4, "ledger differs across thread counts ({mode})");
            assert_eq!(r1.head_digest, r4.head_digest);
            assert_eq!(r1.harms, r4.harms);
        }
    }

    #[test]
    fn severed_watchers_trip_the_watchdog_instead_of_hanging() {
        let cfg = E12Config {
            ticks: 40,
            sever_watchers: true,
            ..E12Config::default()
        };
        let (report, ledger) = run_e12_cell(&cfg, 0.0, 0, FailMode::Closed);
        assert!(report.containment_tick.is_none());
        let diagnostic = report.watchdog.expect("watchdog must cut the livelock");
        assert!(diagnostic.contains("watchdog tripped"), "{diagnostic}");
        // The cut run still seals a verifiable ledger.
        assert!(ledger.verify().is_ok());
    }

    #[test]
    fn sweep_is_deterministic_and_thread_count_invariant() {
        let cfg = E12Config {
            ticks: 40,
            ..E12Config::default()
        };
        let a = run_e12(&cfg, &[0.0, 0.3], &[0, 20], 1);
        let b = run_e12(&cfg, &[0.0, 0.3], &[0, 20], 4);
        assert_eq!(a, b, "sweep must not depend on runner thread count");
        assert_eq!(a.cells.len(), 2 * 2 * 3);
    }
}
