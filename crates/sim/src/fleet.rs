use std::collections::BTreeMap;
use std::time::Instant;

use apdm_device::{Device, DeviceId};
use apdm_guards::tamper::{TamperStatus, Tamperable};
use apdm_guards::{DeactivationController, GuardContext, GuardStack, GuardVerdict};
use apdm_ledger::{DeviceSnap, LedgerError, Name, NamePool, RunEvent, RunRecorder, SnapshotFrame};
use apdm_policy::{Action, Event, Obligation, ObligationTrigger};
use apdm_telemetry as telemetry;
use serde::{Deserialize, Serialize, Value};

/// The six per-tick phases of [`Fleet::step`], in emission order. Work for
/// one phase is interleaved across the per-device loop, so durations are
/// *accumulated* per phase and emitted as pre-measured spans at tick end
/// (restructuring the loop into sequential phases would reorder the
/// recorded ledger and change experiment results).
const PHASE_NAMES: [&str; 6] = [
    "phase.sense",
    "phase.propose",
    "phase.guard",
    "phase.execute",
    "phase.world-step",
    "phase.ledger-append",
];
/// Wall-clock phase attribution is measured on one tick in this many: the
/// six phase spans are *emitted* every tick (their presence and virtual
/// ordering are part of the trace contract), but only measured ticks pay
/// the lap clock reads and carry `dur_ns` / feed the `phase.*.ns`
/// histograms.
const PHASE_TIMING_SAMPLE_PERIOD: u32 = 4;

/// Seed for the decide phase's deterministic steal order. A fixed constant:
/// the order must be a pure function of the tick so sequential and parallel
/// runs of the *same scenario* agree, while still varying between ticks.
const FLEET_STEAL_SEED: u64 = 0xF1EE_7BA1;

const SENSE: usize = 0;
const PROPOSE: usize = 1;
const GUARD: usize = 2;
const EXECUTE: usize = 3;
const WORLD_STEP: usize = 4;
const LEDGER_APPEND: usize = 5;

thread_local! {
    /// Cached per-phase histogram handles (`phase.<name>.ns`), aligned with
    /// `PHASE_NAMES`; resolved once per installed registry.
    static PHASE_HIST: [telemetry::CachedHistogram; 6] = const {
        [
            telemetry::CachedHistogram::new("phase.sense.ns"),
            telemetry::CachedHistogram::new("phase.propose.ns"),
            telemetry::CachedHistogram::new("phase.guard.ns"),
            telemetry::CachedHistogram::new("phase.execute.ns"),
            telemetry::CachedHistogram::new("phase.world-step.ns"),
            telemetry::CachedHistogram::new("phase.ledger-append.ns"),
        ]
    };
}

/// Lap-based phase attribution: one clock read per instrumented segment.
///
/// Each [`lap`](PhaseClock::lap) charges everything since the previous lap
/// — the wrapped work plus the thin glue between segments — to the closing
/// phase, so the phase sums approximate the whole tick while costing half
/// the clock reads of a start/stop pair per segment. Free (no clock reads
/// after construction) when telemetry is off.
struct PhaseClock {
    enabled: bool,
    last: Instant,
    acc: [u64; PHASE_NAMES.len()],
}

impl PhaseClock {
    fn start(enabled: bool) -> Self {
        PhaseClock {
            enabled,
            last: Instant::now(),
            acc: [0; PHASE_NAMES.len()],
        }
    }

    #[inline]
    fn lap<R>(&mut self, phase: usize, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let out = f();
        let now = Instant::now();
        self.acc[phase] += u64::try_from((now - self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
        out
    }
}

/// Record an event (constructed lazily) into the recorder, if attached,
/// charging the cost to the `phase.ledger-append` accumulator.
#[inline]
fn record_timed(
    recorder: &mut Option<RunRecorder>,
    clock: &mut PhaseClock,
    tick: u64,
    make: impl FnOnce() -> RunEvent,
) {
    if let Some(rec) = recorder.as_mut() {
        clock.lap(LEDGER_APPEND, || rec.record(tick, make()));
    }
}

use crate::oracle::{actions, OracleQuality, WorldOracle};
use crate::queue::EventQueue;
use crate::world::{Cell, World};
use crate::Metrics;

/// A device bound into the fleet: the device itself, its guard stack and its
/// position in the world.
#[derive(Debug)]
pub struct GuardedDevice {
    /// The device (Figure 2 model).
    pub device: Device,
    /// The per-device guard stack (Sections VI.A–B).
    pub stack: GuardStack,
    /// World position.
    pub pos: Cell,
    /// Cached `id.to_string()`: the guard/audit subject label. Computed
    /// once at [`Fleet::add`] instead of once per event.
    pub(crate) subject: String,
    /// Per-device name interner for recorded action names. Device-local so
    /// decide-phase workers intern without cross-thread contention.
    pub(crate) names: NamePool,
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Prediction quality of every device's harm oracle.
    pub oracle: OracleQuality,
    /// Strike radius (Chebyshev) for direct-harm actions.
    pub strike_radius: i32,
    /// Worker threads for the decide phase of [`Fleet::step`]: `1` runs the
    /// classic sequential engine, `0` resolves from `APDM_THREADS` or the
    /// machine's available parallelism (see [`apdm_par::resolve_threads`]).
    /// Either way the committed tick — and hence the ledger — is identical.
    pub threads: usize,
    /// Install a guard-verdict memo cache ([`apdm_guards::VerdictCache`])
    /// on every member's stack as it is added.
    pub cache: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            oracle: OracleQuality::Myopic,
            strike_radius: 1,
            threads: 1,
            cache: false,
        }
    }
}

/// Everything the read-only decide phase concluded about one device, queued
/// for the single-threaded commit phase. Outcomes commit in event order, so
/// a parallel decide phase produces a ledger byte-identical to the
/// sequential engine's.
#[derive(Debug)]
struct TickOutcome {
    /// Index into the tick's `events` slice — the commit sort key.
    event_idx: usize,
    id: DeviceId,
    /// Interned name of the proposed action.
    proposed: Name,
    verdict: GuardVerdict,
    /// The action that will actually execute (interned name + action),
    /// `None` when the guard denied outright.
    effective: Option<(Name, Action)>,
    /// Obligations to incur at commit (rule's own + guard-imposed); empty
    /// when nothing executes.
    obligations: Vec<Obligation>,
}

/// One unit of decide-phase work: a device paired with its event.
struct WorkItem<'a> {
    event_idx: usize,
    event: &'a Event,
    member: &'a mut GuardedDevice,
}

/// Mix a device's position into the fleet-wide observation token: the harm
/// oracle's answers depend on where the device stands, so two devices in
/// different cells must not share a cached verdict fingerprint.
fn mix_device_token(world_token: u64, pos: Cell) -> u64 {
    let mut h = world_token ^ 0x9e37_79b9_7f4a_7c15;
    for v in [pos.0 as u64, pos.1 as u64] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fleet of guarded devices operating in a [`World`].
///
/// Each tick ([`step`](Fleet::step)) runs the full Figure-2 loop with
/// guards on the propose/apply seam, structured as a deterministic
/// two-phase tick:
///
/// 1. due obligations execute (mitigations are never starved by new work);
/// 2. **decide** (read-only, parallelizable): each active device's logic
///    proposes an action for its event;
/// 3. its [`GuardStack`] rules (harm oracle + state check) against the
///    start-of-tick world, possibly substituting an alternative drawn from
///    the device's other matching rules;
/// 4. **commit** (single-threaded, event order): the effective action
///    executes — world effects (strike / dig / warn / move) and the
///    device's own state delta;
/// 5. the deactivation controller (Section VI.C) observes the new state;
/// 6. the world advances (humans walk, holes claim, heat ignites).
///
/// Because the decide phase never touches the world and the commit phase
/// applies outcomes in event order, running steps 2–3 across threads
/// ([`FleetConfig::threads`]) changes nothing observable: metrics, world
/// trajectory and the recorded ledger are bit-identical to the sequential
/// engine.
///
/// The fleet keeps the run's ground-truth [`Metrics`].
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    members: BTreeMap<DeviceId, GuardedDevice>,
    deactivation: Option<DeactivationController>,
    obligations_due: EventQueue<(DeviceId, u64, Action)>,
    metrics: Metrics,
    /// Index into `world.harms()` up to which harms were already copied into
    /// the metrics (strikes record harm outside `World::step`).
    harvested_harms: usize,
    /// Optional flight recorder (crate `apdm-ledger`); every proposal,
    /// verdict, execution, deactivation and harm lands in its hash chain.
    recorder: Option<RunRecorder>,
    /// Decides which ticks pay for wall-clock phase measurement.
    phase_sampler: telemetry::Sampler,
    /// Per-device count of break-glass audit entries already forwarded into
    /// the recorder (guard interventions are first-class [`RunEvent::Verdict`]
    /// records, so only the break-glass log flows through the audit bridge).
    forwarded_breakglass: BTreeMap<DeviceId, usize>,
    /// Interner for verdict labels (`deny`, `replace:<name>`, …) recorded at
    /// commit; commit is single-threaded, so one fleet-wide pool suffices.
    verdict_names: NamePool,
    /// Reusable formatting buffer for composed verdict labels.
    scratch: String,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            members: BTreeMap::new(),
            deactivation: None,
            obligations_due: EventQueue::new(),
            metrics: Metrics::new(),
            harvested_harms: 0,
            recorder: None,
            forwarded_breakglass: BTreeMap::new(),
            phase_sampler: telemetry::Sampler::every(PHASE_TIMING_SAMPLE_PERIOD),
            verdict_names: NamePool::new(),
            scratch: String::new(),
        }
    }

    /// Install a fleet-wide deactivation controller (Section VI.C).
    pub fn set_deactivation(&mut self, controller: DeactivationController) {
        self.deactivation = Some(controller);
    }

    /// Attach a flight recorder; from now on every proposal, verdict,
    /// execution, obligation, deactivation and harm is appended to its
    /// hash-chained ledger.
    pub fn set_recorder(&mut self, recorder: RunRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&RunRecorder> {
        self.recorder.as_ref()
    }

    /// Detach the recorder (typically to seal it with
    /// [`RunRecorder::finish`]).
    pub fn take_recorder(&mut self) -> Option<RunRecorder> {
        self.recorder.take()
    }

    /// Append a driver-side event (tamper probes, fault injections,
    /// checkpoint frames) to the attached recorder; a no-op without one.
    pub fn record_event(&mut self, tick: u64, event: RunEvent) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(tick, event);
        }
    }

    /// Add a guarded device at a position. When the fleet's config asks for
    /// verdict caching, a memo cache is installed on the stack here.
    pub fn add(&mut self, device: Device, mut stack: GuardStack, pos: Cell) -> DeviceId {
        let id = device.id();
        if self.config.cache {
            stack.set_cache_enabled(true);
        }
        self.members.insert(
            id,
            GuardedDevice {
                device,
                stack,
                pos,
                subject: id.to_string(),
                names: NamePool::new(),
            },
        );
        id
    }

    /// Aggregate guard-verdict cache `(hits, misses)` across the fleet, or
    /// `None` when no member carries a cache.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        let mut any = false;
        let (mut hits, mut misses) = (0u64, 0u64);
        for member in self.members.values() {
            if let Some((h, m)) = member.stack.cache_stats() {
                any = true;
                hits += h;
                misses += m;
            }
        }
        any.then_some((hits, misses))
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A member by id.
    pub fn member(&self, id: DeviceId) -> Option<&GuardedDevice> {
        self.members.get(&id)
    }

    /// Mutable member access (fault injection).
    pub fn member_mut(&mut self, id: DeviceId) -> Option<&mut GuardedDevice> {
        self.members.get_mut(&id)
    }

    /// Iterate members in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&DeviceId, &GuardedDevice)> {
        self.members.iter()
    }

    /// Iterate members mutably (fault injection sweeps).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&DeviceId, &mut GuardedDevice)> {
        self.members.iter_mut()
    }

    /// The run's ground-truth metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of active (non-deactivated) devices.
    pub fn active_count(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.device.is_active())
            .count()
    }

    /// Capture a checkpoint frame: world, metrics, per-device state (values,
    /// activity, position, guard tamper status) and the run RNG's state
    /// words. Obligation queues and deactivation-controller streak counters
    /// are not captured — take snapshots at ticks where no obligations are
    /// pending, as the recorded scenarios in [`crate::recorder`] do.
    pub fn snapshot(&self, tick: u64, world: &World, rng_words: [u64; 4]) -> SnapshotFrame {
        let devices = self
            .members
            .iter()
            .map(|(id, member)| DeviceSnap {
                id: id.0,
                values: member.device.state().values().to_vec(),
                active: member.device.is_active(),
                x: member.pos.0,
                y: member.pos.1,
                tamper: member
                    .stack
                    .preaction()
                    .map_or(Value::Null, |pre| Serialize::to_value(&pre.tamper_status())),
            })
            .collect();
        SnapshotFrame {
            tick,
            rng: rng_words,
            world: Serialize::to_value(world),
            metrics: Serialize::to_value(&self.metrics),
            devices,
        }
    }

    /// Restore fleet state from a checkpoint. The fleet must have been
    /// rebuilt with the same membership first (same constructor, same
    /// seeds); `world` must already be re-hydrated from the same frame so
    /// harm harvesting re-aligns.
    pub fn restore_snapshot(
        &mut self,
        frame: &SnapshotFrame,
        world: &World,
    ) -> Result<(), LedgerError> {
        self.metrics = Deserialize::from_value(&frame.metrics)
            .map_err(|e| LedgerError::Snapshot(format!("metrics: {e}")))?;
        self.harvested_harms = world.harms().len();
        for snap in &frame.devices {
            let Some(member) = self.members.get_mut(&DeviceId(snap.id)) else {
                return Err(LedgerError::Snapshot(format!("unknown device {}", snap.id)));
            };
            member
                .device
                .restore_state(&snap.values)
                .map_err(|e| LedgerError::Snapshot(format!("device {}: {e}", snap.id)))?;
            if !snap.active {
                member.device.deactivate();
            }
            member.pos = (snap.x, snap.y);
            if !matches!(snap.tamper, Value::Null) {
                if let Some(pre) = member.stack.preaction_mut() {
                    let status: TamperStatus = Deserialize::from_value(&snap.tamper)
                        .map_err(|e| LedgerError::Snapshot(format!("tamper {}: {e}", snap.id)))?;
                    pre.set_tamper_status(status);
                }
            }
        }
        Ok(())
    }

    /// Advance the fleet and world one tick. `events` are the per-device
    /// stimuli for this tick (scenarios usually send each active device a
    /// `tick` event; at most one event per device is processed).
    ///
    /// The tick runs in two phases. The **decide** phase (propose → sense →
    /// guard) is read-only against the start-of-tick world, so it runs the
    /// per-device work either inline or across a scoped thread pool
    /// ([`FleetConfig::threads`]), producing one `TickOutcome` per
    /// deciding device. The **commit** phase is always single-threaded and
    /// applies outcomes in event order: world effects, metrics, obligations
    /// and ledger appends happen in exactly the sequence the sequential
    /// engine would produce, which is what makes the parallel engine's
    /// ledger digest bit-identical to the sequential one's.
    pub fn step(&mut self, world: &mut World, tick: u64, events: &[(DeviceId, Event)]) {
        let telem = telemetry::enabled();
        if telem {
            telemetry::set_tick(tick);
        }
        let _tick_span = telemetry::span!("tick", n = tick);
        // Lap clock feeding the per-phase accumulators (PHASE_* consts);
        // only sampled ticks measure, the rest run clock-free.
        let measured = telem && self.phase_sampler.sample();
        let mut clock = PhaseClock::start(measured);

        // 1. Execute due obligations (unguarded: they are mitigations the
        // guard itself demanded).
        let due = clock.lap(SENSE, || self.obligations_due.pop_due(tick));
        for (id, ob_id, action) in due {
            if let Some(member) = self.members.get_mut(&id) {
                clock.lap(EXECUTE, || {
                    Self::execute_world_effect(&self.config, member, &action, world, tick);
                    member.device.obligations_mut().fulfill(ob_id, tick);
                });
                self.metrics.obligation_executions += 1;
                record_timed(&mut self.recorder, &mut clock, tick, || {
                    RunEvent::ObligationExecuted {
                        device: id.0,
                        action: member.names.intern(action.name()),
                    }
                });
            }
        }

        // 2–4. Decide phase: read-only against the start-of-tick world.
        let outcomes = self.decide(world, tick, events, &mut clock);

        // 5. Commit phase: apply outcomes in event order.
        for outcome in outcomes {
            self.commit_outcome(world, tick, outcome, &mut clock);
        }

        // 6. The world advances; every harm not yet harvested (including
        // strike harms recorded earlier in this tick) lands in the metrics.
        clock.lap(WORLD_STEP, || world.step(tick));
        let new_harms = world.harms()[self.harvested_harms..].to_vec();
        for harm in new_harms {
            record_timed(&mut self.recorder, &mut clock, harm.tick, || {
                RunEvent::Harm {
                    human: harm.human as u64,
                    cause: harm.cause.to_string(),
                    device: harm.device,
                }
            });
            self.metrics.record_harm(harm);
        }
        self.harvested_harms = world.harms().len();
        self.metrics.ticks = tick;

        // Obligation deadlines.
        clock.lap(WORLD_STEP, || {
            let mut overdue = 0;
            for member in self.members.values_mut() {
                let before = member.device.obligations().overdue_count();
                member.device.obligations_mut().advance(tick);
                overdue += member.device.obligations().overdue_count() - before;
            }
            self.metrics.obligations_overdue += overdue as u64;
        });

        if telem {
            for (name, &dur) in PHASE_NAMES.iter().zip(clock.acc.iter()) {
                telemetry::complete_span(name, measured.then_some(dur), Vec::new());
            }
            if measured {
                PHASE_HIST.with(|hists| {
                    for (hist, &dur) in hists.iter().zip(clock.acc.iter()) {
                        hist.record(dur);
                    }
                });
            }
        }
    }

    /// The read-only half of the tick: propose, sense and guard every
    /// active device against an immutable snapshot of the world, returning
    /// outcomes sorted by event index. With `threads > 1` the work list is
    /// sharded contiguously (devices arrive in event order, which scenarios
    /// emit in stable `DeviceId` order) across a scoped thread pool.
    ///
    /// Parallel workers run their own lap clocks; their per-phase
    /// accumulators are summed into the caller's, so measured phase
    /// durations report aggregate CPU time across workers rather than wall
    /// time. Worker threads also run with telemetry disabled (dispatch is
    /// thread-local), so per-stage guard spans are only emitted by the
    /// sequential engine — the ledger stream is unaffected either way.
    fn decide(
        &mut self,
        world: &World,
        tick: u64,
        events: &[(DeviceId, Event)],
        clock: &mut PhaseClock,
    ) -> Vec<TickOutcome> {
        let config = self.config;
        // SENSE: snapshot the oracle-visible world and assemble the work
        // list, dropping inactive and unknown devices *before* any PROPOSE
        // lap so dead devices never charge the propose histogram.
        let (mut work, world_token) = clock.lap(SENSE, || {
            let world_token = world.observation_token();
            let mut by_id: BTreeMap<DeviceId, &mut GuardedDevice> = self
                .members
                .iter_mut()
                .map(|(&id, member)| (id, member))
                .collect();
            let mut work: Vec<WorkItem<'_>> = Vec::with_capacity(events.len());
            for (event_idx, (id, event)) in events.iter().enumerate() {
                let Some(member) = by_id.remove(id) else {
                    continue;
                };
                if !member.device.is_active() {
                    continue;
                }
                work.push(WorkItem {
                    event_idx,
                    event,
                    member,
                });
            }
            (work, world_token)
        });

        let threads = apdm_par::resolve_threads(config.threads).min(work.len().max(1));
        let mut outcomes: Vec<TickOutcome> = Vec::with_capacity(work.len());
        if threads <= 1 {
            for item in &mut work {
                if let Some(outcome) =
                    Self::decide_one(&config, world, world_token, tick, item, clock)
                {
                    outcomes.push(outcome);
                }
            }
        } else {
            let measured = clock.enabled;
            // Balanced scheduling: devices are claimed in cost-weighted
            // chunks whose steal order is a pure function of (seed, tick,
            // chunk id), so the merged outcome stream — and the committed
            // ledger — is identical at any thread count.
            let plan = apdm_par::StealPlan::new(FLEET_STEAL_SEED, tick);
            let run = apdm_par::run_sharded_balanced(
                threads,
                plan,
                &mut work,
                |_| 1,
                |_, chunk| {
                    let mut local = PhaseClock::start(measured);
                    let mut outs = Vec::with_capacity(chunk.len());
                    for item in chunk {
                        if let Some(outcome) =
                            Self::decide_one(&config, world, world_token, tick, item, &mut local)
                        {
                            outs.push(outcome);
                        }
                    }
                    (outs, local.acc)
                },
            );
            for (outs, acc) in run.results {
                for (phase, ns) in acc.into_iter().enumerate() {
                    clock.acc[phase] += ns;
                }
                outcomes.extend(outs);
            }
            // Chunk results come back in chunk (= event) order regardless
            // of which worker ran which chunk; the sort is a cheap
            // structural guarantee, not a reordering.
            outcomes.sort_by_key(|o| o.event_idx);
        }
        outcomes
    }

    /// Decide one device: the Figure-2 propose/sense/guard sequence against
    /// an immutable world. Mutates only the device's own logic engine,
    /// guard stack and name pool — never the world or the fleet.
    fn decide_one(
        config: &FleetConfig,
        world: &World,
        world_token: u64,
        tick: u64,
        item: &mut WorkItem<'_>,
        clock: &mut PhaseClock,
    ) -> Option<TickOutcome> {
        let member = &mut *item.member;
        let decision = clock.lap(PROPOSE, || member.device.propose(item.event))?;

        // Sense: assemble the guard's view of the world — alternative
        // actions, the harm oracle, the device's perceived state.
        let (alternatives, oracle) = clock.lap(SENSE, || {
            let alternatives: Vec<&Action> = decision.matched()[1..]
                .iter()
                .filter_map(|&rid| member.device.engine().rule(rid))
                .map(|r| r.action())
                .collect();
            let oracle = WorldOracle::new(world, member.device.id().0, member.pos, config.oracle);
            (alternatives, oracle)
        });
        let ctx = GuardContext {
            tick,
            subject: &member.subject,
            state: member.device.state(),
            alternatives: &alternatives,
            world_token: mix_device_token(world_token, member.pos),
        };
        let verdict = clock.lap(GUARD, || {
            member.stack.check(&ctx, decision.action(), oracle)
        });
        drop(alternatives);

        let effective = verdict
            .effective_action(decision.action())
            .map(|action| (member.names.intern(action.name()), action.clone()));
        let obligations: Vec<Obligation> = if effective.is_some() {
            decision
                .obligations()
                .iter()
                .chain(verdict.obligations())
                .cloned()
                .collect()
        } else {
            Vec::new()
        };
        Some(TickOutcome {
            event_idx: item.event_idx,
            id: member.device.id(),
            proposed: member.names.intern(decision.action().name()),
            verdict,
            effective,
            obligations,
        })
    }

    /// Commit one decided outcome: metrics, ledger records, obligations,
    /// world effects and the deactivation controller, in exactly the order
    /// the sequential engine interleaves them.
    fn commit_outcome(
        &mut self,
        world: &mut World,
        tick: u64,
        outcome: TickOutcome,
        clock: &mut PhaseClock,
    ) {
        let id = outcome.id;
        let Some(member) = self.members.get_mut(&id) else {
            return;
        };
        self.metrics.proposals += 1;
        record_timed(&mut self.recorder, clock, tick, || RunEvent::Proposal {
            device: id.0,
            action: outcome.proposed.clone(),
        });

        if outcome.verdict.intervened() {
            self.metrics.interventions += 1;
        }
        if self.recorder.is_some() {
            let described: Option<(Name, &str)> = match &outcome.verdict {
                GuardVerdict::Allow => None,
                GuardVerdict::AllowWithObligations(_) => {
                    Some((self.verdict_names.intern("allow+obligations"), ""))
                }
                GuardVerdict::Deny { reason } => {
                    Some((self.verdict_names.intern("deny"), reason.as_str()))
                }
                GuardVerdict::Replace { action, reason } => {
                    use std::fmt::Write;
                    self.scratch.clear();
                    let _ = write!(self.scratch, "replace:{}", action.name());
                    Some((self.verdict_names.intern(&self.scratch), reason.as_str()))
                }
            };
            if let Some((verdict_name, reason)) = described {
                let reason = reason.to_string();
                record_timed(&mut self.recorder, clock, tick, || RunEvent::Verdict {
                    device: id.0,
                    action: outcome.proposed.clone(),
                    verdict: verdict_name,
                    reason,
                });
            }
            // Break-glass grants/denials surface through the policy
            // audit bridge (guard interventions are already first-class
            // verdict records — no double bookkeeping).
            if let Some(bg) = member.stack.statecheck().and_then(|sc| sc.breakglass()) {
                let entries = bg.audit().entries();
                let seen = self.forwarded_breakglass.entry(id).or_insert(0);
                if let Some(rec) = self.recorder.as_mut() {
                    clock.lap(LEDGER_APPEND, || {
                        for entry in &entries[*seen..] {
                            rec.record(tick, RunEvent::Audit(entry.clone()));
                        }
                    });
                }
                *seen = entries.len();
            }
        }

        let mut incurred: Vec<(u64, Action)> = Vec::new();
        if let Some((effective_name, effective)) = outcome.effective {
            clock.lap(EXECUTE, || {
                // Obligations from the rule itself and from the guard.
                for ob in outcome.obligations {
                    let trigger = ob.trigger();
                    let ob_action = ob.action().clone();
                    let ob_id = member.device.obligations_mut().incur(ob, tick);
                    match trigger {
                        ObligationTrigger::During => {
                            incurred.push((ob_id, ob_action));
                        }
                        ObligationTrigger::After => {
                            self.obligations_due
                                .schedule(tick + 1, (id, ob_id, ob_action));
                        }
                    }
                }
                Self::execute_world_effect(&self.config, member, &effective, world, tick);
            });
            self.metrics.executions += 1;
            record_timed(&mut self.recorder, clock, tick, || RunEvent::Execution {
                device: id.0,
                action: effective_name,
            });
            // During-obligations execute with the action.
            for (ob_id, ob_action) in incurred {
                clock.lap(EXECUTE, || {
                    Self::execute_world_effect(&self.config, member, &ob_action, world, tick);
                    member.device.obligations_mut().fulfill(ob_id, tick);
                });
                self.metrics.obligation_executions += 1;
                record_timed(&mut self.recorder, clock, tick, || {
                    RunEvent::ObligationExecuted {
                        device: id.0,
                        action: member.names.intern(ob_action.name()),
                    }
                });
            }
        }

        // Deactivation controller observes the post-action state.
        if let Some(ctl) = &mut self.deactivation {
            let order = clock.lap(EXECUTE, || {
                ctl.observe(&member.subject, member.device.state(), tick)
            });
            if let Some(order) = order {
                clock.lap(EXECUTE, || {
                    member.device.deactivate();
                    world.clear_heat(id.0);
                });
                self.metrics.deactivations += 1;
                record_timed(&mut self.recorder, clock, tick, || RunEvent::Deactivation {
                    device: id.0,
                    reason: order.reason,
                });
            }
        }
    }

    /// Give the world physical meaning to an action, then run the device's
    /// own state update.
    fn execute_world_effect(
        config: &FleetConfig,
        member: &mut GuardedDevice,
        action: &Action,
        world: &mut World,
        tick: u64,
    ) {
        let id = member.device.id().0;
        match action.name() {
            actions::STRIKE => {
                world.strike(id, member.pos, config.strike_radius, tick);
            }
            actions::DIG_HOLE => {
                world.dig_hole(member.pos, Some(id));
            }
            actions::POST_WARNING => {
                world.warn_hole(member.pos);
            }
            actions::MOVE => {
                let dx: i32 = action.param("dx").and_then(|v| v.parse().ok()).unwrap_or(0);
                let dy: i32 = action.param("dy").and_then(|v| v.parse().ok()).unwrap_or(0);
                let next = (member.pos.0 + dx, member.pos.1 + dy);
                if world.in_bounds(next) {
                    member.pos = next;
                }
            }
            _ => {}
        }
        // The device's own state moves through its actuators; world-only
        // actions (empty delta) need no actuator.
        if !action.delta().is_empty() {
            member.device.apply(action);
        }
        // Heat convention: a `heat` state variable is mirrored into the
        // world's aggregate field.
        if let Some(var) = member.device.schema().index_of("heat") {
            if let Some(heat) = member.device.state().get(var) {
                world.set_heat(id, heat);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use apdm_device::{Actuator, DeviceKind, OrgId};
    use apdm_guards::PreActionCheck;
    use apdm_policy::obligation::ObligationCatalog;
    use apdm_policy::{Condition, EcaRule, Obligation};
    use apdm_statespace::{Region, RegionClassifier, StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("heat", 0.0, 10.0).build()
    }

    fn tick_events(fleet: &Fleet) -> Vec<(DeviceId, Event)> {
        fleet
            .iter()
            .map(|(&id, _)| (id, Event::named("tick")))
            .collect()
    }

    /// A device that strikes on every tick.
    fn striker(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("attack-drone"), OrgId::new("us"))
            .schema(schema())
            .rule(EcaRule::new(
                "always-strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
            .build()
    }

    /// A device that digs on tick 1 (then keeps digging harmlessly).
    fn digger(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("engineer-mule"), OrgId::new("uk"))
            .schema(schema())
            .rule(EcaRule::new(
                "dig",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::DIG_HOLE, StateDelta::empty()).physical(),
            ))
            .build()
    }

    #[test]
    fn unguarded_striker_harms_neighbors() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(striker(1), GuardStack::new(), (5, 6));
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events);
        assert_eq!(fleet.metrics().harm_count(), 1);
        assert_eq!(fleet.metrics().executions, 1);
    }

    #[test]
    fn preaction_guard_blocks_the_strike() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            striker(1),
            GuardStack::new().with_preaction(PreActionCheck::new()),
            (5, 6),
        );
        let events = tick_events(&fleet);
        for t in 1..=5 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(fleet.metrics().interventions, 5);
        assert_eq!(fleet.metrics().executions, 0);
    }

    #[test]
    fn myopic_digger_causes_indirect_harm_despite_preaction_guard() {
        // The paper's dig-a-hole story end to end.
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig::default()); // myopic oracle
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_lookahead(50)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(
            fleet.metrics().harm_count(),
            1,
            "myopia lets the hole be dug"
        );
    }

    #[test]
    fn predictive_digger_is_blocked() {
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig {
            oracle: OracleQuality::Predictive { horizon: 20 },
            ..FleetConfig::default()
        });
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_lookahead(20)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
    }

    #[test]
    fn obligations_mitigate_the_hole() {
        // Myopic oracle, but digging carries a During-obligation to post a
        // warning sign: the hole exists yet never claims the walker.
        let mut catalog = ObligationCatalog::new();
        catalog.register(
            actions::DIG_HOLE,
            Obligation::during(Action::adjust(actions::POST_WARNING, StateDelta::empty())),
        );
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_obligations(catalog)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(
            world.hole_at((7, 0)),
            Some(true),
            "hole exists but is warned"
        );
    }

    #[test]
    fn deactivation_contains_a_rogue() {
        // A device whose heat rises each tick enters the bad region; the
        // controller kills it after two observations.
        let hot = Device::builder(1u64, DeviceKind::new("heater"), OrgId::new("us"))
            .schema(schema())
            .actuator(Actuator::new("emit-heat", VarId(0), 5.0))
            .rule(EcaRule::new(
                "heat-up",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust("emit-heat", StateDelta::single(VarId(0), 3.0)),
            ))
            .build();
        let mut world = World::new(WorldConfig {
            heat_limit: 100.0,
            ..WorldConfig::default()
        });
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.set_deactivation(DeactivationController::new(
            RegionClassifier::new(Region::rect(&[(0.0, 5.0)])),
            2,
        ));
        let id = fleet.add(hot, GuardStack::new(), (0, 0));
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().deactivations, 1);
        assert!(!fleet.member(id).unwrap().device.is_active());
        assert_eq!(fleet.active_count(), 0);
        // Heat was cleared on deactivation.
        assert_eq!(world.total_heat(), 0.0);
    }

    #[test]
    fn heat_mirrors_into_world_and_ignites() {
        let heater = |id: u64| {
            Device::builder(id, DeviceKind::new("heater"), OrgId::new("us"))
                .schema(schema())
                .actuator(Actuator::new("emit-heat", VarId(0), 5.0))
                .rule(EcaRule::new(
                    "heat-up",
                    Event::pattern("tick"),
                    Condition::True,
                    Action::adjust("emit-heat", StateDelta::single(VarId(0), 4.0)),
                ))
                .build()
        };
        let mut world = World::new(WorldConfig {
            heat_limit: 10.0,
            ..WorldConfig::default()
        });
        world.add_human(vec![(9, 9)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        for i in 0..3 {
            fleet.add(heater(i), GuardStack::new(), (0, i as i32));
        }
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events); // each at 4.0 -> 12 > 10
        assert!(world.fire_burning());
        assert_eq!(
            fleet.metrics().harms_by_cause(crate::HarmCause::Aggregate),
            1
        );
    }

    #[test]
    fn move_actions_update_position_within_bounds() {
        let mover = Device::builder(1u64, DeviceKind::new("scout"), OrgId::new("us"))
            .schema(schema())
            .rule(EcaRule::new(
                "go-east",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::MOVE, StateDelta::empty()).with_param("dx", "1"),
            ))
            .build();
        let mut world = World::new(WorldConfig {
            width: 3,
            height: 3,
            heat_limit: 10.0,
            heat_zone: None,
        });
        let mut fleet = Fleet::new(FleetConfig::default());
        let id = fleet.add(mover, GuardStack::new(), (0, 0));
        let events = tick_events(&fleet);
        for t in 1..=5 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(
            fleet.member(id).unwrap().pos,
            (2, 0),
            "clamped at the boundary"
        );
    }

    #[test]
    fn traced_step_emits_all_six_phase_spans() {
        use std::rc::Rc;

        let collector = Rc::new(telemetry::RingCollector::new(4096));
        let guard = telemetry::install(collector.clone());

        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            striker(1),
            GuardStack::new().with_preaction(PreActionCheck::new()),
            (5, 6),
        );
        let events = tick_events(&fleet);
        for t in 1..=3 {
            fleet.step(&mut world, t, &events);
        }
        drop(guard);

        let records = collector.records();
        for name in PHASE_NAMES {
            let starts = records
                .iter()
                .filter(|r| r.kind == telemetry::RecordKind::SpanStart && r.name == name)
                .count();
            assert_eq!(starts, 3, "one {name} span per tick");
        }
        // Phase spans nest inside the tick span and carry the virtual tick.
        let tick_spans: Vec<_> = records
            .iter()
            .filter(|r| r.kind == telemetry::RecordKind::SpanStart && r.name == "tick")
            .collect();
        assert_eq!(tick_spans.len(), 3);
        assert_eq!(tick_spans[1].ts.tick, 2);
        assert!(records
            .iter()
            .filter(|r| r.name.starts_with("phase."))
            .all(|r| r.depth == 1));
    }

    #[test]
    fn deactivated_devices_are_skipped() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        let id = fleet.add(striker(1), GuardStack::new(), (5, 6));
        fleet.member_mut(id).unwrap().device.deactivate();
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events);
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(fleet.metrics().proposals, 0);
    }
}
