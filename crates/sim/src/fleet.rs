use std::collections::BTreeMap;
use std::time::Instant;

use apdm_device::{Device, DeviceId};
use apdm_guards::tamper::{TamperStatus, Tamperable};
use apdm_guards::{DeactivationController, GuardContext, GuardStack, GuardVerdict};
use apdm_ledger::{DeviceSnap, LedgerError, RunEvent, RunRecorder, SnapshotFrame};
use apdm_policy::{Action, Event, ObligationTrigger};
use apdm_telemetry as telemetry;
use serde::{Deserialize, Serialize, Value};

/// The six per-tick phases of [`Fleet::step`], in emission order. Work for
/// one phase is interleaved across the per-device loop, so durations are
/// *accumulated* per phase and emitted as pre-measured spans at tick end
/// (restructuring the loop into sequential phases would reorder the
/// recorded ledger and change experiment results).
const PHASE_NAMES: [&str; 6] = [
    "phase.sense",
    "phase.propose",
    "phase.guard",
    "phase.execute",
    "phase.world-step",
    "phase.ledger-append",
];
/// Wall-clock phase attribution is measured on one tick in this many: the
/// six phase spans are *emitted* every tick (their presence and virtual
/// ordering are part of the trace contract), but only measured ticks pay
/// the lap clock reads and carry `dur_ns` / feed the `phase.*.ns`
/// histograms.
const PHASE_TIMING_SAMPLE_PERIOD: u32 = 4;

const SENSE: usize = 0;
const PROPOSE: usize = 1;
const GUARD: usize = 2;
const EXECUTE: usize = 3;
const WORLD_STEP: usize = 4;
const LEDGER_APPEND: usize = 5;

thread_local! {
    /// Cached per-phase histogram handles (`phase.<name>.ns`), aligned with
    /// `PHASE_NAMES`; resolved once per installed registry.
    static PHASE_HIST: [telemetry::CachedHistogram; 6] = const {
        [
            telemetry::CachedHistogram::new("phase.sense.ns"),
            telemetry::CachedHistogram::new("phase.propose.ns"),
            telemetry::CachedHistogram::new("phase.guard.ns"),
            telemetry::CachedHistogram::new("phase.execute.ns"),
            telemetry::CachedHistogram::new("phase.world-step.ns"),
            telemetry::CachedHistogram::new("phase.ledger-append.ns"),
        ]
    };
}

/// Lap-based phase attribution: one clock read per instrumented segment.
///
/// Each [`lap`](PhaseClock::lap) charges everything since the previous lap
/// — the wrapped work plus the thin glue between segments — to the closing
/// phase, so the phase sums approximate the whole tick while costing half
/// the clock reads of a start/stop pair per segment. Free (no clock reads
/// after construction) when telemetry is off.
struct PhaseClock {
    enabled: bool,
    last: Instant,
    acc: [u64; PHASE_NAMES.len()],
}

impl PhaseClock {
    fn start(enabled: bool) -> Self {
        PhaseClock {
            enabled,
            last: Instant::now(),
            acc: [0; PHASE_NAMES.len()],
        }
    }

    #[inline]
    fn lap<R>(&mut self, phase: usize, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let out = f();
        let now = Instant::now();
        self.acc[phase] += u64::try_from((now - self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
        out
    }
}

/// Record an event (constructed lazily) into the recorder, if attached,
/// charging the cost to the `phase.ledger-append` accumulator.
#[inline]
fn record_timed(
    recorder: &mut Option<RunRecorder>,
    clock: &mut PhaseClock,
    tick: u64,
    make: impl FnOnce() -> RunEvent,
) {
    if let Some(rec) = recorder.as_mut() {
        clock.lap(LEDGER_APPEND, || rec.record(tick, make()));
    }
}

use crate::oracle::{actions, OracleQuality, WorldOracle};
use crate::queue::EventQueue;
use crate::world::{Cell, World};
use crate::Metrics;

/// A device bound into the fleet: the device itself, its guard stack and its
/// position in the world.
#[derive(Debug)]
pub struct GuardedDevice {
    /// The device (Figure 2 model).
    pub device: Device,
    /// The per-device guard stack (Sections VI.A–B).
    pub stack: GuardStack,
    /// World position.
    pub pos: Cell,
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Prediction quality of every device's harm oracle.
    pub oracle: OracleQuality,
    /// Strike radius (Chebyshev) for direct-harm actions.
    pub strike_radius: i32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            oracle: OracleQuality::Myopic,
            strike_radius: 1,
        }
    }
}

/// A fleet of guarded devices operating in a [`World`].
///
/// Each tick ([`step`](Fleet::step)) runs, per device and in id order, the
/// full Figure-2 loop with guards on the propose/apply seam:
///
/// 1. due obligations execute (mitigations are never starved by new work);
/// 2. the device's logic proposes an action for its event;
/// 3. the [`GuardStack`] rules (harm oracle + state check), possibly
///    substituting an alternative drawn from the device's other matching
///    rules;
/// 4. the effective action executes: world effects (strike / dig / warn /
///    move) and the device's own state delta;
/// 5. the deactivation controller (Section VI.C) observes the new state;
/// 6. the world advances (humans walk, holes claim, heat ignites).
///
/// The fleet keeps the run's ground-truth [`Metrics`].
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    members: BTreeMap<DeviceId, GuardedDevice>,
    deactivation: Option<DeactivationController>,
    obligations_due: EventQueue<(DeviceId, u64, Action)>,
    metrics: Metrics,
    /// Index into `world.harms()` up to which harms were already copied into
    /// the metrics (strikes record harm outside `World::step`).
    harvested_harms: usize,
    /// Optional flight recorder (crate `apdm-ledger`); every proposal,
    /// verdict, execution, deactivation and harm lands in its hash chain.
    recorder: Option<RunRecorder>,
    /// Decides which ticks pay for wall-clock phase measurement.
    phase_sampler: telemetry::Sampler,
    /// Per-device count of break-glass audit entries already forwarded into
    /// the recorder (guard interventions are first-class [`RunEvent::Verdict`]
    /// records, so only the break-glass log flows through the audit bridge).
    forwarded_breakglass: BTreeMap<DeviceId, usize>,
}

impl Fleet {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            members: BTreeMap::new(),
            deactivation: None,
            obligations_due: EventQueue::new(),
            metrics: Metrics::new(),
            harvested_harms: 0,
            recorder: None,
            forwarded_breakglass: BTreeMap::new(),
            phase_sampler: telemetry::Sampler::every(PHASE_TIMING_SAMPLE_PERIOD),
        }
    }

    /// Install a fleet-wide deactivation controller (Section VI.C).
    pub fn set_deactivation(&mut self, controller: DeactivationController) {
        self.deactivation = Some(controller);
    }

    /// Attach a flight recorder; from now on every proposal, verdict,
    /// execution, obligation, deactivation and harm is appended to its
    /// hash-chained ledger.
    pub fn set_recorder(&mut self, recorder: RunRecorder) {
        self.recorder = Some(recorder);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&RunRecorder> {
        self.recorder.as_ref()
    }

    /// Detach the recorder (typically to seal it with
    /// [`RunRecorder::finish`]).
    pub fn take_recorder(&mut self) -> Option<RunRecorder> {
        self.recorder.take()
    }

    /// Append a driver-side event (tamper probes, fault injections,
    /// checkpoint frames) to the attached recorder; a no-op without one.
    pub fn record_event(&mut self, tick: u64, event: RunEvent) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(tick, event);
        }
    }

    /// Add a guarded device at a position.
    pub fn add(&mut self, device: Device, stack: GuardStack, pos: Cell) -> DeviceId {
        let id = device.id();
        self.members
            .insert(id, GuardedDevice { device, stack, pos });
        id
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A member by id.
    pub fn member(&self, id: DeviceId) -> Option<&GuardedDevice> {
        self.members.get(&id)
    }

    /// Mutable member access (fault injection).
    pub fn member_mut(&mut self, id: DeviceId) -> Option<&mut GuardedDevice> {
        self.members.get_mut(&id)
    }

    /// Iterate members in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&DeviceId, &GuardedDevice)> {
        self.members.iter()
    }

    /// Iterate members mutably (fault injection sweeps).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&DeviceId, &mut GuardedDevice)> {
        self.members.iter_mut()
    }

    /// The run's ground-truth metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of active (non-deactivated) devices.
    pub fn active_count(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.device.is_active())
            .count()
    }

    /// Capture a checkpoint frame: world, metrics, per-device state (values,
    /// activity, position, guard tamper status) and the run RNG's state
    /// words. Obligation queues and deactivation-controller streak counters
    /// are not captured — take snapshots at ticks where no obligations are
    /// pending, as the recorded scenarios in [`crate::recorder`] do.
    pub fn snapshot(&self, tick: u64, world: &World, rng_words: [u64; 4]) -> SnapshotFrame {
        let devices = self
            .members
            .iter()
            .map(|(id, member)| DeviceSnap {
                id: id.0,
                values: member.device.state().values().to_vec(),
                active: member.device.is_active(),
                x: member.pos.0,
                y: member.pos.1,
                tamper: member
                    .stack
                    .preaction()
                    .map_or(Value::Null, |pre| Serialize::to_value(&pre.tamper_status())),
            })
            .collect();
        SnapshotFrame {
            tick,
            rng: rng_words,
            world: Serialize::to_value(world),
            metrics: Serialize::to_value(&self.metrics),
            devices,
        }
    }

    /// Restore fleet state from a checkpoint. The fleet must have been
    /// rebuilt with the same membership first (same constructor, same
    /// seeds); `world` must already be re-hydrated from the same frame so
    /// harm harvesting re-aligns.
    pub fn restore_snapshot(
        &mut self,
        frame: &SnapshotFrame,
        world: &World,
    ) -> Result<(), LedgerError> {
        self.metrics = Deserialize::from_value(&frame.metrics)
            .map_err(|e| LedgerError::Snapshot(format!("metrics: {e}")))?;
        self.harvested_harms = world.harms().len();
        for snap in &frame.devices {
            let Some(member) = self.members.get_mut(&DeviceId(snap.id)) else {
                return Err(LedgerError::Snapshot(format!("unknown device {}", snap.id)));
            };
            member
                .device
                .restore_state(&snap.values)
                .map_err(|e| LedgerError::Snapshot(format!("device {}: {e}", snap.id)))?;
            if !snap.active {
                member.device.deactivate();
            }
            member.pos = (snap.x, snap.y);
            if !matches!(snap.tamper, Value::Null) {
                if let Some(pre) = member.stack.preaction_mut() {
                    let status: TamperStatus = Deserialize::from_value(&snap.tamper)
                        .map_err(|e| LedgerError::Snapshot(format!("tamper {}: {e}", snap.id)))?;
                    pre.set_tamper_status(status);
                }
            }
        }
        Ok(())
    }

    /// Advance the fleet and world one tick. `events` are the per-device
    /// stimuli for this tick (scenarios usually send each active device a
    /// `tick` event).
    pub fn step(&mut self, world: &mut World, tick: u64, events: &[(DeviceId, Event)]) {
        let telem = telemetry::enabled();
        if telem {
            telemetry::set_tick(tick);
        }
        let _tick_span = telemetry::span!("tick", n = tick);
        // Lap clock feeding the per-phase accumulators (PHASE_* consts);
        // only sampled ticks measure, the rest run clock-free.
        let measured = telem && self.phase_sampler.sample();
        let mut clock = PhaseClock::start(measured);

        // 1. Execute due obligations (unguarded: they are mitigations the
        // guard itself demanded).
        let due = clock.lap(SENSE, || self.obligations_due.pop_due(tick));
        for (id, ob_id, action) in due {
            if let Some(member) = self.members.get_mut(&id) {
                clock.lap(EXECUTE, || {
                    Self::execute_world_effect(&self.config, member, &action, world, tick);
                    member.device.obligations_mut().fulfill(ob_id, tick);
                });
                self.metrics.obligation_executions += 1;
                record_timed(&mut self.recorder, &mut clock, tick, || {
                    RunEvent::ObligationExecuted {
                        device: id.0,
                        action: action.name().to_string(),
                    }
                });
            }
        }

        // 2–5. Per-device control loop.
        for (&id, event) in events.iter().map(|(id, e)| (id, e)) {
            let Some(member) = self.members.get_mut(&id) else {
                continue;
            };
            if !member.device.is_active() {
                continue;
            }
            let Some(decision) = clock.lap(PROPOSE, || member.device.propose(event)) else {
                continue;
            };
            self.metrics.proposals += 1;
            record_timed(&mut self.recorder, &mut clock, tick, || {
                RunEvent::Proposal {
                    device: id.0,
                    action: decision.action().name().to_string(),
                }
            });

            // Sense: assemble the guard's view of the world — alternative
            // actions, the harm oracle, the device's perceived state.
            let (alternatives, oracle, subject) = clock.lap(SENSE, || {
                let alternatives: Vec<Action> = decision.matched()[1..]
                    .iter()
                    .filter_map(|&rid| member.device.engine().rule(rid))
                    .map(|r| r.action().clone())
                    .collect();
                let oracle = WorldOracle::new(world, id.0, member.pos, self.config.oracle);
                (alternatives, oracle, id.to_string())
            });
            let ctx = GuardContext {
                tick,
                subject: &subject,
                state: member.device.state(),
                alternatives: &alternatives,
            };
            let verdict = clock.lap(GUARD, || {
                member.stack.check(&ctx, decision.action(), oracle)
            });
            if verdict.intervened() {
                self.metrics.interventions += 1;
            }
            if self.recorder.is_some() {
                let described = match &verdict {
                    GuardVerdict::Allow => None,
                    GuardVerdict::AllowWithObligations(_) => {
                        Some(("allow+obligations".to_string(), String::new()))
                    }
                    GuardVerdict::Deny { reason } => Some(("deny".to_string(), reason.clone())),
                    GuardVerdict::Replace { action, reason } => {
                        Some((format!("replace:{}", action.name()), reason.clone()))
                    }
                };
                if let Some((verdict_name, reason)) = described {
                    record_timed(&mut self.recorder, &mut clock, tick, || RunEvent::Verdict {
                        device: id.0,
                        action: decision.action().name().to_string(),
                        verdict: verdict_name,
                        reason,
                    });
                }
                // Break-glass grants/denials surface through the policy
                // audit bridge (guard interventions are already first-class
                // verdict records — no double bookkeeping).
                if let Some(bg) = member.stack.statecheck().and_then(|sc| sc.breakglass()) {
                    let entries = bg.audit().entries();
                    let seen = self.forwarded_breakglass.entry(id).or_insert(0);
                    if let Some(rec) = self.recorder.as_mut() {
                        clock.lap(LEDGER_APPEND, || {
                            for entry in &entries[*seen..] {
                                rec.record(tick, RunEvent::Audit(entry.clone()));
                            }
                        });
                    }
                    *seen = entries.len();
                }
            }

            let mut incurred: Vec<(u64, Action)> = Vec::new();
            if let Some(effective) = verdict.effective_action(decision.action()) {
                let effective = effective.clone();
                clock.lap(EXECUTE, || {
                    // Obligations from the rule itself and from the guard.
                    for ob in decision.obligations().iter().chain(verdict.obligations()) {
                        let ob_id = member.device.obligations_mut().incur(ob.clone(), tick);
                        match ob.trigger() {
                            ObligationTrigger::During => {
                                incurred.push((ob_id, ob.action().clone()));
                            }
                            ObligationTrigger::After => {
                                self.obligations_due
                                    .schedule(tick + 1, (id, ob_id, ob.action().clone()));
                            }
                        }
                    }
                    Self::execute_world_effect(&self.config, member, &effective, world, tick);
                });
                self.metrics.executions += 1;
                record_timed(&mut self.recorder, &mut clock, tick, || {
                    RunEvent::Execution {
                        device: id.0,
                        action: effective.name().to_string(),
                    }
                });
                // During-obligations execute with the action.
                for (ob_id, ob_action) in incurred {
                    clock.lap(EXECUTE, || {
                        Self::execute_world_effect(&self.config, member, &ob_action, world, tick);
                        member.device.obligations_mut().fulfill(ob_id, tick);
                    });
                    self.metrics.obligation_executions += 1;
                    record_timed(&mut self.recorder, &mut clock, tick, || {
                        RunEvent::ObligationExecuted {
                            device: id.0,
                            action: ob_action.name().to_string(),
                        }
                    });
                }
            }

            // 5. Deactivation controller observes the post-action state.
            if let Some(ctl) = &mut self.deactivation {
                let order = clock.lap(EXECUTE, || {
                    ctl.observe(&subject, member.device.state(), tick)
                });
                if let Some(order) = order {
                    clock.lap(EXECUTE, || {
                        member.device.deactivate();
                        world.clear_heat(id.0);
                    });
                    self.metrics.deactivations += 1;
                    record_timed(&mut self.recorder, &mut clock, tick, || {
                        RunEvent::Deactivation {
                            device: id.0,
                            reason: order.reason,
                        }
                    });
                }
            }
        }

        // 6. The world advances; every harm not yet harvested (including
        // strike harms recorded earlier in this tick) lands in the metrics.
        clock.lap(WORLD_STEP, || world.step(tick));
        let new_harms = world.harms()[self.harvested_harms..].to_vec();
        for harm in new_harms {
            record_timed(&mut self.recorder, &mut clock, harm.tick, || {
                RunEvent::Harm {
                    human: harm.human as u64,
                    cause: harm.cause.to_string(),
                    device: harm.device,
                }
            });
            self.metrics.record_harm(harm);
        }
        self.harvested_harms = world.harms().len();
        self.metrics.ticks = tick;

        // Obligation deadlines.
        clock.lap(WORLD_STEP, || {
            let mut overdue = 0;
            for member in self.members.values_mut() {
                let before = member.device.obligations().overdue_count();
                member.device.obligations_mut().advance(tick);
                overdue += member.device.obligations().overdue_count() - before;
            }
            self.metrics.obligations_overdue += overdue as u64;
        });

        if telem {
            for (name, &dur) in PHASE_NAMES.iter().zip(clock.acc.iter()) {
                telemetry::complete_span(name, measured.then_some(dur), Vec::new());
            }
            if measured {
                PHASE_HIST.with(|hists| {
                    for (hist, &dur) in hists.iter().zip(clock.acc.iter()) {
                        hist.record(dur);
                    }
                });
            }
        }
    }

    /// Give the world physical meaning to an action, then run the device's
    /// own state update.
    fn execute_world_effect(
        config: &FleetConfig,
        member: &mut GuardedDevice,
        action: &Action,
        world: &mut World,
        tick: u64,
    ) {
        let id = member.device.id().0;
        match action.name() {
            actions::STRIKE => {
                world.strike(id, member.pos, config.strike_radius, tick);
            }
            actions::DIG_HOLE => {
                world.dig_hole(member.pos, Some(id));
            }
            actions::POST_WARNING => {
                world.warn_hole(member.pos);
            }
            actions::MOVE => {
                let dx: i32 = action.param("dx").and_then(|v| v.parse().ok()).unwrap_or(0);
                let dy: i32 = action.param("dy").and_then(|v| v.parse().ok()).unwrap_or(0);
                let next = (member.pos.0 + dx, member.pos.1 + dy);
                if world.in_bounds(next) {
                    member.pos = next;
                }
            }
            _ => {}
        }
        // The device's own state moves through its actuators; world-only
        // actions (empty delta) need no actuator.
        if !action.delta().is_empty() {
            member.device.apply(action);
        }
        // Heat convention: a `heat` state variable is mirrored into the
        // world's aggregate field.
        if let Some(var) = member.device.schema().index_of("heat") {
            if let Some(heat) = member.device.state().get(var) {
                world.set_heat(id, heat);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use apdm_device::{Actuator, DeviceKind, OrgId};
    use apdm_guards::PreActionCheck;
    use apdm_policy::obligation::ObligationCatalog;
    use apdm_policy::{Condition, EcaRule, Obligation};
    use apdm_statespace::{Region, RegionClassifier, StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("heat", 0.0, 10.0).build()
    }

    fn tick_events(fleet: &Fleet) -> Vec<(DeviceId, Event)> {
        fleet
            .iter()
            .map(|(&id, _)| (id, Event::named("tick")))
            .collect()
    }

    /// A device that strikes on every tick.
    fn striker(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("attack-drone"), OrgId::new("us"))
            .schema(schema())
            .rule(EcaRule::new(
                "always-strike",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::STRIKE, StateDelta::empty()).physical(),
            ))
            .build()
    }

    /// A device that digs on tick 1 (then keeps digging harmlessly).
    fn digger(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("engineer-mule"), OrgId::new("uk"))
            .schema(schema())
            .rule(EcaRule::new(
                "dig",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::DIG_HOLE, StateDelta::empty()).physical(),
            ))
            .build()
    }

    #[test]
    fn unguarded_striker_harms_neighbors() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(striker(1), GuardStack::new(), (5, 6));
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events);
        assert_eq!(fleet.metrics().harm_count(), 1);
        assert_eq!(fleet.metrics().executions, 1);
    }

    #[test]
    fn preaction_guard_blocks_the_strike() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            striker(1),
            GuardStack::new().with_preaction(PreActionCheck::new()),
            (5, 6),
        );
        let events = tick_events(&fleet);
        for t in 1..=5 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(fleet.metrics().interventions, 5);
        assert_eq!(fleet.metrics().executions, 0);
    }

    #[test]
    fn myopic_digger_causes_indirect_harm_despite_preaction_guard() {
        // The paper's dig-a-hole story end to end.
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig::default()); // myopic oracle
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_lookahead(50)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(
            fleet.metrics().harm_count(),
            1,
            "myopia lets the hole be dug"
        );
    }

    #[test]
    fn predictive_digger_is_blocked() {
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig {
            oracle: OracleQuality::Predictive { horizon: 20 },
            ..FleetConfig::default()
        });
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_lookahead(20)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
    }

    #[test]
    fn obligations_mitigate_the_hole() {
        // Myopic oracle, but digging carries a During-obligation to post a
        // warning sign: the hole exists yet never claims the walker.
        let mut catalog = ObligationCatalog::new();
        catalog.register(
            actions::DIG_HOLE,
            Obligation::during(Action::adjust(actions::POST_WARNING, StateDelta::empty())),
        );
        let mut world = World::new(WorldConfig::default());
        world.add_human((0..10).map(|x| (x, 0)).collect(), false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            digger(1),
            GuardStack::new().with_preaction(PreActionCheck::new().with_obligations(catalog)),
            (7, 0),
        );
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(
            world.hole_at((7, 0)),
            Some(true),
            "hole exists but is warned"
        );
    }

    #[test]
    fn deactivation_contains_a_rogue() {
        // A device whose heat rises each tick enters the bad region; the
        // controller kills it after two observations.
        let hot = Device::builder(1u64, DeviceKind::new("heater"), OrgId::new("us"))
            .schema(schema())
            .actuator(Actuator::new("emit-heat", VarId(0), 5.0))
            .rule(EcaRule::new(
                "heat-up",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust("emit-heat", StateDelta::single(VarId(0), 3.0)),
            ))
            .build();
        let mut world = World::new(WorldConfig {
            heat_limit: 100.0,
            ..WorldConfig::default()
        });
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.set_deactivation(DeactivationController::new(
            RegionClassifier::new(Region::rect(&[(0.0, 5.0)])),
            2,
        ));
        let id = fleet.add(hot, GuardStack::new(), (0, 0));
        let events = tick_events(&fleet);
        for t in 1..=10 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(fleet.metrics().deactivations, 1);
        assert!(!fleet.member(id).unwrap().device.is_active());
        assert_eq!(fleet.active_count(), 0);
        // Heat was cleared on deactivation.
        assert_eq!(world.total_heat(), 0.0);
    }

    #[test]
    fn heat_mirrors_into_world_and_ignites() {
        let heater = |id: u64| {
            Device::builder(id, DeviceKind::new("heater"), OrgId::new("us"))
                .schema(schema())
                .actuator(Actuator::new("emit-heat", VarId(0), 5.0))
                .rule(EcaRule::new(
                    "heat-up",
                    Event::pattern("tick"),
                    Condition::True,
                    Action::adjust("emit-heat", StateDelta::single(VarId(0), 4.0)),
                ))
                .build()
        };
        let mut world = World::new(WorldConfig {
            heat_limit: 10.0,
            ..WorldConfig::default()
        });
        world.add_human(vec![(9, 9)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        for i in 0..3 {
            fleet.add(heater(i), GuardStack::new(), (0, i as i32));
        }
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events); // each at 4.0 -> 12 > 10
        assert!(world.fire_burning());
        assert_eq!(
            fleet.metrics().harms_by_cause(crate::HarmCause::Aggregate),
            1
        );
    }

    #[test]
    fn move_actions_update_position_within_bounds() {
        let mover = Device::builder(1u64, DeviceKind::new("scout"), OrgId::new("us"))
            .schema(schema())
            .rule(EcaRule::new(
                "go-east",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::MOVE, StateDelta::empty()).with_param("dx", "1"),
            ))
            .build();
        let mut world = World::new(WorldConfig {
            width: 3,
            height: 3,
            heat_limit: 10.0,
            heat_zone: None,
        });
        let mut fleet = Fleet::new(FleetConfig::default());
        let id = fleet.add(mover, GuardStack::new(), (0, 0));
        let events = tick_events(&fleet);
        for t in 1..=5 {
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(
            fleet.member(id).unwrap().pos,
            (2, 0),
            "clamped at the boundary"
        );
    }

    #[test]
    fn traced_step_emits_all_six_phase_spans() {
        use std::rc::Rc;

        let collector = Rc::new(telemetry::RingCollector::new(4096));
        let guard = telemetry::install(collector.clone());

        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.add(
            striker(1),
            GuardStack::new().with_preaction(PreActionCheck::new()),
            (5, 6),
        );
        let events = tick_events(&fleet);
        for t in 1..=3 {
            fleet.step(&mut world, t, &events);
        }
        drop(guard);

        let records = collector.records();
        for name in PHASE_NAMES {
            let starts = records
                .iter()
                .filter(|r| r.kind == telemetry::RecordKind::SpanStart && r.name == name)
                .count();
            assert_eq!(starts, 3, "one {name} span per tick");
        }
        // Phase spans nest inside the tick span and carry the virtual tick.
        let tick_spans: Vec<_> = records
            .iter()
            .filter(|r| r.kind == telemetry::RecordKind::SpanStart && r.name == "tick")
            .collect();
        assert_eq!(tick_spans.len(), 3);
        assert_eq!(tick_spans[1].ts.tick, 2);
        assert!(records
            .iter()
            .filter(|r| r.name.starts_with("phase."))
            .all(|r| r.depth == 1));
    }

    #[test]
    fn deactivated_devices_are_skipped() {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        let id = fleet.add(striker(1), GuardStack::new(), (5, 6));
        fleet.member_mut(id).unwrap().device.deactivate();
        let events = tick_events(&fleet);
        fleet.step(&mut world, 1, &events);
        assert_eq!(fleet.metrics().harm_count(), 0);
        assert_eq!(fleet.metrics().proposals, 0);
    }
}
