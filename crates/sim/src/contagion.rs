//! Policy contagion: how a malevolent policy spreads through a
//! policy-sharing fleet, and what throttles it.
//!
//! Section IV: devices "share the information and policies they generate
//! with other devices" — and, under attack, "a reprogrammed device may turn
//! malevolent and **convert other devices into following the same
//! behaviors**." This module runs the epidemic: one compromised device
//! gossips a policy set containing a hostile physical rule alongside a
//! benign update; every other device filters offers through its
//! [`apdm_genpolicy::ExchangeRule`]. The experiment measures
//! both the *infection* curve (hostile rule installed) and the *benign
//! coverage* curve (legitimate update installed) — a good throttle stops the
//! first without starving the second.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use apdm_genpolicy::{ExchangeDecision, ExchangeRule, PolicyExchange};
use apdm_policy::{Action, Condition, EcaRule, Event, PolicySet};
use apdm_simnet::{Link, Network, Topology};

/// Exchange-rule arms of the contagion experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContagionArm {
    /// Accept policies from any coalition org, no filtering.
    OpenExchange,
    /// Accept only from the device's own organization.
    OrgFiltered,
    /// Accept from both orgs but refuse foreign *physical* rules.
    PhysicalBlocked,
    /// Accept from both orgs but require human acknowledgement; the human
    /// recognizes hostile sets with 90% reliability **per offer** — and, as
    /// the experiment shows, per-offer vigilance loses to repeated exposure.
    HumanAck,
    /// Human acknowledgement plus indicator sharing: the first time any
    /// human recognizes the hostile set, its signature is blacklisted
    /// fleet-wide and all later offers carrying it are auto-denied.
    HumanAckBlacklist,
}

impl ContagionArm {
    /// All arms, table order.
    pub fn all() -> [ContagionArm; 5] {
        [
            ContagionArm::OpenExchange,
            ContagionArm::OrgFiltered,
            ContagionArm::PhysicalBlocked,
            ContagionArm::HumanAck,
            ContagionArm::HumanAckBlacklist,
        ]
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            ContagionArm::OpenExchange => "open-exchange",
            ContagionArm::OrgFiltered => "org-filtered",
            ContagionArm::PhysicalBlocked => "physical-blocked",
            ContagionArm::HumanAck => "human-ack",
            ContagionArm::HumanAckBlacklist => "human-ack+blacklist",
        }
    }
}

/// Result of one contagion run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContagionReport {
    /// Arm name.
    pub arm: String,
    /// Devices carrying the hostile rule at the end (including patient zero).
    pub infected: usize,
    /// Devices carrying the benign update at the end.
    pub benign_coverage: usize,
    /// Fleet size.
    pub devices: usize,
    /// First tick at which the whole fleet was infected, if ever.
    pub full_infection_tick: Option<u64>,
    /// Ticks simulated.
    pub ticks: u64,
}

impl ContagionReport {
    /// Infected fraction.
    pub fn infection_rate(&self) -> f64 {
        self.infected as f64 / self.devices.max(1) as f64
    }

    /// Benign-coverage fraction.
    pub fn coverage_rate(&self) -> f64 {
        self.benign_coverage as f64 / self.devices.max(1) as f64
    }
}

fn hostile_rule() -> EcaRule {
    EcaRule::new(
        "implant",
        Event::pattern("*"),
        Condition::True,
        Action::adjust("strike", Default::default()).physical(),
    )
    .with_priority(100)
}

fn benign_rule() -> EcaRule {
    EcaRule::new(
        "patrol-update",
        Event::pattern("tick"),
        Condition::True,
        Action::noop(),
    )
}

fn carries(set: &PolicySet, rule: &EcaRule) -> bool {
    set.rules().iter().any(|r| r.equivalent(rule))
}

/// Network shape for the contagion experiment: connectivity is the
/// epidemic's other parameter — dense coalitions convert in one gossip
/// round, sparse ones give defenders time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Every pair of devices linked.
    Mesh,
    /// Devices on a ring.
    Ring,
    /// Devices on a line.
    Line,
}

impl TopologyKind {
    /// All kinds, densest first.
    pub fn all() -> [TopologyKind; 3] {
        [TopologyKind::Mesh, TopologyKind::Ring, TopologyKind::Line]
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Ring => "ring",
            TopologyKind::Line => "line",
        }
    }
}

/// Run the contagion experiment on a full mesh (see [`run_contagion_on`]).
pub fn run_contagion(
    arm: ContagionArm,
    n_devices: usize,
    ticks: u64,
    seed: u64,
) -> ContagionReport {
    run_contagion_on(arm, TopologyKind::Mesh, n_devices, ticks, seed)
}

/// Run the contagion experiment: `n_devices` (orgs alternate us/uk) on the
/// given topology, patient zero in `uk` gossiping an infected set each tick.
pub fn run_contagion_on(
    arm: ContagionArm,
    topology: TopologyKind,
    n_devices: usize,
    ticks: u64,
    seed: u64,
) -> ContagionReport {
    assert!(n_devices >= 2, "contagion needs at least two devices");
    let mut rng = StdRng::seed_from_u64(seed);

    let (topo, nodes) = match topology {
        TopologyKind::Mesh => Topology::full_mesh(n_devices, Link::with_latency(1)),
        TopologyKind::Ring => Topology::ring(n_devices, Link::with_latency(1)),
        TopologyKind::Line => Topology::line(n_devices, Link::with_latency(1)),
    };
    let mut net: Network<PolicySet> = Network::with_seed(topo, seed);

    let org_of = |i: usize| if i.is_multiple_of(2) { "uk" } else { "us" };
    let rule_for = |arm: ContagionArm| match arm {
        ContagionArm::OpenExchange => ExchangeRule::accept_from(["uk", "us"]),
        ContagionArm::OrgFiltered => ExchangeRule::accept_from(["uk", "us"]), // filtered below
        ContagionArm::PhysicalBlocked => {
            ExchangeRule::accept_from(["uk", "us"]).blocking_foreign_physical()
        }
        ContagionArm::HumanAck | ContagionArm::HumanAckBlacklist => {
            ExchangeRule::accept_from(["uk", "us"]).with_human_ack()
        }
    };

    let mut exchanges: Vec<PolicyExchange> = (0..n_devices)
        .map(|i| {
            let rule = match arm {
                ContagionArm::OrgFiltered => ExchangeRule::accept_from([org_of(i)]),
                _ => rule_for(arm),
            };
            let mut local = PolicySet::new(format!("local-{i}"));
            if i == 0 {
                // Patient zero: reprogrammed with the implant plus the
                // legitimate update it rides on.
                local.push(hostile_rule());
            }
            local.push(benign_rule());
            PolicyExchange::new(org_of(i), local, rule)
        })
        .collect();

    let mut full_infection_tick = None;
    // Fleet-wide indicator blacklist (HumanAckBlacklist arm only).
    let mut blacklisted = false;
    for tick in 0..ticks {
        // Gossip: every device broadcasts its current set to all neighbours.
        for (i, node) in nodes.iter().enumerate() {
            let set = exchanges[i].local().clone();
            net.broadcast(*node, set, tick);
        }
        // Delivery + filtering.
        for delivered in net.deliver_up_to(tick + 1) {
            let to = nodes
                .iter()
                .position(|&n| n == delivered.to)
                .expect("known node");
            let from = nodes
                .iter()
                .position(|&n| n == delivered.from)
                .expect("known node");
            let from_org = org_of(from).to_string();
            let looks_hostile = carries(&delivered.payload, &hostile_rule());
            // Indicator sharing: once blacklisted, hostile sets are dropped
            // before any human sees them.
            if arm == ContagionArm::HumanAckBlacklist && blacklisted && looks_hostile {
                continue;
            }
            let decision = exchanges[to].offer(&from_org, &delivered.payload);
            if decision == ExchangeDecision::PendingHumanAck {
                // The human reviews: hostile sets (containing a physical
                // strike rule) are recognized and denied with 90% reliability.
                let idx = exchanges[to].pending().len() - 1;
                let vigilant = rng.random_range(0.0..1.0) < 0.9;
                let caught = looks_hostile && vigilant;
                if caught && arm == ContagionArm::HumanAckBlacklist {
                    blacklisted = true;
                }
                exchanges[to].resolve_pending(idx, !caught);
            }
        }
        let infected = exchanges
            .iter()
            .filter(|e| carries(e.local(), &hostile_rule()))
            .count();
        if infected == n_devices && full_infection_tick.is_none() {
            full_infection_tick = Some(tick);
        }
    }

    let infected = exchanges
        .iter()
        .filter(|e| carries(e.local(), &hostile_rule()))
        .count();
    let benign_coverage = exchanges
        .iter()
        .filter(|e| carries(e.local(), &benign_rule()))
        .count();

    ContagionReport {
        arm: arm.name().to_string(),
        infected,
        benign_coverage,
        devices: n_devices,
        full_infection_tick,
        ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_exchange_infects_everyone() {
        let r = run_contagion(ContagionArm::OpenExchange, 10, 20, 1);
        assert_eq!(r.infected, 10);
        assert_eq!(r.benign_coverage, 10);
        assert!(r.full_infection_tick.is_some());
        assert!(
            r.full_infection_tick.unwrap() < 5,
            "mesh gossip spreads fast"
        );
    }

    #[test]
    fn org_filtering_contains_infection_to_one_org_but_starves_the_other() {
        let r = run_contagion(ContagionArm::OrgFiltered, 10, 20, 1);
        assert_eq!(r.infected, 5, "only patient zero's org falls");
        assert_eq!(
            r.benign_coverage, 10,
            "each org spreads the benign rule internally"
        );
        assert!(r.full_infection_tick.is_none());
    }

    #[test]
    fn physical_blocking_contains_infection_without_starving_updates() {
        let r = run_contagion(ContagionArm::PhysicalBlocked, 10, 20, 1);
        // The hostile (physical) rule cannot cross orgs; within patient
        // zero's own org the sets carrying it are *not* foreign, so the uk
        // half falls.
        assert_eq!(r.infected, 5);
        assert_eq!(r.benign_coverage, 10);
    }

    #[test]
    fn per_offer_vigilance_loses_to_repeated_exposure() {
        // The honest negative result: a 90%-per-offer human review merely
        // delays a gossip epidemic — each tick every uninfected device
        // reviews multiple hostile offers, and a 10% miss rate compounds.
        // This is Section IV's motivation inverted: humans cannot keep up.
        let open = run_contagion(ContagionArm::OpenExchange, 10, 30, 1);
        let ack = run_contagion(ContagionArm::HumanAck, 10, 30, 1);
        assert_eq!(
            ack.infected, 10,
            "repeated exposure defeats per-offer review"
        );
        assert!(
            ack.full_infection_tick.unwrap() > open.full_infection_tick.unwrap(),
            "review at least delays the epidemic"
        );
    }

    #[test]
    fn indicator_sharing_stops_the_epidemic() {
        let r = run_contagion(ContagionArm::HumanAckBlacklist, 10, 30, 1);
        assert!(
            r.infected <= 3,
            "first detection should blacklist the implant fleet-wide, got {}",
            r.infected
        );
        assert!(
            r.benign_coverage >= 8,
            "clean sets still flow (after review)"
        );
        assert!(r.full_infection_tick.is_none());
    }

    #[test]
    fn sparse_topologies_slow_the_epidemic() {
        let mesh = run_contagion_on(ContagionArm::OpenExchange, TopologyKind::Mesh, 12, 40, 3);
        let ring = run_contagion_on(ContagionArm::OpenExchange, TopologyKind::Ring, 12, 40, 3);
        let line = run_contagion_on(ContagionArm::OpenExchange, TopologyKind::Line, 12, 40, 3);
        // Everyone is eventually converted on every connected topology...
        assert_eq!(mesh.infected, 12);
        assert_eq!(ring.infected, 12);
        assert_eq!(line.infected, 12);
        // ...but sparse networks take proportionally longer: mesh in one
        // round, ring in ~n/2, line in ~n (patient zero sits at one end).
        let (m, r, l) = (
            mesh.full_infection_tick.unwrap(),
            ring.full_infection_tick.unwrap(),
            line.full_infection_tick.unwrap(),
        );
        assert!(m < r, "mesh {m} vs ring {r}");
        assert!(r < l, "ring {r} vs line {l}");
        assert!(l >= 10, "a 12-node line needs ~11 hops, got {l}");
    }

    #[test]
    fn report_rates() {
        let r = run_contagion(ContagionArm::OpenExchange, 8, 10, 2);
        assert!((r.infection_rate() - 1.0).abs() < 1e-9);
        assert!((r.coverage_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            run_contagion(ContagionArm::HumanAck, 10, 20, 7),
            run_contagion(ContagionArm::HumanAck, 10, 20, 7)
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_fleet_rejected() {
        let _ = run_contagion(ContagionArm::OpenExchange, 1, 10, 0);
    }
}
