use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{HarmCause, HarmEvent};

/// A grid cell `(x, y)`.
pub type Cell = (i32, i32);

/// Static world parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Grid width (cells are `0..width`).
    pub width: i32,
    /// Grid height.
    pub height: i32,
    /// Aggregate heat above which a fire breaks out (Section VI.D's
    /// cumulative-heat example).
    pub heat_limit: f64,
    /// When set, a fire harms only humans inside this rectangle
    /// (inclusive corners); `None` means the whole grid is the enclosure.
    pub heat_zone: Option<((i32, i32), (i32, i32))>,
}

impl WorldConfig {
    /// Is `cell` inside the heat enclosure?
    fn in_heat_zone(&self, cell: Cell) -> bool {
        match self.heat_zone {
            None => true,
            Some(((x0, y0), (x1, y1))) => {
                cell.0 >= x0 && cell.0 <= x1 && cell.1 >= y0 && cell.1 <= y1
            }
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            width: 20,
            height: 20,
            heat_limit: 10.0,
            heat_zone: None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Human {
    path: Vec<Cell>,
    idx: usize,
    looping: bool,
    harmed: bool,
}

impl Human {
    fn pos(&self) -> Cell {
        self.path[self.idx.min(self.path.len() - 1)]
    }

    fn advance(&mut self) {
        if self.harmed {
            return;
        }
        if self.idx + 1 < self.path.len() {
            self.idx += 1;
        } else if self.looping && !self.path.is_empty() {
            self.idx = 0;
        }
    }

    /// Position `steps` ticks in the future (assuming the human survives).
    fn pos_after(&self, steps: u64) -> Cell {
        if self.harmed || self.path.is_empty() {
            return self.pos();
        }
        let i = self.idx as u64 + steps;
        if self.looping {
            self.path[(i % self.path.len() as u64) as usize]
        } else {
            self.path[(i as usize).min(self.path.len() - 1)]
        }
    }
}

/// A suspect convoy: a moving target that ground mules may intercept
/// (Section II: "if it sees a suspect convoy, it may call upon a ground mule
/// to intercept the convoy along the path").
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Convoy {
    path: Vec<Cell>,
    idx: usize,
    intercepted_at: Option<u64>,
}

impl Convoy {
    fn pos(&self) -> Cell {
        self.path[self.idx.min(self.path.len() - 1)]
    }

    fn advance(&mut self) {
        if self.intercepted_at.is_none() && self.idx + 1 < self.path.len() {
            self.idx += 1;
        }
    }

    fn pos_after(&self, steps: u64) -> Cell {
        if self.intercepted_at.is_some() {
            return self.pos();
        }
        let i = (self.idx as u64 + steps) as usize;
        self.path[i.min(self.path.len() - 1)]
    }
}

/// The authoritative physical world: grid, humans, hazards, heat, harm.
///
/// The world is the *only* component that records harm; devices and guards
/// interact with it exclusively through actions and (possibly wrong)
/// predictions.
///
/// # Example
///
/// ```
/// use apdm_sim::{World, WorldConfig};
/// use apdm_sim::HarmCause;
///
/// let mut world = World::new(WorldConfig::default());
/// // A human walks east along y=5.
/// world.add_human((0..10).map(|x| (x, 5)).collect(), false);
/// // A device digs an unmarked hole on the path.
/// world.dig_hole((3, 5), None);
/// for tick in 1..=5 {
///     world.step(tick);
/// }
/// assert_eq!(world.harms().len(), 1);
/// assert_eq!(world.harms()[0].cause, HarmCause::IndirectHazard);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    config: WorldConfig,
    humans: Vec<Human>,
    /// hole cell -> (warned, digging device id if known).
    holes: BTreeMap<Cell, (bool, Option<u64>)>,
    /// heat contribution per device.
    heat: BTreeMap<u64, f64>,
    fire_burning: bool,
    harms: Vec<HarmEvent>,
    convoys: Vec<Convoy>,
    tick: u64,
}

impl World {
    /// An empty world.
    pub fn new(config: WorldConfig) -> Self {
        World {
            config,
            humans: Vec::new(),
            holes: BTreeMap::new(),
            heat: BTreeMap::new(),
            fire_burning: false,
            harms: Vec::new(),
            convoys: Vec::new(),
            tick: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> WorldConfig {
        self.config
    }

    /// Current tick (last stepped).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Add a human walking `path` (one waypoint per tick); returns its index.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn add_human(&mut self, path: Vec<Cell>, looping: bool) -> usize {
        assert!(!path.is_empty(), "human paths must be non-empty");
        self.humans.push(Human {
            path,
            idx: 0,
            looping,
            harmed: false,
        });
        self.humans.len() - 1
    }

    /// Number of humans.
    pub fn human_count(&self) -> usize {
        self.humans.len()
    }

    /// Number of humans not yet harmed.
    pub fn humans_unharmed(&self) -> usize {
        self.humans.iter().filter(|h| !h.harmed).count()
    }

    /// Current position of human `i`.
    pub fn human_pos(&self, i: usize) -> Option<Cell> {
        self.humans.get(i).map(Human::pos)
    }

    /// Is human `i` harmed?
    pub fn human_harmed(&self, i: usize) -> Option<bool> {
        self.humans.get(i).map(|h| h.harmed)
    }

    /// Predicted positions of all surviving humans over the next `horizon`
    /// ticks (inclusive of the current position) — what a *perfect* indirect-
    /// harm oracle knows.
    pub fn predicted_human_cells(&self, horizon: u32) -> Vec<Cell> {
        let mut cells = Vec::new();
        for h in self.humans.iter().filter(|h| !h.harmed) {
            for step in 0..=horizon as u64 {
                cells.push(h.pos_after(step));
            }
        }
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Positions of surviving humans right now — what a *myopic* oracle
    /// knows.
    pub fn current_human_cells(&self) -> Vec<Cell> {
        self.humans
            .iter()
            .filter(|h| !h.harmed)
            .map(Human::pos)
            .collect()
    }

    /// A 64-bit digest of everything a [`WorldOracle`] can observe: each
    /// human's path progress and harmed flag (paths themselves are static
    /// for the life of a run, so `(index, harmed)` pins both the current
    /// and every predicted position). Guard-verdict caches mix this token
    /// into their fingerprint so a memoized verdict is replayed only while
    /// the oracle's view of the world is unchanged.
    ///
    /// [`WorldOracle`]: crate::WorldOracle
    pub fn observation_token(&self) -> u64 {
        // FNV-1a over the observable tuple stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (i, human) in self.humans.iter().enumerate() {
            mix(i as u64);
            mix(human.idx as u64);
            mix(u64::from(human.harmed));
        }
        h
    }

    /// Dig a hole at `cell`, attributed to `device`. Idempotent per cell.
    pub fn dig_hole(&mut self, cell: Cell, device: Option<u64>) {
        self.holes.entry(cell).or_insert((false, device));
    }

    /// Post a warning sign at a hole; returns whether a hole was there.
    /// Warned holes no longer harm (humans walk around them).
    pub fn warn_hole(&mut self, cell: Cell) -> bool {
        match self.holes.get_mut(&cell) {
            Some((warned, _)) => {
                *warned = true;
                true
            }
            None => false,
        }
    }

    /// Is there a hole at `cell`? Returns its warned flag.
    pub fn hole_at(&self, cell: Cell) -> Option<bool> {
        self.holes.get(&cell).map(|(warned, _)| *warned)
    }

    /// Number of holes, warned or not.
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// Set a device's heat contribution.
    pub fn set_heat(&mut self, device: u64, heat: f64) {
        self.heat.insert(device, heat.max(0.0));
    }

    /// Remove a device's heat contribution (deactivation).
    pub fn clear_heat(&mut self, device: u64) {
        self.heat.remove(&device);
    }

    /// The aggregate heat.
    pub fn total_heat(&self) -> f64 {
        self.heat.values().sum()
    }

    /// Is a fire currently burning?
    pub fn fire_burning(&self) -> bool {
        self.fire_burning
    }

    /// A device strikes at `cell`: every surviving human within Chebyshev
    /// distance `radius` is directly harmed. Returns the number harmed.
    pub fn strike(&mut self, device: u64, cell: Cell, radius: i32, tick: u64) -> usize {
        let mut harmed = 0;
        let harms = &mut self.harms;
        for (i, h) in self.humans.iter_mut().enumerate() {
            if h.harmed {
                continue;
            }
            let (hx, hy) = h.pos();
            if (hx - cell.0).abs().max((hy - cell.1).abs()) <= radius {
                h.harmed = true;
                harmed += 1;
                harms.push(HarmEvent {
                    tick,
                    human: i,
                    cause: HarmCause::Direct,
                    device: Some(device),
                });
            }
        }
        harmed
    }

    /// Advance the world one tick: humans walk, unwarned holes claim
    /// walkers, aggregate heat above the limit ignites a fire harming every
    /// surviving human. Returns the harm events produced this tick.
    pub fn step(&mut self, tick: u64) -> Vec<HarmEvent> {
        self.tick = tick;
        let before = self.harms.len();

        // Humans walk; convoys roll.
        for h in &mut self.humans {
            h.advance();
        }
        for c in &mut self.convoys {
            c.advance();
        }

        // Unwarned holes claim walkers.
        for (i, h) in self.humans.iter_mut().enumerate() {
            if h.harmed {
                continue;
            }
            if let Some(&(warned, device)) = self.holes.get(&h.pos()) {
                if !warned {
                    h.harmed = true;
                    self.harms.push(HarmEvent {
                        tick,
                        human: i,
                        cause: HarmCause::IndirectHazard,
                        device,
                    });
                }
            }
        }

        // Aggregate heat: fire breaks out when the limit is crossed, harming
        // everyone; it keeps burning (but harms only once per outbreak) until
        // heat drops back under the limit.
        if self.total_heat() > self.config.heat_limit {
            if !self.fire_burning {
                self.fire_burning = true;
                for (i, h) in self.humans.iter_mut().enumerate() {
                    if !h.harmed && self.config.in_heat_zone(h.pos()) {
                        h.harmed = true;
                        self.harms.push(HarmEvent {
                            tick,
                            human: i,
                            cause: HarmCause::Aggregate,
                            device: None,
                        });
                    }
                }
            }
        } else {
            self.fire_burning = false;
        }

        self.harms[before..].to_vec()
    }

    /// All harm events so far.
    pub fn harms(&self) -> &[HarmEvent] {
        &self.harms
    }

    /// Add a suspect convoy following `path` (one waypoint per tick, stops
    /// at the end); returns its index.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn add_convoy(&mut self, path: Vec<Cell>) -> usize {
        assert!(!path.is_empty(), "convoy paths must be non-empty");
        self.convoys.push(Convoy {
            path,
            idx: 0,
            intercepted_at: None,
        });
        self.convoys.len() - 1
    }

    /// Number of convoys.
    pub fn convoy_count(&self) -> usize {
        self.convoys.len()
    }

    /// Current position of convoy `i`.
    pub fn convoy_pos(&self, i: usize) -> Option<Cell> {
        self.convoys.get(i).map(Convoy::pos)
    }

    /// Tick at which convoy `i` was intercepted, if it was.
    pub fn convoy_intercepted_at(&self, i: usize) -> Option<u64> {
        self.convoys.get(i).and_then(|c| c.intercepted_at)
    }

    /// Predicted position of convoy `i` after `steps` ticks — what a drone's
    /// tracking model reports to the interceptor.
    pub fn predicted_convoy_pos(&self, i: usize, steps: u64) -> Option<Cell> {
        self.convoys.get(i).map(|c| c.pos_after(steps))
    }

    /// An interceptor at `cell` attempts to stop convoy `i`; succeeds when
    /// the convoy is within Chebyshev distance 1 **and still in the sector**
    /// (a convoy whose path is exhausted has escaped — interception missed).
    /// Returns whether the convoy is now (or already was) intercepted.
    pub fn try_intercept(&mut self, i: usize, cell: Cell, tick: u64) -> bool {
        let Some(convoy) = self.convoys.get_mut(i) else {
            return false;
        };
        if convoy.intercepted_at.is_some() {
            return true;
        }
        if convoy.idx + 1 >= convoy.path.len() {
            return false; // escaped the sector
        }
        let (cx, cy) = convoy.pos();
        if (cx - cell.0).abs().max((cy - cell.1).abs()) <= 1 {
            convoy.intercepted_at = Some(tick);
            true
        } else {
            false
        }
    }

    /// Convoys not yet intercepted whose path is exhausted (escaped).
    pub fn convoys_escaped(&self) -> usize {
        self.convoys
            .iter()
            .filter(|c| c.intercepted_at.is_none() && c.idx + 1 >= c.path.len())
            .count()
    }

    /// Is `cell` inside the grid?
    pub fn in_bounds(&self, cell: Cell) -> bool {
        cell.0 >= 0 && cell.0 < self.config.width && cell.1 >= 0 && cell.1 < self.config.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig {
            width: 10,
            height: 10,
            heat_limit: 5.0,
            heat_zone: None,
        })
    }

    #[test]
    fn humans_walk_their_paths() {
        let mut w = world();
        let h = w.add_human(vec![(0, 0), (1, 0), (2, 0)], false);
        assert_eq!(w.human_pos(h), Some((0, 0)));
        w.step(1);
        assert_eq!(w.human_pos(h), Some((1, 0)));
        w.step(2);
        w.step(3); // end of path: stays put
        assert_eq!(w.human_pos(h), Some((2, 0)));
    }

    #[test]
    fn looping_paths_wrap() {
        let mut w = world();
        let h = w.add_human(vec![(0, 0), (1, 0)], true);
        w.step(1);
        w.step(2);
        assert_eq!(w.human_pos(h), Some((0, 0)));
    }

    #[test]
    fn unwarned_hole_harms_walker() {
        let mut w = world();
        w.add_human(vec![(0, 0), (1, 0), (2, 0)], false);
        w.dig_hole((2, 0), Some(7));
        w.step(1);
        assert!(w.harms().is_empty());
        let events = w.step(2);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cause, HarmCause::IndirectHazard);
        assert_eq!(events[0].device, Some(7));
        assert_eq!(w.humans_unharmed(), 0);
    }

    #[test]
    fn warned_hole_is_safe() {
        let mut w = world();
        w.add_human(vec![(0, 0), (1, 0), (2, 0)], false);
        w.dig_hole((2, 0), None);
        assert!(w.warn_hole((2, 0)));
        w.step(1);
        w.step(2);
        assert!(w.harms().is_empty());
        assert_eq!(w.hole_at((2, 0)), Some(true));
    }

    #[test]
    fn warning_nonexistent_hole_is_false() {
        let mut w = world();
        assert!(!w.warn_hole((5, 5)));
    }

    #[test]
    fn harmed_humans_stop_walking() {
        let mut w = world();
        let h = w.add_human(vec![(0, 0), (1, 0), (2, 0), (3, 0)], false);
        w.dig_hole((1, 0), None);
        w.step(1);
        assert_eq!(w.human_harmed(h), Some(true));
        w.step(2);
        assert_eq!(w.human_pos(h), Some((1, 0)), "harmed humans don't advance");
        // A harmed human cannot be harmed again.
        assert_eq!(w.harms().len(), 1);
    }

    #[test]
    fn strike_harms_within_radius() {
        let mut w = world();
        w.add_human(vec![(3, 3)], false);
        w.add_human(vec![(5, 5)], false);
        let harmed = w.strike(9, (3, 4), 1, 1);
        assert_eq!(harmed, 1);
        assert_eq!(w.harms()[0].cause, HarmCause::Direct);
        assert_eq!(w.harms()[0].device, Some(9));
        assert_eq!(w.humans_unharmed(), 1);
    }

    #[test]
    fn heat_over_limit_ignites_once_per_outbreak() {
        let mut w = world();
        w.add_human(vec![(0, 0)], false);
        w.add_human(vec![(9, 9)], false);
        w.set_heat(1, 3.0);
        w.set_heat(2, 3.0);
        assert_eq!(w.total_heat(), 6.0);
        let events = w.step(1);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.cause == HarmCause::Aggregate));
        assert!(w.fire_burning());
        // Still burning next tick, but nobody left to harm and no new events.
        assert!(w.step(2).is_empty());
        // Cooling re-arms the fire.
        w.set_heat(1, 0.0);
        w.set_heat(2, 0.0);
        w.step(3);
        assert!(!w.fire_burning());
    }

    #[test]
    fn individually_small_heat_sums_to_fire() {
        // Section VI.D's example verbatim: each source acceptable, sum fatal.
        let mut w = world();
        w.add_human(vec![(0, 0)], false);
        for d in 0..6 {
            w.set_heat(d, 1.0); // each well below the 5.0 limit
        }
        w.step(1);
        assert_eq!(w.harms().len(), 1);
        assert_eq!(w.harms()[0].cause, HarmCause::Aggregate);
    }

    #[test]
    fn heat_zone_confines_the_fire() {
        let mut w = World::new(WorldConfig {
            width: 10,
            height: 10,
            heat_limit: 5.0,
            heat_zone: Some(((0, 0), (3, 3))),
        });
        let inside = w.add_human(vec![(1, 1)], false);
        let outside = w.add_human(vec![(8, 8)], false);
        w.set_heat(1, 9.0);
        w.step(1);
        assert!(w.fire_burning());
        assert_eq!(w.human_harmed(inside), Some(true));
        assert_eq!(w.human_harmed(outside), Some(false));
        assert_eq!(w.harms().len(), 1);
    }

    #[test]
    fn clear_heat_on_deactivation() {
        let mut w = world();
        w.set_heat(1, 4.0);
        w.set_heat(2, 4.0);
        w.clear_heat(1);
        assert_eq!(w.total_heat(), 4.0);
    }

    #[test]
    fn predicted_cells_cover_the_horizon() {
        let mut w = world();
        w.add_human(vec![(0, 0), (1, 0), (2, 0)], false);
        let cells = w.predicted_human_cells(2);
        assert_eq!(cells, vec![(0, 0), (1, 0), (2, 0)]);
        let now = w.current_human_cells();
        assert_eq!(now, vec![(0, 0)]);
    }

    #[test]
    fn predicted_cells_ignore_harmed_humans() {
        let mut w = world();
        w.add_human(vec![(0, 0), (1, 0)], false);
        w.strike(1, (0, 0), 0, 1);
        assert!(w.predicted_human_cells(5).is_empty());
    }

    #[test]
    fn convoys_roll_and_stop_when_intercepted() {
        let mut w = world();
        let c = w.add_convoy(vec![(0, 0), (1, 0), (2, 0), (3, 0)]);
        w.step(1);
        assert_eq!(w.convoy_pos(c), Some((1, 0)));
        assert_eq!(w.predicted_convoy_pos(c, 2), Some((3, 0)));
        assert!(
            w.try_intercept(c, (2, 1), 2),
            "adjacent interceptor succeeds"
        );
        assert_eq!(w.convoy_intercepted_at(c), Some(2));
        w.step(3);
        assert_eq!(w.convoy_pos(c), Some((1, 0)), "intercepted convoys stop");
    }

    #[test]
    fn distant_interception_fails_and_convoys_escape() {
        let mut w = world();
        let c = w.add_convoy(vec![(0, 0), (1, 0)]);
        assert!(!w.try_intercept(c, (5, 5), 1));
        assert_eq!(w.convoy_intercepted_at(c), None);
        w.step(1);
        w.step(2);
        assert_eq!(
            w.convoys_escaped(),
            1,
            "path exhausted without interception"
        );
    }

    #[test]
    fn observation_token_tracks_only_oracle_visible_state() {
        let mut w = world();
        let h = w.add_human(vec![(0, 0), (1, 0), (2, 0)], false);
        let t0 = w.observation_token();
        // Holes and heat are invisible to the harm oracle.
        w.dig_hole((5, 5), None);
        w.set_heat(1, 3.0);
        assert_eq!(w.observation_token(), t0);
        // A walking human changes the view…
        w.step(1);
        let t1 = w.observation_token();
        assert_ne!(t0, t1);
        // …and so does harming one.
        w.strike(1, (1, 0), 0, 2);
        assert_eq!(w.human_harmed(h), Some(true));
        assert_ne!(w.observation_token(), t1);
    }

    #[test]
    fn bounds_check() {
        let w = world();
        assert!(w.in_bounds((0, 0)));
        assert!(w.in_bounds((9, 9)));
        assert!(!w.in_bounds((10, 0)));
        assert!(!w.in_bounds((0, -1)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_rejected() {
        let mut w = world();
        w.add_human(vec![], false);
    }
}
