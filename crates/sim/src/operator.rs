//! The human operator of Figure 1: command issuance, fan-out and error.
//!
//! Section II: "several devices within control of a human collaboratively
//! decide how to execute actions that satisfy the command of that
//! individual." Section IV lists **human error** among the malevolence
//! pathways: "A wrong command by the human operator ... can lead to
//! malevolent conditions."
//!
//! [`Operator`] issues commands to a [`Fleet`] as per-device events. With
//! probability `error_rate` the operator issues the *mistaken* command
//! instead of the intended one (e.g. `engage` instead of `observe`), which
//! is the command-level realization of the human-error pathway — distinct
//! from the configuration-level one in [`crate::faults`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use apdm_device::DeviceId;
use apdm_policy::Event;

use crate::Fleet;

/// One command the operator issued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IssuedCommand {
    /// Tick of issuance.
    pub tick: u64,
    /// What the operator meant to issue.
    pub intended: String,
    /// What actually went out.
    pub actual: String,
    /// Devices addressed.
    pub addressed: usize,
}

impl IssuedCommand {
    /// Was this command a slip?
    pub fn is_mistake(&self) -> bool {
        self.intended != self.actual
    }
}

/// A scripted human operator with a slip rate.
///
/// # Example
///
/// ```
/// use apdm_sim::operator::Operator;
/// use apdm_sim::{Fleet, FleetConfig};
///
/// let fleet = Fleet::new(FleetConfig::default());
/// let mut op = Operator::new(0.0, 7);
/// let events = op.issue("observe", "engage", &fleet, 1);
/// assert!(events.is_empty()); // empty fleet, no recipients
/// assert_eq!(op.issued().len(), 1);
/// assert_eq!(op.mistakes(), 0);
/// ```
#[derive(Debug)]
pub struct Operator {
    error_rate: f64,
    rng: StdRng,
    issued: Vec<IssuedCommand>,
}

impl Operator {
    /// An operator who slips with probability `error_rate` per command.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        Operator {
            error_rate: error_rate.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            issued: Vec::new(),
        }
    }

    /// Issue `intended` to every active device (or, on a slip, `mistaken`).
    /// Returns the per-device events to feed into [`Fleet::step`].
    pub fn issue(
        &mut self,
        intended: &str,
        mistaken: &str,
        fleet: &Fleet,
        tick: u64,
    ) -> Vec<(DeviceId, Event)> {
        let slipped = self.error_rate > 0.0 && self.rng.random_range(0.0..1.0) < self.error_rate;
        let actual = if slipped { mistaken } else { intended };
        let events: Vec<(DeviceId, Event)> = fleet
            .iter()
            .filter(|(_, m)| m.device.is_active())
            .map(|(&id, _)| (id, Event::named(actual)))
            .collect();
        self.issued.push(IssuedCommand {
            tick,
            intended: intended.to_string(),
            actual: actual.to_string(),
            addressed: events.len(),
        });
        events
    }

    /// Every command issued so far.
    pub fn issued(&self) -> &[IssuedCommand] {
        &self.issued
    }

    /// Number of slips.
    pub fn mistakes(&self) -> usize {
        self.issued.iter().filter(|c| c.is_mistake()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::actions;
    use crate::world::WorldConfig;
    use crate::{FleetConfig, World};
    use apdm_device::{Device, DeviceKind, OrgId};
    use apdm_guards::{GuardStack, PreActionCheck};
    use apdm_policy::{Action, Condition, EcaRule};
    use apdm_statespace::StateSchema;

    /// A peacekeeper that observes on `observe` and strikes on `engage` —
    /// the dual-role machine of the paper's human-error example ("a machine
    /// that is designed for war-fighting could be used in peace-keeping").
    fn dual_role(id: u64) -> Device {
        Device::builder(id, DeviceKind::new("dual"), OrgId::new("us"))
            .schema(StateSchema::builder().var("x", 0.0, 1.0).build())
            .rule(EcaRule::new(
                "observe",
                Event::pattern("observe"),
                Condition::True,
                Action::noop(),
            ))
            .rule(EcaRule::new(
                "engage",
                Event::pattern("engage"),
                Condition::True,
                Action::adjust(actions::STRIKE, Default::default()).physical(),
            ))
            .build()
    }

    fn setup(guarded: bool) -> (Fleet, World) {
        let mut world = World::new(WorldConfig::default());
        world.add_human(vec![(5, 5)], false);
        let mut fleet = Fleet::new(FleetConfig::default());
        let stack = if guarded {
            GuardStack::new().with_preaction(PreActionCheck::new())
        } else {
            GuardStack::new()
        };
        fleet.add(dual_role(1), stack, (5, 6));
        (fleet, world)
    }

    #[test]
    fn faithful_operator_keeps_the_peace() {
        let (mut fleet, mut world) = setup(false);
        let mut op = Operator::new(0.0, 1);
        for t in 1..=20 {
            let events = op.issue("observe", "engage", &fleet, t);
            fleet.step(&mut world, t, &events);
        }
        assert_eq!(op.mistakes(), 0);
        assert_eq!(world.harms().len(), 0);
    }

    #[test]
    fn slips_cause_harm_without_guards() {
        let (mut fleet, mut world) = setup(false);
        let mut op = Operator::new(0.5, 2);
        for t in 1..=20 {
            let events = op.issue("observe", "engage", &fleet, t);
            fleet.step(&mut world, t, &events);
        }
        assert!(op.mistakes() > 0);
        assert!(
            !world.harms().is_empty(),
            "a wrong command struck the human"
        );
    }

    #[test]
    fn guards_absorb_operator_slips() {
        let (mut fleet, mut world) = setup(true);
        let mut op = Operator::new(0.5, 2);
        for t in 1..=20 {
            let events = op.issue("observe", "engage", &fleet, t);
            fleet.step(&mut world, t, &events);
        }
        assert!(op.mistakes() > 0, "same slips as the unguarded run");
        assert!(
            world.harms().is_empty(),
            "pre-action checks caught every slip"
        );
    }

    #[test]
    fn commands_address_only_active_devices() {
        let (mut fleet, _) = setup(false);
        let id = *fleet.iter().next().unwrap().0;
        fleet.member_mut(id).unwrap().device.deactivate();
        let mut op = Operator::new(0.0, 3);
        let events = op.issue("observe", "engage", &fleet, 1);
        assert!(events.is_empty());
        assert_eq!(op.issued()[0].addressed, 0);
    }

    #[test]
    fn issued_log_records_intent_vs_actual() {
        let (fleet, _) = setup(false);
        let mut op = Operator::new(1.0, 4);
        op.issue("observe", "engage", &fleet, 9);
        let cmd = &op.issued()[0];
        assert_eq!(cmd.intended, "observe");
        assert_eq!(cmd.actual, "engage");
        assert!(cmd.is_mistake());
        assert_eq!(cmd.tick, 9);
    }
}
