//! Harm accounting and the executable Skynet scorecard.
//!
//! The simulator's [`Metrics`] are the ground truth every experiment reports
//! from; devices cannot write to them. [`SkynetScore`] operationalizes the
//! six properties of Section III so that "did we prevent Skynet while keeping
//! the fleet useful?" is a measurement, not a narrative (experiment A2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a human was harmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HarmCause {
    /// A device action harmed the human directly (e.g. a strike).
    Direct,
    /// The human fell into an unmarked hazard left by a device.
    IndirectHazard,
    /// An aggregate effect (overheating fire) harmed the human.
    Aggregate,
}

impl fmt::Display for HarmCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HarmCause::Direct => "direct",
            HarmCause::IndirectHazard => "indirect-hazard",
            HarmCause::Aggregate => "aggregate",
        };
        f.write_str(s)
    }
}

/// One harm event, recorded by the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarmEvent {
    /// Tick at which the harm occurred.
    pub tick: u64,
    /// Which human was harmed.
    pub human: usize,
    /// Why.
    pub cause: HarmCause,
    /// The device implicated (if attributable).
    pub device: Option<u64>,
}

/// Ground-truth counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// All harm events in tick order.
    pub harms: Vec<HarmEvent>,
    /// Actions devices proposed.
    pub proposals: u64,
    /// Actions guards denied or replaced.
    pub interventions: u64,
    /// Primary actions that executed (proposed or substituted).
    pub executions: u64,
    /// Obligation actions executed (mitigations demanded by guards/rules;
    /// tracked separately so availability stays a fraction of proposals).
    pub obligation_executions: u64,
    /// Devices deactivated.
    pub deactivations: u64,
    /// Obligations that went overdue.
    pub obligations_overdue: u64,
    /// Ticks simulated.
    pub ticks: u64,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a harm event.
    pub fn record_harm(&mut self, event: HarmEvent) {
        self.harms.push(event);
    }

    /// Total harms.
    pub fn harm_count(&self) -> usize {
        self.harms.len()
    }

    /// Harms of one cause.
    pub fn harms_by_cause(&self, cause: HarmCause) -> usize {
        self.harms.iter().filter(|h| h.cause == cause).count()
    }

    /// Harms per tick (0 for zero-length runs).
    pub fn harm_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.harms.len() as f64 / self.ticks as f64
        }
    }

    /// Fraction of proposals that executed — the fleet's *usefulness*
    /// (guards that block everything trivially prevent harm).
    pub fn availability(&self) -> f64 {
        if self.proposals == 0 {
            1.0
        } else {
            self.executions as f64 / self.proposals as f64
        }
    }

    /// Tick of the first harm, if any — the "time-to-first-harm" metric of
    /// experiment E7.
    pub fn first_harm_tick(&self) -> Option<u64> {
        self.harms.iter().map(|h| h.tick).min()
    }
}

/// The six Skynet properties of Section III, measured over a running fleet.
///
/// Each component is in `[0, 1]`. The paper's thesis in one line: a useful
/// generative-policy fleet will score high on the first five; prevention
/// means holding `malevolent` at zero *without* collapsing the others.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkynetScore {
    /// Networked: fraction of devices reachable from the first device over
    /// up links.
    pub networked: f64,
    /// Learning: fraction of devices whose policy set grew after deployment.
    pub learning: f64,
    /// Cognitive: fraction of installed rules that are machine-generated.
    pub cognitive: f64,
    /// Multi-organizational: organizations spanned / organizations present.
    pub multi_org: f64,
    /// Physical: fraction of executed actions touching the physical world.
    pub physical: f64,
    /// Malevolent: normalized harm (harms per human per 100 ticks, capped).
    pub malevolent: f64,
}

impl SkynetScore {
    /// The non-malevolence "capability" score: mean of the five capability
    /// components.
    pub fn capability(&self) -> f64 {
        (self.networked + self.learning + self.cognitive + self.multi_org + self.physical) / 5.0
    }

    /// Has the fleet *become Skynet*: highly capable and malevolent?
    pub fn is_skynet(&self) -> bool {
        self.capability() > 0.5 && self.malevolent > 0.0
    }
}

impl fmt::Display for SkynetScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net={:.2} learn={:.2} cog={:.2} org={:.2} phys={:.2} MALEVOLENT={:.2}",
            self.networked,
            self.learning,
            self.cognitive,
            self.multi_org,
            self.physical,
            self.malevolent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harm(tick: u64, cause: HarmCause) -> HarmEvent {
        HarmEvent {
            tick,
            human: 0,
            cause,
            device: None,
        }
    }

    #[test]
    fn harm_accounting() {
        let mut m = Metrics::new();
        m.ticks = 100;
        m.record_harm(harm(10, HarmCause::Direct));
        m.record_harm(harm(20, HarmCause::IndirectHazard));
        m.record_harm(harm(5, HarmCause::IndirectHazard));
        assert_eq!(m.harm_count(), 3);
        assert_eq!(m.harms_by_cause(HarmCause::IndirectHazard), 2);
        assert_eq!(m.harms_by_cause(HarmCause::Aggregate), 0);
        assert_eq!(m.first_harm_tick(), Some(5));
        assert!((m.harm_rate() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn availability_defaults_to_full() {
        let m = Metrics::new();
        assert_eq!(m.availability(), 1.0);
        assert_eq!(m.harm_rate(), 0.0);
        assert_eq!(m.first_harm_tick(), None);
    }

    #[test]
    fn availability_counts_executions() {
        let mut m = Metrics::new();
        m.proposals = 10;
        m.executions = 7;
        m.interventions = 3;
        assert!((m.availability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn harm_event_serde_round_trip() {
        let events = vec![
            HarmEvent {
                tick: 42,
                human: 3,
                cause: HarmCause::Direct,
                device: Some(7),
            },
            HarmEvent {
                tick: u64::MAX,
                human: 0,
                cause: HarmCause::IndirectHazard,
                device: None,
            },
            HarmEvent {
                tick: 0,
                human: usize::MAX,
                cause: HarmCause::Aggregate,
                device: Some(u64::MAX),
            },
        ];
        for event in &events {
            let wire = serde_json::to_string(event).unwrap();
            let back: HarmEvent = serde_json::from_str(&wire).unwrap();
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn metrics_serde_round_trip() {
        let mut m = Metrics::new();
        m.ticks = 500;
        m.proposals = 1_000;
        m.interventions = 40;
        m.executions = 960;
        m.obligation_executions = 12;
        m.deactivations = 2;
        m.obligations_overdue = 1;
        m.record_harm(harm(10, HarmCause::Direct));
        m.record_harm(harm(499, HarmCause::Aggregate));
        let wire = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, m);
        // Derived views survive the wire too.
        assert_eq!(back.first_harm_tick(), m.first_harm_tick());
        assert_eq!(back.availability(), m.availability());

        // The empty block round-trips as well (empty harms vec, all zeros).
        let empty = Metrics::new();
        let back: Metrics = serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn skynet_score_serde_round_trip() {
        let score = SkynetScore {
            networked: 1.0,
            learning: 0.825,
            cognitive: 0.5,
            multi_org: 0.0,
            physical: 0.333_333_333_333_333_3,
            malevolent: 0.01,
        };
        let wire = serde_json::to_string(&score).unwrap();
        let back: SkynetScore = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, score);
        assert_eq!(back.capability(), score.capability());
        assert_eq!(back.is_skynet(), score.is_skynet());
    }

    #[test]
    fn skynet_score_capability_and_verdict() {
        let capable_safe = SkynetScore {
            networked: 1.0,
            learning: 0.8,
            cognitive: 0.9,
            multi_org: 1.0,
            physical: 0.7,
            malevolent: 0.0,
        };
        assert!(capable_safe.capability() > 0.8);
        assert!(!capable_safe.is_skynet());

        let skynet = SkynetScore {
            malevolent: 0.4,
            ..capable_safe
        };
        assert!(skynet.is_skynet());

        let harmless_brick = SkynetScore {
            networked: 0.0,
            learning: 0.0,
            cognitive: 0.0,
            multi_org: 0.0,
            physical: 0.0,
            malevolent: 0.3,
        };
        assert!(
            !harmless_brick.is_skynet(),
            "an incapable system is not Skynet"
        );
    }
}
