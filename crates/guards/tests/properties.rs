//! Property-based tests for the guard invariants the paper depends on.

use proptest::prelude::*;

use apdm_guards::tamper::{TamperStatus, Tamperable};
use apdm_guards::{
    AggregateSpec, CollaborativeAssessment, DeactivationController, GuardContext, GuardStack,
    KillBallot, NoHarmOracle, PreActionCheck, QuorumKillSwitch, StateSpaceGuard,
};
use apdm_policy::Action;
use apdm_statespace::{
    Classifier, Region, RegionClassifier, State, StateDelta, StateSchema, VarId,
};

fn schema() -> StateSchema {
    StateSchema::builder()
        .var("x", 0.0, 10.0)
        .var("y", 0.0, 10.0)
        .build()
}

fn arb_state() -> impl Strategy<Value = State> {
    (0.0..=10.0f64, 0.0..=10.0f64).prop_map(|(x, y)| schema().state(&[x, y]).unwrap())
}

fn arb_action(name: &'static str) -> impl Strategy<Value = Action> {
    ((-5.0..5.0f64), (-5.0..5.0f64)).prop_map(move |(dx, dy)| {
        Action::adjust(name, StateDelta::single(VarId(0), dx).and(VarId(1), dy))
    })
}

proptest! {
    /// The central invariant: a tamper-proof stack with a state check never
    /// permits a transition from a non-bad state into a bad state, whatever
    /// the proposal and alternatives.
    #[test]
    fn no_bad_entry(
        s in arb_state(),
        proposal in arb_action("p"),
        alt1 in arb_action("a1"),
        alt2 in arb_action("a2"),
    ) {
        let classifier = RegionClassifier::new(Region::rect(&[(2.0, 8.0), (2.0, 8.0)]));
        if classifier.is_bad(&s) {
            return Ok(());
        }
        let mut stack = GuardStack::new()
            .with_preaction(PreActionCheck::new())
            .with_statecheck(StateSpaceGuard::new(classifier.clone()));
        let alternatives = [&alt1, &alt2];
        let ctx = GuardContext { tick: 0, subject: "d", state: &s, alternatives: &alternatives, world_token: 0 };
        let verdict = stack.check(&ctx, &proposal, NoHarmOracle);
        let next = match verdict.effective_action(&proposal) {
            Some(a) => s.apply(a.delta()),
            None => s.clone(),
        };
        prop_assert!(!classifier.is_bad(&next));
    }

    /// A compromised stack is a pure pass-through: its verdict is always
    /// Allow, for any input.
    #[test]
    fn compromised_stack_always_allows(s in arb_state(), proposal in arb_action("p")) {
        let classifier = RegionClassifier::new(Region::Empty); // everything bad
        let mut stack = GuardStack::new()
            .with_preaction(PreActionCheck::new().with_tamper(TamperStatus::Compromised))
            .with_statecheck(
                StateSpaceGuard::new(classifier).with_tamper(TamperStatus::Compromised),
            );
        let ctx = GuardContext { tick: 0, subject: "d", state: &s, alternatives: &[], world_token: 0 };
        let verdict = stack.check(&ctx, &proposal, NoHarmOracle);
        prop_assert!(!verdict.intervened());
    }

    /// Quorum kill: no subject is ever killed with fewer than `quorum`
    /// distinct concurring watchers, for arbitrary vote sequences.
    #[test]
    fn quorum_never_undershoots(
        votes in proptest::collection::vec((0usize..5, 0u8..3, any::<bool>()), 1..60),
        quorum in 1usize..5,
    ) {
        let mut switch = QuorumKillSwitch::new(5, quorum);
        for (t, (watcher, subject, is_rogue)) in votes.iter().enumerate() {
            let name = format!("s{subject}");
            let before = switch.votes_for(&name);
            let ballot = KillBallot {
                watcher: *watcher,
                subject: name.clone(),
                rogue: *is_rogue,
                cast_tick: t as u64,
            };
            let order = switch.apply_ballot(&ballot, t as u64);
            if order.is_some() {
                // The killing ballot must have brought the count to >= quorum.
                prop_assert!(before + 1 >= quorum || switch.votes_for(&name) >= quorum
                    || before >= quorum - 1);
                prop_assert!(switch.killed().contains(&name));
            }
        }
        // Every killed subject had quorum concurring votes at kill time —
        // equivalently, with quorum q, a single watcher (q > 1) can never
        // have killed anyone alone.
        if quorum > 1 {
            let mut lone = QuorumKillSwitch::new(5, quorum);
            for t in 0..100u64 {
                let ballot = KillBallot {
                    watcher: 0,
                    subject: "victim".to_string(),
                    rogue: true,
                    cast_tick: t,
                };
                prop_assert!(lone.apply_ballot(&ballot, t).is_none());
            }
        }
    }

    /// Deactivation controller: orders fire exactly once per subject and
    /// only after `threshold` bad observations.
    #[test]
    fn deactivation_threshold_exact(
        threshold in 1u32..6,
        observations in proptest::collection::vec(0.0..=10.0f64, 1..40),
    ) {
        let classifier = RegionClassifier::new(Region::rect(&[(0.0, 5.0), (0.0, 10.0)]));
        let mut ctl = DeactivationController::new(classifier.clone(), threshold);
        let mut bad_seen = 0;
        let mut fired_at: Option<usize> = None;
        for (t, &x) in observations.iter().enumerate() {
            let s = schema().state(&[x, 0.0]).unwrap();
            let order = ctl.observe("d", &s, t as u64);
            if classifier.is_bad(&s) && fired_at.is_none() {
                bad_seen += 1;
            }
            if order.is_some() {
                prop_assert_eq!(bad_seen, threshold);
                prop_assert!(fired_at.is_none(), "fired twice");
                fired_at = Some(t);
            }
        }
    }

    /// Collaborative assessment: the abstention set it returns actually
    /// restores aggregate safety whenever restoring is possible by
    /// abstention alone.
    #[test]
    fn abstentions_restore_safety(
        heats in proptest::collection::vec((0.0..5.0f64, -2.0..3.0f64), 1..10),
        limit in 5.0..20.0f64,
    ) {
        let sch = StateSchema::builder().var("heat", 0.0, 10.0).build();
        let spec = AggregateSpec::sum_of(VarId(0), limit);
        let assess = CollaborativeAssessment::new(spec);
        let proposals: Vec<(State, Action)> = heats
            .iter()
            .map(|&(h, dh)| {
                (
                    sch.state_clamped(&[h]),
                    Action::adjust("heat", StateDelta::single(VarId(0), dh)),
                )
            })
            .collect();
        let abstain = assess.must_abstain(&proposals);
        // Recompute the aggregate with abstainers holding their current heat.
        let resulting: f64 = proposals
            .iter()
            .enumerate()
            .map(|(i, (s, a))| {
                if abstain.contains(&i) {
                    spec.contribution(s)
                } else {
                    spec.contribution(&s.apply(a.delta()))
                }
            })
            .sum();
        // If full abstention would be safe, the chosen set must be safe too.
        let all_abstain: f64 = proposals.iter().map(|(s, _)| spec.contribution(s)).sum();
        if all_abstain <= limit {
            prop_assert!(resulting <= limit + 1e-9,
                "abstention set {abstain:?} leaves aggregate {resulting} > {limit}");
        }
        // And abstentions are never demanded when the plan was already safe.
        if assess.is_safe(&proposals) {
            prop_assert!(abstain.is_empty());
        }
    }

    /// Tamper-proof components survive unbounded attack; p=1 components
    /// fall on the first attempt.
    #[test]
    fn tamper_extremes(attempts in 1usize..50, seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proof = PreActionCheck::new();
        for _ in 0..attempts {
            prop_assert!(!proof.attempt_tamper(&mut rng));
        }
        let mut doomed = PreActionCheck::new().with_tamper(TamperStatus::vulnerable(1.0));
        prop_assert!(doomed.attempt_tamper(&mut rng));
    }
}
