//! Guard-verdict memoization: context-fingerprint → verdict.
//!
//! MAVERICK's lesson (PAPERS.md) is that runtime policy enforcement only
//! survives in production if it is cheap enough to sit on *every* action.
//! A device that proposes the same action from the same state against the
//! same observable world gets — deterministically — the same verdict, so
//! the stack can replay a memoized verdict instead of re-running its
//! sub-guards.
//!
//! Correctness rests on three rules, enforced by [`GuardStack`]:
//!
//! 1. **Everything a verdict depends on is in the fingerprint**: the
//!    device state vector, the proposed action (name, delta, params,
//!    physical flag), every alternative, each sub-guard's tamper status,
//!    and — when a pre-action check consults a harm oracle — a
//!    caller-supplied `world_token` summarizing what the oracle can see.
//! 2. **Impure stacks never cache**: an exposure guard consumes budget on
//!    every allowed check and a break-glass controller burns grants, so
//!    stacks carrying either bypass the cache entirely.
//! 3. **Mutation invalidates**: any mutable access to a sub-guard (tamper
//!    injection, budget resets, policy swaps) clears the cache.
//!
//! A cache hit replays the one observable side effect an uncached check
//! has — the audit entry a Deny/Replace verdict records — so audit trails
//! are identical with the cache on or off. Per-stage telemetry counters
//! and sampled latency histograms are *not* replayed on hits (nothing ran);
//! instead hits and misses are counted exactly, both locally and through
//! the `guard.cache.hit` / `guard.cache.miss` registry counters.
//!
//! [`GuardStack`]: crate::GuardStack

use std::collections::BTreeMap;

use apdm_policy::Action;
use apdm_telemetry as telemetry;

use crate::{GuardContext, GuardVerdict, TamperStatus};

/// Entry cap: reaching it flushes the whole map (epoch eviction). Keeps a
/// pathological workload (every tick a fresh state) from growing without
/// bound while costing nothing on the workloads the cache exists for.
const MAX_ENTRIES: usize = 8192;

/// FNV-1a, 64-bit. The same spirit as the ledger's digest: stable, fast,
/// dependency-free. Not cryptographic — a collision can at worst replay a
/// verdict computed for a colliding context, which the determinism proptest
/// would surface as a ledger divergence.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn action(&mut self, action: &Action) {
        self.str(action.name());
        self.u64(u64::from(action.is_physical()));
        let changes = action.delta().changes();
        self.u64(changes.len() as u64);
        for &(id, dv) in changes {
            self.u64(id.0 as u64);
            self.f64(dv);
        }
        self.u64(action.params().len() as u64);
        for (k, v) in action.params() {
            self.str(k);
            self.str(v);
        }
    }
    fn tamper(&mut self, status: TamperStatus) {
        match status {
            TamperStatus::Proof => self.u64(0),
            TamperStatus::Vulnerable { p_compromise } => {
                self.u64(1);
                self.f64(p_compromise);
            }
            TamperStatus::Compromised => self.u64(2),
        }
    }
}

/// Fingerprint of one check: every input the verdict is a pure function of.
///
/// `with_world` says whether a pre-action check (and hence a harm oracle)
/// participates; without one the world is invisible to the stack and the
/// token must not perturb the key.
pub(crate) fn fingerprint(
    ctx: &GuardContext<'_>,
    proposed: &Action,
    preaction_tamper: Option<TamperStatus>,
    statecheck_tamper: Option<TamperStatus>,
) -> u64 {
    let mut h = Fnv::new();
    if let Some(t) = preaction_tamper {
        h.u64(1);
        h.tamper(t);
        h.u64(ctx.world_token);
    } else {
        h.u64(0);
    }
    if let Some(t) = statecheck_tamper {
        h.u64(1);
        h.tamper(t);
    } else {
        h.u64(0);
    }
    for &v in ctx.state.values() {
        h.f64(v);
    }
    h.action(proposed);
    h.u64(ctx.alternatives.len() as u64);
    for alt in ctx.alternatives {
        h.action(alt);
    }
    h.0
}

/// The memo store plus its exact hit/miss accounting.
#[derive(Debug)]
pub struct VerdictCache {
    map: BTreeMap<u64, GuardVerdict>,
    hits: u64,
    misses: u64,
    hit_counter: telemetry::CachedCounter,
    miss_counter: telemetry::CachedCounter,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache {
            map: BTreeMap::new(),
            hits: 0,
            misses: 0,
            hit_counter: telemetry::CachedCounter::new("guard.cache.hit"),
            miss_counter: telemetry::CachedCounter::new("guard.cache.miss"),
        }
    }
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a fingerprint, counting the outcome.
    pub(crate) fn lookup(&mut self, fp: u64) -> Option<GuardVerdict> {
        match self.map.get(&fp) {
            Some(verdict) => {
                self.hits += 1;
                if telemetry::enabled() {
                    self.hit_counter.inc();
                }
                Some(verdict.clone())
            }
            None => {
                self.misses += 1;
                if telemetry::enabled() {
                    self.miss_counter.inc();
                }
                None
            }
        }
    }

    /// Store a freshly computed verdict.
    pub(crate) fn store(&mut self, fp: u64, verdict: GuardVerdict) {
        if self.map.len() >= MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(fp, verdict);
    }

    /// Drop every entry (state/policy mutation invalidation). Counters
    /// survive — they describe the run, not the current epoch.
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// Exact `(hits, misses)` over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Export the full memo state for a checkpoint: every `(fingerprint,
    /// verdict)` entry in key order plus the exact lifetime counters.
    /// Together with [`restore`](Self::restore) this round-trips the cache
    /// bit-exactly, which the serving layer's crash-recovery path needs —
    /// cache contents steer the work meter, so a restored process must see
    /// the same hits and misses an uninterrupted one would.
    pub fn export(&self) -> (Vec<(u64, GuardVerdict)>, u64, u64) {
        (
            self.map.iter().map(|(&fp, v)| (fp, v.clone())).collect(),
            self.hits,
            self.misses,
        )
    }

    /// Rebuild a cache from an [`export`](Self::export).
    pub fn restore(entries: Vec<(u64, GuardVerdict)>, hits: u64, misses: u64) -> Self {
        VerdictCache {
            map: entries.into_iter().collect(),
            hits,
            misses,
            ..VerdictCache::default()
        }
    }

    /// Number of currently memoized verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the memo store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn ctx_with<'a>(
        state: &'a apdm_statespace::State,
        alternatives: &'a [&'a Action],
        world_token: u64,
    ) -> GuardContext<'a> {
        GuardContext {
            tick: 3,
            subject: "d",
            state,
            alternatives,
            world_token,
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
        let s1 = schema.state(&[1.0]).unwrap();
        let s2 = schema.state(&[2.0]).unwrap();
        let a = Action::adjust("east", StateDelta::single(VarId(0), 1.0));
        let b = Action::adjust("west", StateDelta::single(VarId(0), -1.0));

        let base = fingerprint(&ctx_with(&s1, &[], 0), &a, None, None);
        // Different state.
        assert_ne!(base, fingerprint(&ctx_with(&s2, &[], 0), &a, None, None));
        // Different action.
        assert_ne!(base, fingerprint(&ctx_with(&s1, &[], 0), &b, None, None));
        // Different alternatives.
        assert_ne!(base, fingerprint(&ctx_with(&s1, &[&b], 0), &a, None, None));
        // Tamper status flips the key.
        assert_ne!(
            fingerprint(&ctx_with(&s1, &[], 0), &a, Some(TamperStatus::Proof), None),
            fingerprint(
                &ctx_with(&s1, &[], 0),
                &a,
                Some(TamperStatus::Compromised),
                None
            )
        );
        // World token only matters when a pre-action check is present.
        assert_eq!(
            fingerprint(&ctx_with(&s1, &[], 7), &a, None, None),
            fingerprint(&ctx_with(&s1, &[], 9), &a, None, None)
        );
        assert_ne!(
            fingerprint(&ctx_with(&s1, &[], 7), &a, Some(TamperStatus::Proof), None),
            fingerprint(&ctx_with(&s1, &[], 9), &a, Some(TamperStatus::Proof), None)
        );
        // The tick is deliberately *not* part of the key.
        let mut later = ctx_with(&s1, &[], 0);
        later.tick = 99;
        assert_eq!(base, fingerprint(&later, &a, None, None));
    }

    #[test]
    fn lookup_and_store_count_exactly() {
        let mut cache = VerdictCache::new();
        assert!(cache.lookup(1).is_none());
        cache.store(1, GuardVerdict::Allow);
        assert_eq!(cache.lookup(1), Some(GuardVerdict::Allow));
        assert_eq!(cache.stats(), (1, 1));
        cache.invalidate();
        assert!(cache.is_empty());
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn store_flushes_at_capacity_instead_of_growing() {
        let mut cache = VerdictCache::new();
        for fp in 0..(MAX_ENTRIES as u64) {
            cache.store(fp, GuardVerdict::Allow);
        }
        assert_eq!(cache.len(), MAX_ENTRIES);
        cache.store(u64::MAX, GuardVerdict::Allow);
        assert_eq!(cache.len(), 1, "epoch flush on overflow");
    }
}
