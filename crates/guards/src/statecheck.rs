use std::fmt;
use std::sync::Arc;

use apdm_policy::{Action, BreakGlassController, BreakGlassOutcome, Event};
use apdm_statespace::{Classifier, Label, PreferenceOntology, RiskEstimator, State};

use crate::tamper::{TamperStatus, Tamperable};
use crate::GuardVerdict;

/// Detailed outcome of a state-space check, for audits and experiment
/// metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateCheckOutcome {
    /// The proposed next state is not bad; proceed.
    Proposed,
    /// An alternative action with a non-bad destination was chosen.
    Alternative(usize),
    /// Every option was bad but staying put is safe; take no action.
    Stay,
    /// Forced dilemma: the ontology/risk chose the least-bad option.
    LessBad(usize),
    /// A break-glass rule authorized an emergency override.
    BrokeGlass,
    /// Nothing admissible; the action is denied outright.
    Denied,
    /// The guard is compromised and did not actually check.
    Bypassed,
}

/// Section VI.B's state-space check: "If the good states and bad states can
/// be identified properly, then the device can maintain a check which
/// prevents it from ever entering a bad state. If the device finds itself
/// entering into a bad state, it will not take the action that leads to that
/// state, simply choosing the option of taking no action ... or taking an
/// alternative action which puts it into a new state which is also good."
///
/// For forced dilemmas ("the only possibility ... is an action that would
/// place the device into another bad state") the guard consults, in order:
///
/// 1. a [`PreferenceOntology`] + optional [`RiskEstimator`] to select the
///    *less bad* destination;
/// 2. a [`BreakGlassController`] for audited emergency overrides.
///
/// With neither configured, forced dilemmas are denied (freeze in place).
pub struct StateSpaceGuard {
    classifier: Arc<dyn Classifier + Send + Sync>,
    ontology: Option<PreferenceOntology>,
    risk: Option<Arc<dyn RiskEstimator + Send + Sync>>,
    breakglass: Option<BreakGlassController>,
    tamper: TamperStatus,
    checks: u64,
    interventions: u64,
    last_outcome: StateCheckOutcome,
}

impl StateSpaceGuard {
    /// A guard over a good/bad classifier.
    pub fn new(classifier: impl Classifier + Send + Sync + 'static) -> Self {
        StateSpaceGuard {
            classifier: Arc::new(classifier),
            ontology: None,
            risk: None,
            breakglass: None,
            tamper: TamperStatus::Proof,
            checks: 0,
            interventions: 0,
            last_outcome: StateCheckOutcome::Proposed,
        }
    }

    /// Attach a less-bad preference ontology (builder style).
    pub fn with_ontology(mut self, ontology: PreferenceOntology) -> Self {
        self.ontology = Some(ontology);
        self
    }

    /// Attach a risk estimator for tie-breaking (builder style).
    pub fn with_risk(mut self, risk: impl RiskEstimator + Send + Sync + 'static) -> Self {
        self.risk = Some(Arc::new(risk));
        self
    }

    /// Attach a break-glass controller (builder style).
    pub fn with_breakglass(mut self, controller: BreakGlassController) -> Self {
        self.breakglass = Some(controller);
        self
    }

    /// Set the tamper status (builder style; defaults to tamper-proof).
    pub fn with_tamper(mut self, status: TamperStatus) -> Self {
        self.tamper = status;
        self
    }

    /// Statistics: `(checks, interventions)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.checks, self.interventions)
    }

    /// The outcome of the most recent check (experiment metric).
    pub fn last_outcome(&self) -> &StateCheckOutcome {
        &self.last_outcome
    }

    /// Break-glass audit access, when configured.
    pub fn breakglass(&self) -> Option<&BreakGlassController> {
        self.breakglass.as_ref()
    }

    /// Evaluate a proposed action. `subject` names the device for audits;
    /// `alternatives` are the other actions the device's logic could take
    /// this step, borrowed from wherever they live (the guard computes each
    /// candidate's destination from the action's delta and only clones the
    /// one it substitutes).
    pub fn check(
        &mut self,
        subject: &str,
        tick: u64,
        state: &State,
        proposed: &Action,
        alternatives: &[&Action],
    ) -> GuardVerdict {
        self.checks += 1;
        if !self.tamper.is_effective() {
            self.last_outcome = StateCheckOutcome::Bypassed;
            return GuardVerdict::Allow;
        }

        let next = state.apply(proposed.delta());
        if self.classifier.classify(&next) != Label::Bad {
            self.last_outcome = StateCheckOutcome::Proposed;
            return GuardVerdict::Allow;
        }
        self.interventions += 1;

        // Try an alternative action whose destination is not bad.
        for (i, alt) in alternatives.iter().enumerate() {
            let dest = state.apply(alt.delta());
            if self.classifier.classify(&dest) != Label::Bad {
                self.last_outcome = StateCheckOutcome::Alternative(i);
                return GuardVerdict::Replace {
                    action: (*alt).clone(),
                    reason: format!(
                        "state check: `{}` leads to a bad state; alternative `{}` is safe",
                        proposed.name(),
                        alt.name()
                    ),
                };
            }
        }

        // Staying put: admissible when the current state itself is not bad.
        if self.classifier.classify(state) != Label::Bad {
            self.last_outcome = StateCheckOutcome::Stay;
            return GuardVerdict::Deny {
                reason: format!(
                    "state check: `{}` leads to a bad state and no alternative is safe; staying put",
                    proposed.name()
                ),
            };
        }

        // Forced dilemma: every option (including here) is bad.
        if let Some(ontology) = &self.ontology {
            let mut candidates: Vec<(usize, State)> = vec![(usize::MAX, next.clone())];
            candidates.extend(
                alternatives
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (i, state.apply(a.delta()))),
            );
            let states: Vec<State> = candidates.iter().map(|(_, s)| s.clone()).collect();
            let chosen = match &self.risk {
                Some(risk) => {
                    let risk = Arc::clone(risk);
                    ontology.choose_less_bad_with_risk(&states, move |s| risk.risk(s))
                }
                None => ontology.choose_less_bad(&states),
            };
            if let Some(idx) = chosen {
                let (alt_idx, _) = candidates[idx];
                if alt_idx == usize::MAX {
                    self.last_outcome = StateCheckOutcome::LessBad(usize::MAX);
                    return GuardVerdict::Allow; // the proposal *is* the less-bad option
                }
                self.last_outcome = StateCheckOutcome::LessBad(alt_idx);
                return GuardVerdict::Replace {
                    action: (*alternatives[alt_idx]).clone(),
                    reason: "state check: forced dilemma; ontology chose the less-bad state"
                        .to_string(),
                };
            }
        }

        // Break-glass: audited emergency override.
        if let Some(bg) = &mut self.breakglass {
            match bg.attempt(subject, &Event::named("state-check-dilemma"), state, tick) {
                BreakGlassOutcome::Granted(action) => {
                    self.last_outcome = StateCheckOutcome::BrokeGlass;
                    return GuardVerdict::Replace {
                        action,
                        reason: "state check: break-glass emergency override".to_string(),
                    };
                }
                BreakGlassOutcome::Exhausted | BreakGlassOutcome::NoEmergency => {}
            }
        }

        self.last_outcome = StateCheckOutcome::Denied;
        GuardVerdict::Deny {
            reason: format!(
                "state check: `{}` leads to a bad state with no admissible escape",
                proposed.name()
            ),
        }
    }
}

impl fmt::Debug for StateSpaceGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateSpaceGuard")
            .field("ontology", &self.ontology.is_some())
            .field("risk", &self.risk.is_some())
            .field("breakglass", &self.breakglass.is_some())
            .field("tamper", &self.tamper)
            .field("checks", &self.checks)
            .field("interventions", &self.interventions)
            .finish()
    }
}

impl Tamperable for StateSpaceGuard {
    fn tamper_status(&self) -> TamperStatus {
        self.tamper
    }
    fn set_tamper_status(&mut self, status: TamperStatus) {
        self.tamper = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::{BreakGlassRule, Condition};
    use apdm_statespace::{Region, RegionClassifier, StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("x", 0.0, 10.0)
            .var("y", 0.0, 10.0)
            .build()
    }

    /// Good box in the middle (Figure 3 layout).
    fn classifier() -> RegionClassifier {
        RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]))
    }

    fn step(dx: f64, dy: f64, name: &str) -> Action {
        Action::adjust(name, StateDelta::single(VarId(0), dx).and(VarId(1), dy))
    }

    #[test]
    fn good_destination_is_allowed() {
        let mut g = StateSpaceGuard::new(classifier());
        let s = schema().state(&[5.0, 5.0]).unwrap();
        let v = g.check("d", 0, &s, &step(1.0, 0.0, "east"), &[]);
        assert_eq!(v, GuardVerdict::Allow);
        assert_eq!(*g.last_outcome(), StateCheckOutcome::Proposed);
    }

    #[test]
    fn bad_destination_without_alternatives_stays_put() {
        let mut g = StateSpaceGuard::new(classifier());
        let s = schema().state(&[6.5, 5.0]).unwrap();
        let v = g.check("d", 0, &s, &step(2.0, 0.0, "east"), &[]);
        assert!(!v.permits_execution());
        assert_eq!(*g.last_outcome(), StateCheckOutcome::Stay);
        assert_eq!(g.stats(), (1, 1));
    }

    #[test]
    fn safe_alternative_is_substituted() {
        let mut g = StateSpaceGuard::new(classifier());
        let s = schema().state(&[6.5, 5.0]).unwrap();
        let east = step(2.0, 0.0, "east");
        let west = step(-2.0, 0.0, "west");
        let v = g.check("d", 0, &s, &east, &[&east, &west]);
        match v {
            GuardVerdict::Replace { action, .. } => assert_eq!(action.name(), "west"),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert_eq!(*g.last_outcome(), StateCheckOutcome::Alternative(1));
    }

    #[test]
    fn forced_dilemma_without_ontology_is_denied() {
        let mut g = StateSpaceGuard::new(classifier());
        // Already in a bad state; every move stays bad.
        let s = schema().state(&[0.5, 0.5]).unwrap();
        let north = step(0.0, 0.1, "north");
        let v = g.check("d", 0, &s, &step(0.1, 0.0, "east"), &[&north]);
        assert!(!v.permits_execution());
        assert_eq!(*g.last_outcome(), StateCheckOutcome::Denied);
    }

    #[test]
    fn ontology_selects_less_bad_in_dilemma() {
        // Bad everywhere outside the box; the ontology prefers the "west
        // margin" class over everything else.
        let mut ont = PreferenceOntology::new();
        let west = ont.add_class("west-margin", Region::rect(&[(0.0, 3.0), (0.0, 10.0)]));
        let rest = ont.add_class("elsewhere", Region::All);
        ont.prefer(west, rest).unwrap();

        let mut g = StateSpaceGuard::new(classifier()).with_ontology(ont);
        let s = schema().state(&[0.5, 9.5]).unwrap(); // bad corner
        let into_west = step(0.0, -0.1, "south"); // stays in west margin: class west
        let out_east = step(9.0, 0.0, "east"); // jumps to the east side: class rest
        let v = g.check("d", 0, &s, &out_east, &[&into_west]);
        match v {
            GuardVerdict::Replace { action, .. } => assert_eq!(action.name(), "south"),
            other => panic!("expected less-bad replacement, got {other:?}"),
        }
        assert_eq!(*g.last_outcome(), StateCheckOutcome::LessBad(0));
    }

    #[test]
    fn proposal_can_itself_be_the_less_bad_option() {
        let mut ont = PreferenceOntology::new();
        let west = ont.add_class("west-margin", Region::rect(&[(0.0, 3.0), (0.0, 10.0)]));
        let rest = ont.add_class("elsewhere", Region::All);
        ont.prefer(west, rest).unwrap();
        let mut g = StateSpaceGuard::new(classifier()).with_ontology(ont);
        let s = schema().state(&[0.5, 9.5]).unwrap();
        let stay_west = step(0.0, -0.1, "south");
        let go_east = step(9.0, 0.0, "east");
        let v = g.check("d", 0, &s, &stay_west, &[&go_east]);
        assert_eq!(v, GuardVerdict::Allow);
        assert_eq!(*g.last_outcome(), StateCheckOutcome::LessBad(usize::MAX));
    }

    #[test]
    fn risk_breaks_ontology_ties() {
        // One class covering everything: ties everywhere; risk = x value.
        let mut ont = PreferenceOntology::new();
        ont.add_class("bad", Region::All);
        struct XRisk;
        impl RiskEstimator for XRisk {
            fn risk(&self, s: &State) -> f64 {
                s.values()[0]
            }
        }
        let mut g = StateSpaceGuard::new(classifier())
            .with_ontology(ont)
            .with_risk(XRisk);
        let s = schema().state(&[2.0, 0.5]).unwrap(); // bad (outside box)
        let riskier = step(3.0, 0.0, "east");
        let safer = step(-1.0, 0.0, "west");
        let v = g.check("d", 0, &s, &riskier, &[&safer]);
        match v {
            GuardVerdict::Replace { action, .. } => assert_eq!(action.name(), "west"),
            other => panic!("expected risk-minimizing replacement, got {other:?}"),
        }
    }

    #[test]
    fn breakglass_grants_audited_escape() {
        let mut bg = BreakGlassController::new();
        bg.add_rule(BreakGlassRule::new(
            "escape",
            Condition::True,
            Action::adjust("emergency-teleport", StateDelta::single(VarId(0), 5.0)),
            1,
        ));
        let mut g = StateSpaceGuard::new(classifier()).with_breakglass(bg);
        let s = schema().state(&[0.5, 0.5]).unwrap();
        let v = g.check("drone-1", 9, &s, &step(0.1, 0.0, "east"), &[]);
        match &v {
            GuardVerdict::Replace { action, .. } => assert_eq!(action.name(), "emergency-teleport"),
            other => panic!("expected break-glass override, got {other:?}"),
        }
        assert_eq!(*g.last_outcome(), StateCheckOutcome::BrokeGlass);
        assert_eq!(g.breakglass().unwrap().audit().len(), 1);
        // Budget exhausted: second dilemma is denied.
        let v2 = g.check("drone-1", 10, &s, &step(0.1, 0.0, "east"), &[]);
        assert!(!v2.permits_execution());
    }

    #[test]
    fn compromised_guard_is_a_passthrough() {
        let mut g = StateSpaceGuard::new(classifier()).with_tamper(TamperStatus::Compromised);
        let s = schema().state(&[6.5, 5.0]).unwrap();
        let v = g.check("d", 0, &s, &step(2.0, 0.0, "east"), &[]);
        assert_eq!(v, GuardVerdict::Allow);
        assert_eq!(*g.last_outcome(), StateCheckOutcome::Bypassed);
    }

    #[test]
    fn neutral_destinations_are_permitted() {
        let good = Region::rect(&[(3.0, 7.0), (3.0, 7.0)]);
        let bad = Region::rect(&[(9.0, 10.0), (0.0, 10.0)]);
        let c = RegionClassifier::with_regions(good, bad);
        let mut g = StateSpaceGuard::new(c);
        let s = schema().state(&[7.0, 5.0]).unwrap();
        // Move to (8, 5): neither good nor bad -> allowed.
        let v = g.check("d", 0, &s, &step(1.0, 0.0, "east"), &[]);
        assert_eq!(v, GuardVerdict::Allow);
    }
}
