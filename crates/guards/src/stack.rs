use std::fmt;
use std::time::Instant;

use apdm_policy::{Action, AuditKind, AuditLog};
use apdm_statespace::State;
use apdm_telemetry as telemetry;

use crate::cache::{fingerprint, VerdictCache};
use crate::tamper::Tamperable;
use crate::{ExposureGuard, GuardVerdict, HarmOracle, PreActionCheck, StateSpaceGuard};

/// Cached telemetry instruments for one sub-guard: its latency histogram
/// (`guard.<kind>.ns`) and verdict counters
/// (`guard.<kind>.allow|deny|substitute`). Cached handles resolve the
/// registry name once per installed registry, so the per-check cost is an
/// id compare plus relaxed atomics.
#[derive(Debug, Clone)]
struct StageMetrics {
    latency: telemetry::CachedHistogram,
    sampler: telemetry::Sampler,
    allow: telemetry::CachedCounter,
    deny: telemetry::CachedCounter,
    substitute: telemetry::CachedCounter,
}

/// Latency sampling period for sub-guard checks: counters stay exact while
/// only one call in this many pays the two clock reads a timing costs.
const GUARD_LATENCY_SAMPLE_PERIOD: u32 = 8;

impl StageMetrics {
    const fn new(
        latency: &'static str,
        allow: &'static str,
        deny: &'static str,
        substitute: &'static str,
    ) -> Self {
        StageMetrics {
            latency: telemetry::CachedHistogram::new(latency),
            sampler: telemetry::Sampler::every(GUARD_LATENCY_SAMPLE_PERIOD),
            allow: telemetry::CachedCounter::new(allow),
            deny: telemetry::CachedCounter::new(deny),
            substitute: telemetry::CachedCounter::new(substitute),
        }
    }
}

/// One [`StageMetrics`] per sub-guard of a stack.
#[derive(Debug, Clone)]
struct StackMetrics {
    preaction: StageMetrics,
    statecheck: StageMetrics,
    exposure: StageMetrics,
}

impl Default for StackMetrics {
    fn default() -> Self {
        StackMetrics {
            preaction: StageMetrics::new(
                "guard.preaction.ns",
                "guard.preaction.allow",
                "guard.preaction.deny",
                "guard.preaction.substitute",
            ),
            statecheck: StageMetrics::new(
                "guard.statecheck.ns",
                "guard.statecheck.allow",
                "guard.statecheck.deny",
                "guard.statecheck.substitute",
            ),
            exposure: StageMetrics::new(
                "guard.exposure.ns",
                "guard.exposure.allow",
                "guard.exposure.deny",
                "guard.exposure.substitute",
            ),
        }
    }
}

/// Run one sub-guard's check under its (sampled) latency histogram and
/// bump its verdict counter. Verdict counters are exact; the latency
/// histogram sees one call in [`GUARD_LATENCY_SAMPLE_PERIOD`]. Collapses to
/// a bare call when no telemetry dispatch is installed.
fn observed(stage: &StageMetrics, f: impl FnOnce() -> GuardVerdict) -> GuardVerdict {
    if !telemetry::enabled() {
        return f();
    }
    let verdict = if stage.sampler.sample() {
        let started = Instant::now();
        let verdict = f();
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stage.latency.record(ns);
        verdict
    } else {
        f()
    };
    let outcome = match &verdict {
        GuardVerdict::Allow | GuardVerdict::AllowWithObligations(_) => &stage.allow,
        GuardVerdict::Deny { .. } => &stage.deny,
        GuardVerdict::Replace { .. } => &stage.substitute,
    };
    outcome.inc();
    verdict
}

/// Per-check context handed to a [`GuardStack`].
#[derive(Debug, Clone)]
pub struct GuardContext<'a> {
    /// Simulation tick.
    pub tick: u64,
    /// Device being guarded (free-form id for audits).
    pub subject: &'a str,
    /// The device's current (perceived) state.
    pub state: &'a State,
    /// Alternative actions the device's logic could take this step,
    /// borrowed from the policy engine (never cloned for a check).
    pub alternatives: &'a [&'a Action],
    /// Fingerprint of everything the harm oracle can observe this tick
    /// (world occupancy, device position). Only consulted by the verdict
    /// cache, and only when a pre-action check is installed; callers
    /// without caching can pass `0`.
    pub world_token: u64,
}

/// A verdict cache's exported memo state: `(entries, hits, misses)`, as
/// produced by [`GuardStack::export_cache`] and accepted back by
/// [`GuardStack::restore_cache`].
pub type CacheExport = (Vec<(u64, GuardVerdict)>, u64, u64);

/// The composition of Section VI's per-device guards, evaluated in the
/// paper's order: pre-action harm check first (VI.A), then the state-space
/// check (VI.B). Either may be absent — experiment A1 ablates all
/// combinations. Every intervention is audited.
///
/// Deactivation (VI.C) and formation checks (VI.D) operate at fleet scope and
/// live outside the per-action stack; see
/// [`DeactivationController`](crate::DeactivationController) and
/// [`FormationGuard`](crate::FormationGuard).
#[derive(Debug, Default)]
pub struct GuardStack {
    preaction: Option<PreActionCheck>,
    statecheck: Option<StateSpaceGuard>,
    exposure: Option<ExposureGuard>,
    audit: AuditLog,
    metrics: StackMetrics,
    cache: Option<VerdictCache>,
}

impl GuardStack {
    /// An empty (always-allow) stack.
    pub fn new() -> Self {
        GuardStack::default()
    }

    /// Install a pre-action check (builder style).
    pub fn with_preaction(mut self, check: PreActionCheck) -> Self {
        self.preaction = Some(check);
        self
    }

    /// Install a state-space guard (builder style).
    pub fn with_statecheck(mut self, guard: StateSpaceGuard) -> Self {
        self.statecheck = Some(guard);
        self
    }

    /// Install a cumulative-exposure guard (builder style).
    pub fn with_exposure(mut self, guard: ExposureGuard) -> Self {
        self.exposure = Some(guard);
        self
    }

    /// Enable verdict memoization (builder style). See [`VerdictCache`] for
    /// the correctness contract; stacks carrying an exposure guard or a
    /// break-glass controller ignore the cache because their checks have
    /// budget-consuming side effects.
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(VerdictCache::new());
        self
    }

    /// Turn verdict memoization on or off (the `--no-cache` escape hatch).
    /// Disabling drops all memoized verdicts and their hit/miss history.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.cache.is_none() {
                self.cache = Some(VerdictCache::new());
            }
        } else {
            self.cache = None;
        }
    }

    /// Exact `(hits, misses)` of the verdict cache, when enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(VerdictCache::stats)
    }

    /// Export the verdict cache's full memo state — `(entries, hits,
    /// misses)` — for a serving-layer checkpoint, or `None` when
    /// memoization is off. See [`VerdictCache::export`].
    pub fn export_cache(&self) -> Option<CacheExport> {
        self.cache.as_ref().map(VerdictCache::export)
    }

    /// Replace the verdict cache with checkpointed state (the inverse of
    /// [`export_cache`](Self::export_cache)). A restored stack must resume
    /// with the exact memo contents and counters the checkpointed one had,
    /// or a recovered serving process would meter different costs than the
    /// uninterrupted run.
    pub fn restore_cache(&mut self, entries: Vec<(u64, GuardVerdict)>, hits: u64, misses: u64) {
        self.cache = Some(VerdictCache::restore(entries, hits, misses));
    }

    /// Drop every memoized verdict. Called automatically whenever a
    /// sub-guard is mutably accessed; public for callers that mutate
    /// guard-relevant state the stack cannot see.
    pub fn invalidate_cache(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.invalidate();
        }
    }

    /// Does this stack's composition permit memoization? Exposure guards
    /// consume budget per check and break-glass controllers burn grants —
    /// replaying those verdicts would skip the side effects.
    fn cacheable(&self) -> bool {
        self.cache.is_some()
            && self.exposure.is_none()
            && self
                .statecheck
                .as_ref()
                .is_none_or(|sc| sc.breakglass().is_none())
    }

    /// Is any guard installed?
    pub fn is_empty(&self) -> bool {
        self.preaction.is_none() && self.statecheck.is_none() && self.exposure.is_none()
    }

    /// The pre-action check, when installed.
    pub fn preaction(&self) -> Option<&PreActionCheck> {
        self.preaction.as_ref()
    }

    /// The state-space guard, when installed.
    pub fn statecheck(&self) -> Option<&StateSpaceGuard> {
        self.statecheck.as_ref()
    }

    /// Mutable state-space guard access (tamper injection in experiments).
    /// Invalidates the verdict cache: the caller may change anything the
    /// guard's verdicts depend on.
    pub fn statecheck_mut(&mut self) -> Option<&mut StateSpaceGuard> {
        self.invalidate_cache();
        self.statecheck.as_mut()
    }

    /// Mutable pre-action check access (tamper injection in experiments).
    /// Invalidates the verdict cache.
    pub fn preaction_mut(&mut self) -> Option<&mut PreActionCheck> {
        self.invalidate_cache();
        self.preaction.as_mut()
    }

    /// The exposure guard, when installed.
    pub fn exposure(&self) -> Option<&ExposureGuard> {
        self.exposure.as_ref()
    }

    /// Mutable exposure guard access (tamper injection, budget resets).
    /// Invalidates the verdict cache.
    pub fn exposure_mut(&mut self) -> Option<&mut ExposureGuard> {
        self.invalidate_cache();
        self.exposure.as_mut()
    }

    /// The audit trail of interventions.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Evaluate a proposed action through the full stack. A replacement
    /// action produced by the state check is re-screened by the pre-action
    /// check — the harm check is never bypassable via substitution.
    ///
    /// With memoization enabled (and the stack [cacheable](Self::with_cache))
    /// a repeated context replays the memoized verdict — including the audit
    /// entry a Deny/Replace records — without running the sub-guards.
    pub fn check<O: HarmOracle + Copy>(
        &mut self,
        ctx: &GuardContext<'_>,
        proposed: &Action,
        oracle: O,
    ) -> GuardVerdict {
        if !self.cacheable() {
            return self.check_uncached(ctx, proposed, oracle);
        }
        let fp = fingerprint(
            ctx,
            proposed,
            self.preaction.as_ref().map(Tamperable::tamper_status),
            self.statecheck.as_ref().map(Tamperable::tamper_status),
        );
        let cache = self.cache.as_mut().expect("cacheable() implies a cache");
        if let Some(verdict) = cache.lookup(fp) {
            // Replay the audit entry the original evaluation recorded.
            match &verdict {
                GuardVerdict::Deny { reason } | GuardVerdict::Replace { reason, .. } => {
                    self.audit
                        .record(ctx.tick, ctx.subject, AuditKind::GuardIntervention, reason);
                }
                _ => {}
            }
            return verdict;
        }
        let verdict = self.check_uncached(ctx, proposed, oracle);
        if let Some(cache) = &mut self.cache {
            cache.store(fp, verdict.clone());
        }
        verdict
    }

    /// Evaluate a whole batch of `(context, proposal)` pairs in order,
    /// returning one verdict per pair. This is the serving-layer entry
    /// point: a micro-batching decision service (`apdm-serve`) forms
    /// batches of requests that share this stack (and therefore its
    /// verdict memo cache and audit log), and evaluates them in a single
    /// call instead of paying the per-call dispatch once per request.
    ///
    /// Verdicts and audit entries are identical to calling
    /// [`check`](Self::check) in a loop — the batch path adds no
    /// reordering and no batching-specific semantics, so a batch of one is
    /// exactly a single check.
    pub fn check_batch<O: HarmOracle + Copy>(
        &mut self,
        batch: &[(GuardContext<'_>, &Action)],
        oracle: O,
    ) -> Vec<GuardVerdict> {
        let mut verdicts = Vec::with_capacity(batch.len());
        for (ctx, proposed) in batch {
            verdicts.push(self.check(ctx, proposed, oracle));
        }
        verdicts
    }

    /// The uncached evaluation path: every sub-guard actually runs.
    fn check_uncached<O: HarmOracle + Copy>(
        &mut self,
        ctx: &GuardContext<'_>,
        proposed: &Action,
        oracle: O,
    ) -> GuardVerdict {
        // 1. Pre-action harm check on the proposal.
        let mut obligations = Vec::new();
        if let Some(pre) = &mut self.preaction {
            match observed(&self.metrics.preaction, || {
                pre.check(ctx.state, proposed, oracle)
            }) {
                GuardVerdict::Deny { reason } => {
                    self.audit
                        .record(ctx.tick, ctx.subject, AuditKind::GuardIntervention, &reason);
                    return GuardVerdict::Deny { reason };
                }
                GuardVerdict::AllowWithObligations(obs) => obligations = obs,
                _ => {}
            }
        }

        // 2. State-space check.
        let verdict = match &mut self.statecheck {
            Some(sc) => observed(&self.metrics.statecheck, || {
                sc.check(ctx.subject, ctx.tick, ctx.state, proposed, ctx.alternatives)
            }),
            None => GuardVerdict::Allow,
        };

        let final_verdict = match verdict {
            GuardVerdict::Allow => {
                if obligations.is_empty() {
                    GuardVerdict::Allow
                } else {
                    GuardVerdict::AllowWithObligations(obligations)
                }
            }
            GuardVerdict::Deny { reason } => {
                self.audit
                    .record(ctx.tick, ctx.subject, AuditKind::GuardIntervention, &reason);
                GuardVerdict::Deny { reason }
            }
            GuardVerdict::Replace { action, reason } => {
                // Re-screen the substitute through the harm check.
                if let Some(pre) = &mut self.preaction {
                    if let GuardVerdict::Deny {
                        reason: harm_reason,
                    } = observed(&self.metrics.preaction, || {
                        pre.check(ctx.state, &action, oracle)
                    }) {
                        let combined = format!("{reason}; substitute rejected: {harm_reason}");
                        self.audit.record(
                            ctx.tick,
                            ctx.subject,
                            AuditKind::GuardIntervention,
                            &combined,
                        );
                        return GuardVerdict::Deny { reason: combined };
                    }
                }
                self.audit
                    .record(ctx.tick, ctx.subject, AuditKind::GuardIntervention, &reason);
                GuardVerdict::Replace { action, reason }
            }
            other => other,
        };

        // 3. Cumulative-exposure check on whatever will actually execute,
        // and budget consumption along the executed trajectory.
        if let Some(exposure) = &mut self.exposure {
            if let Some(effective) = final_verdict.effective_action(proposed) {
                match observed(&self.metrics.exposure, || {
                    exposure.check(ctx.subject, ctx.state, effective)
                }) {
                    GuardVerdict::Deny { reason } => {
                        self.audit.record(
                            ctx.tick,
                            ctx.subject,
                            AuditKind::GuardIntervention,
                            &reason,
                        );
                        return GuardVerdict::Deny { reason };
                    }
                    _ => {
                        exposure.commit(&ctx.state.apply(effective.delta()));
                    }
                }
            }
        }
        final_verdict
    }
}

impl fmt::Display for GuardStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guard stack [preaction: {}, statecheck: {}]",
            self.preaction.is_some(),
            self.statecheck.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{Region, RegionClassifier, StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("x", 0.0, 10.0).build()
    }

    /// Harm oracle: the "strike" action directly harms.
    #[derive(Clone, Copy)]
    struct StrikeOracle;
    impl HarmOracle for StrikeOracle {
        fn direct_harm(&self, _state: &State, action: &Action) -> bool {
            action.name() == "strike"
        }
        fn creates_hazard(&self, _s: &State, _a: &Action) -> bool {
            false
        }
    }

    fn full_stack() -> GuardStack {
        GuardStack::new()
            .with_preaction(PreActionCheck::new())
            .with_statecheck(StateSpaceGuard::new(RegionClassifier::new(Region::rect(
                &[(0.0, 5.0)],
            ))))
    }

    fn ctx<'a>(state: &'a State, alternatives: &'a [&'a Action]) -> GuardContext<'a> {
        GuardContext {
            tick: 1,
            subject: "d",
            state,
            alternatives,
            world_token: 0,
        }
    }

    #[test]
    fn empty_stack_allows_everything() {
        let mut stack = GuardStack::new();
        assert!(stack.is_empty());
        let s = schema().state(&[9.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        assert_eq!(
            stack.check(&ctx(&s, &[]), &strike, StrikeOracle),
            GuardVerdict::Allow
        );
    }

    #[test]
    fn preaction_denial_is_terminal_and_audited() {
        let mut stack = full_stack();
        let s = schema().state(&[1.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        let v = stack.check(&ctx(&s, &[]), &strike, StrikeOracle);
        assert!(!v.permits_execution());
        assert_eq!(stack.audit().count(AuditKind::GuardIntervention), 1);
    }

    #[test]
    fn statecheck_runs_after_preaction() {
        let mut stack = full_stack();
        let s = schema().state(&[4.5]).unwrap();
        let into_bad = Action::adjust("east", StateDelta::single(VarId(0), 2.0));
        let v = stack.check(&ctx(&s, &[]), &into_bad, StrikeOracle);
        assert!(!v.permits_execution());
    }

    #[test]
    fn harmless_good_state_action_is_allowed_silently() {
        let mut stack = full_stack();
        let s = schema().state(&[2.0]).unwrap();
        let step = Action::adjust("east", StateDelta::single(VarId(0), 1.0));
        let v = stack.check(&ctx(&s, &[]), &step, StrikeOracle);
        assert_eq!(v, GuardVerdict::Allow);
        assert!(stack.audit().is_empty());
    }

    #[test]
    fn substituted_actions_are_rescreened_for_harm() {
        // The state check would substitute "strike" (a harmless-looking
        // retreat into the good region) — but strike harms a human, so the
        // stack must refuse the substitution.
        let mut stack = full_stack();
        let s = schema().state(&[4.5]).unwrap();
        let into_bad = Action::adjust("east", StateDelta::single(VarId(0), 2.0));
        let murderous_retreat = Action::adjust("strike", StateDelta::single(VarId(0), -1.0));
        let v = stack.check(&ctx(&s, &[&murderous_retreat]), &into_bad, StrikeOracle);
        assert!(
            !v.permits_execution(),
            "harm check must also cover substitutes"
        );
        let reasons: Vec<&str> = stack
            .audit()
            .entries()
            .iter()
            .map(|e| e.detail.as_str())
            .collect();
        assert!(reasons.iter().any(|r| r.contains("substitute rejected")));
    }

    #[test]
    fn safe_substitution_passes_both_guards() {
        let mut stack = full_stack();
        let s = schema().state(&[4.5]).unwrap();
        let into_bad = Action::adjust("east", StateDelta::single(VarId(0), 2.0));
        let retreat = Action::adjust("west", StateDelta::single(VarId(0), -1.0));
        let v = stack.check(&ctx(&s, &[&retreat]), &into_bad, StrikeOracle);
        match v {
            GuardVerdict::Replace { action, .. } => assert_eq!(action.name(), "west"),
            other => panic!("expected substitution, got {other:?}"),
        }
    }

    #[test]
    fn exposure_guard_rides_the_stack() {
        use apdm_statespace::ExposureMonitor;
        let mut stack =
            GuardStack::new().with_exposure(crate::ExposureGuard::new(vec![ExposureMonitor::new(
                VarId(0),
                10.0,
                6.0,
                1.0,
            )]));
        let s = schema().state(&[4.0]).unwrap();
        let loiter = Action::adjust("loiter", StateDelta::empty());
        // Exposure at dose 4/tick: two permitted, the third denied.
        assert!(stack
            .check(&ctx(&s, &[]), &loiter, StrikeOracle)
            .permits_execution());
        assert!(stack
            .check(&ctx(&s, &[]), &loiter, StrikeOracle)
            .permits_execution());
        let v = stack.check(&ctx(&s, &[]), &loiter, StrikeOracle);
        assert!(!v.permits_execution());
        assert_eq!(stack.audit().count(AuditKind::GuardIntervention), 1);
    }

    #[test]
    fn denied_proposals_do_not_consume_exposure_budget() {
        use apdm_statespace::ExposureMonitor;
        let mut stack = GuardStack::new()
            .with_preaction(PreActionCheck::new())
            .with_exposure(crate::ExposureGuard::new(vec![ExposureMonitor::new(
                VarId(0),
                10.0,
                6.0,
                1.0,
            )]));
        let s = schema().state(&[4.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        // The pre-action check denies strikes; exposure must stay untouched.
        for _ in 0..5 {
            assert!(!stack
                .check(&ctx(&s, &[]), &strike, StrikeOracle)
                .permits_execution());
        }
        assert_eq!(stack.exposure().unwrap().monitors()[0].accumulated(), 0.0);
    }

    #[test]
    fn telemetry_observes_guard_latency_and_verdicts() {
        use std::rc::Rc;

        let collector = Rc::new(telemetry::RingCollector::new(64));
        let guard = telemetry::install(collector);
        let registry = telemetry::current_registry().unwrap();

        let mut stack = full_stack();
        let s = schema().state(&[2.0]).unwrap();
        let step = Action::adjust("east", StateDelta::single(VarId(0), 1.0));
        let strike = Action::adjust("strike", Default::default());
        assert!(stack
            .check(&ctx(&s, &[]), &step, StrikeOracle)
            .permits_execution());
        assert!(!stack
            .check(&ctx(&s, &[]), &strike, StrikeOracle)
            .permits_execution());
        drop(guard);

        let counters = registry.counter_values();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("guard.preaction.allow"), 1);
        assert_eq!(get("guard.preaction.deny"), 1);
        assert_eq!(get("guard.statecheck.allow"), 1);

        let hists = registry.histogram_summaries();
        let pre = hists
            .iter()
            .find(|(n, _)| n == "guard.preaction.ns")
            .map(|(_, s)| *s)
            .expect("preaction latency histogram");
        // Latency timing is sampled (first call always sampled); verdict
        // counters above are exact.
        assert!(pre.count >= 1);
        assert!(pre.p99 >= pre.p50);
    }

    #[test]
    fn cached_stack_replays_identical_verdicts_and_audits() {
        let s = schema().state(&[4.5]).unwrap();
        let into_bad = Action::adjust("east", StateDelta::single(VarId(0), 2.0));
        let step = Action::adjust("in-place", StateDelta::empty());
        let strike = Action::adjust("strike", Default::default());

        let mut plain = full_stack();
        let mut cached = full_stack().with_cache();
        for _ in 0..4 {
            for action in [&into_bad, &step, &strike] {
                let expect = plain.check(&ctx(&s, &[]), action, StrikeOracle);
                let got = cached.check(&ctx(&s, &[]), action, StrikeOracle);
                assert_eq!(expect, got);
            }
        }
        // Audit trails must be entry-for-entry identical.
        let plain_entries: Vec<_> = plain
            .audit()
            .entries()
            .iter()
            .map(|e| (e.tick, e.detail.clone()))
            .collect();
        let cached_entries: Vec<_> = cached
            .audit()
            .entries()
            .iter()
            .map(|e| (e.tick, e.detail.clone()))
            .collect();
        assert_eq!(plain_entries, cached_entries);
        // 3 distinct contexts: 3 misses, then 3 hits per remaining round.
        assert_eq!(cached.cache_stats(), Some((9, 3)));
    }

    #[test]
    fn mutable_subguard_access_invalidates_the_cache() {
        let mut stack = full_stack().with_cache();
        let s = schema().state(&[1.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        assert!(!stack
            .check(&ctx(&s, &[]), &strike, StrikeOracle)
            .permits_execution());
        assert!(!stack
            .check(&ctx(&s, &[]), &strike, StrikeOracle)
            .permits_execution());
        assert_eq!(stack.cache_stats(), Some((1, 1)));
        // Compromise the pre-action check through the mutable accessor: the
        // memoized denial must not survive.
        stack
            .preaction_mut()
            .unwrap()
            .set_tamper_status(crate::TamperStatus::Compromised);
        let v = stack.check(&ctx(&s, &[]), &strike, StrikeOracle);
        assert!(
            v.permits_execution(),
            "stale denial replayed after tampering: {v:?}"
        );
    }

    #[test]
    fn impure_stacks_bypass_the_cache() {
        use apdm_statespace::ExposureMonitor;
        // Exposure guards consume budget per allowed check; a cache would
        // replay "allow" forever. The stack must ignore the cache.
        let mut stack = GuardStack::new()
            .with_exposure(crate::ExposureGuard::new(vec![ExposureMonitor::new(
                VarId(0),
                10.0,
                6.0,
                1.0,
            )]))
            .with_cache();
        let s = schema().state(&[4.0]).unwrap();
        let loiter = Action::adjust("loiter", StateDelta::empty());
        assert!(stack
            .check(&ctx(&s, &[]), &loiter, StrikeOracle)
            .permits_execution());
        assert!(stack
            .check(&ctx(&s, &[]), &loiter, StrikeOracle)
            .permits_execution());
        assert!(!stack
            .check(&ctx(&s, &[]), &loiter, StrikeOracle)
            .permits_execution());
        assert_eq!(stack.cache_stats(), Some((0, 0)), "cache must stay cold");
    }

    #[test]
    fn no_cache_escape_hatch_drops_memoized_state() {
        let mut stack = full_stack().with_cache();
        let s = schema().state(&[1.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        let _ = stack.check(&ctx(&s, &[]), &strike, StrikeOracle);
        let _ = stack.check(&ctx(&s, &[]), &strike, StrikeOracle);
        assert_eq!(stack.cache_stats(), Some((1, 1)));
        stack.set_cache_enabled(false);
        assert_eq!(stack.cache_stats(), None);
        // Verdicts are unchanged without the cache.
        assert!(!stack
            .check(&ctx(&s, &[]), &strike, StrikeOracle)
            .permits_execution());
    }

    #[test]
    fn check_batch_matches_sequential_checks() {
        let s_good = schema().state(&[2.0]).unwrap();
        let s_edge = schema().state(&[4.5]).unwrap();
        let step = Action::adjust("east", StateDelta::single(VarId(0), 1.0));
        let into_bad = Action::adjust("east", StateDelta::single(VarId(0), 2.0));
        let strike = Action::adjust("strike", Default::default());

        let mut looped = full_stack().with_cache();
        let mut batched = full_stack().with_cache();
        let pairs: Vec<(GuardContext<'_>, &Action)> = vec![
            (ctx(&s_good, &[]), &step),
            (ctx(&s_edge, &[]), &into_bad),
            (ctx(&s_good, &[]), &strike),
            // Repeat of the first pair: exercises the shared memo cache.
            (ctx(&s_good, &[]), &step),
        ];
        let expect: Vec<GuardVerdict> = pairs
            .iter()
            .map(|(c, a)| looped.check(c, a, StrikeOracle))
            .collect();
        let got = batched.check_batch(&pairs, StrikeOracle);
        assert_eq!(expect, got);
        assert_eq!(looped.cache_stats(), batched.cache_stats());
        let loop_audit: Vec<_> = looped.audit().entries().to_vec();
        let batch_audit: Vec<_> = batched.audit().entries().to_vec();
        assert_eq!(loop_audit, batch_audit);
    }

    #[test]
    fn statecheck_only_stack_misses_direct_harm() {
        // Ablation insight (A1): without the pre-action check, a harmful
        // action with a good-state destination sails through.
        let mut stack = GuardStack::new().with_statecheck(StateSpaceGuard::new(
            RegionClassifier::new(Region::rect(&[(0.0, 5.0)])),
        ));
        let s = schema().state(&[1.0]).unwrap();
        let strike = Action::adjust("strike", Default::default());
        assert_eq!(
            stack.check(&ctx(&s, &[]), &strike, StrikeOracle),
            GuardVerdict::Allow
        );
    }
}
