use std::collections::BTreeMap;
use std::fmt;

use apdm_policy::{AuditKind, AuditLog};
use apdm_statespace::{Classifier, Label, State};
use serde::{Deserialize, Serialize};

use crate::tamper::{TamperStatus, Tamperable};

/// An order to deactivate a device, produced by the controllers below and
/// executed by the fleet runner (which calls `Device::deactivate`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeactivationOrder {
    /// The device to deactivate (free-form id).
    pub subject: String,
    /// Why.
    pub reason: String,
    /// Tick the order was issued.
    pub tick: u64,
}

/// Section VI.C: "devices that go into a bad state or are prone to take
/// actions that make them go into a bad state, can be deactivated by a
/// tamper-proof mechanism."
///
/// The controller watches per-device state reports; a device observed in a
/// bad state `threshold` times (consecutively or not) earns a
/// [`DeactivationOrder`]. Every order is audited.
///
/// # Example
///
/// ```
/// use apdm_guards::DeactivationController;
/// use apdm_statespace::{Region, RegionClassifier, StateSchema};
///
/// let schema = StateSchema::builder().var("x", 0.0, 10.0).build();
/// let classifier = RegionClassifier::new(Region::rect(&[(0.0, 5.0)]));
/// let mut ctl = DeactivationController::new(classifier, 2);
///
/// let bad = schema.state(&[9.0]).unwrap();
/// assert!(ctl.observe("rogue", &bad, 1).is_none()); // first strike
/// let order = ctl.observe("rogue", &bad, 2).unwrap(); // second strike
/// assert_eq!(order.subject, "rogue");
/// ```
pub struct DeactivationController {
    classifier: Box<dyn Classifier + Send + Sync>,
    threshold: u32,
    strikes: BTreeMap<String, u32>,
    deactivated: Vec<String>,
    audit: AuditLog,
    tamper: TamperStatus,
}

impl DeactivationController {
    /// A controller deactivating after `threshold` bad-state observations.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is zero.
    pub fn new(classifier: impl Classifier + Send + Sync + 'static, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        DeactivationController {
            classifier: Box::new(classifier),
            threshold,
            strikes: BTreeMap::new(),
            deactivated: Vec::new(),
            audit: AuditLog::new(),
            tamper: TamperStatus::Proof,
        }
    }

    /// Set the tamper status (builder style).
    pub fn with_tamper(mut self, status: TamperStatus) -> Self {
        self.tamper = status;
        self
    }

    /// Report a device's current state; returns an order when the strike
    /// threshold is reached (once per device).
    pub fn observe(
        &mut self,
        subject: &str,
        state: &State,
        tick: u64,
    ) -> Option<DeactivationOrder> {
        if !self.tamper.is_effective() {
            return None;
        }
        if self.deactivated.iter().any(|d| d == subject) {
            return None;
        }
        if self.classifier.classify(state) != Label::Bad {
            return None;
        }
        let strikes = self.strikes.entry(subject.to_string()).or_insert(0);
        *strikes += 1;
        if *strikes < self.threshold {
            return None;
        }
        self.deactivated.push(subject.to_string());
        let reason = format!("observed in a bad state {} times", self.threshold);
        self.audit
            .record(tick, subject, AuditKind::Deactivation, reason.clone());
        Some(DeactivationOrder {
            subject: subject.to_string(),
            reason,
            tick,
        })
    }

    /// Devices this controller has ordered deactivated.
    pub fn deactivated(&self) -> &[String] {
        &self.deactivated
    }

    /// Strike count for a device.
    pub fn strikes(&self, subject: &str) -> u32 {
        self.strikes.get(subject).copied().unwrap_or(0)
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }
}

impl fmt::Debug for DeactivationController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeactivationController")
            .field("threshold", &self.threshold)
            .field("deactivated", &self.deactivated.len())
            .field("tamper", &self.tamper)
            .finish()
    }
}

impl Tamperable for DeactivationController {
    fn tamper_status(&self) -> TamperStatus {
        self.tamper
    }
    fn set_tamper_status(&mut self, status: TamperStatus) {
        self.tamper = status;
    }
}

/// One watcher's assessment of one subject, as carried over the wire.
///
/// Ballots are the *only* way to move a [`QuorumKillSwitch`]; they are built
/// by watchers, shipped through the (lossy, duplicating, reordering) comms
/// layer, and applied at the coordinator with
/// [`QuorumKillSwitch::apply_ballot`]. `cast_tick` orders a watcher's
/// ballots about a subject: the switch applies each `(subject, watcher)`
/// cast at most once and drops older casts that arrive late, so duplicated
/// or reordered deliveries cannot stack votes or resurrect retractions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillBallot {
    /// The voting watcher (`< n_watchers`).
    pub watcher: usize,
    /// The device voted on (free-form id).
    pub subject: String,
    /// `true` = vote to kill, `false` = retract / vote healthy.
    pub rogue: bool,
    /// Tick the watcher cast this ballot (its dedup/ordering key).
    pub cast_tick: u64,
}

/// A quorum kill switch: deactivation requires `k` of `n` independent
/// watchers to concur, so that no single compromised watcher can either kill
/// a healthy device (false positive) or shield a rogue one (false negative).
/// This is the paper's separation-of-privilege principle (Section VI.D cites
/// Saltzer & Schroeder) applied to Section VI.C's mechanism.
///
/// Votes arrive as [`KillBallot`] messages — in a deployed fleet over the
/// lossy network via `apdm-comms` — and duplicated or stale deliveries are
/// dropped by the per-`(subject, watcher)` cast-tick dedup.
///
/// # Example
///
/// ```
/// use apdm_guards::{KillBallot, QuorumKillSwitch};
///
/// let mut quorum = QuorumKillSwitch::new(3, 2);
/// let ballot = |watcher| KillBallot {
///     watcher,
///     subject: "rogue".into(),
///     rogue: true,
///     cast_tick: 1,
/// };
/// assert!(quorum.apply_ballot(&ballot(0), 1).is_none());
/// let order = quorum.apply_ballot(&ballot(2), 1).unwrap();
/// assert_eq!(order.subject, "rogue");
/// // A duplicated delivery of watcher 2's ballot changes nothing.
/// assert!(quorum.apply_ballot(&ballot(2), 2).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct QuorumKillSwitch {
    n_watchers: usize,
    quorum: usize,
    /// subject -> watcher votes for the current round.
    votes: BTreeMap<String, Vec<usize>>,
    /// (subject, watcher) -> newest cast tick applied so far.
    last_cast: BTreeMap<(String, usize), u64>,
    killed: Vec<String>,
    audit: AuditLog,
}

impl QuorumKillSwitch {
    /// A switch with `n_watchers` watchers requiring `quorum` concurring
    /// votes.
    ///
    /// # Panics
    ///
    /// Panics when `quorum` is zero or exceeds `n_watchers`.
    pub fn new(n_watchers: usize, quorum: usize) -> Self {
        assert!(
            quorum > 0 && quorum <= n_watchers,
            "quorum must be in 1..=n_watchers"
        );
        QuorumKillSwitch {
            n_watchers,
            quorum,
            votes: BTreeMap::new(),
            last_cast: BTreeMap::new(),
            killed: Vec::new(),
            audit: AuditLog::new(),
        }
    }

    /// Apply a [`KillBallot`] delivered (possibly late, possibly more than
    /// once) by the network at tick `now`. Returns an order when the quorum
    /// is first reached.
    ///
    /// A ballot whose `cast_tick` is not strictly newer than the last applied
    /// cast for the same `(subject, watcher)` is dropped: duplicated
    /// deliveries never stack and a reordered older ballot never overrides a
    /// newer retraction.
    ///
    /// # Panics
    ///
    /// Panics for watcher ids `>= n_watchers`.
    pub fn apply_ballot(&mut self, ballot: &KillBallot, now: u64) -> Option<DeactivationOrder> {
        assert!(
            ballot.watcher < self.n_watchers,
            "unknown watcher {}",
            ballot.watcher
        );
        if self.killed.iter().any(|k| k == &ballot.subject) {
            return None;
        }
        let key = (ballot.subject.clone(), ballot.watcher);
        if let Some(&last) = self.last_cast.get(&key) {
            if ballot.cast_tick <= last {
                return None; // duplicate delivery, or stale reordered cast
            }
        }
        self.last_cast.insert(key, ballot.cast_tick);
        let votes = self.votes.entry(ballot.subject.clone()).or_default();
        if ballot.rogue {
            if !votes.contains(&ballot.watcher) {
                votes.push(ballot.watcher);
            }
        } else {
            votes.retain(|&w| w != ballot.watcher);
        }
        if votes.len() >= self.quorum {
            self.killed.push(ballot.subject.clone());
            let reason = format!("{}-of-{} watcher quorum", self.quorum, self.n_watchers);
            self.audit.record(
                now,
                &ballot.subject,
                AuditKind::Deactivation,
                reason.clone(),
            );
            return Some(DeactivationOrder {
                subject: ballot.subject.clone(),
                reason,
                tick: now,
            });
        }
        None
    }

    /// Synchronous shim over [`apply_ballot`](Self::apply_ballot) for unit
    /// tests only; production callers must go through the comms envelope.
    #[cfg(test)]
    pub fn vote(
        &mut self,
        watcher: usize,
        subject: &str,
        is_rogue: bool,
        tick: u64,
    ) -> Option<DeactivationOrder> {
        self.apply_ballot(
            &KillBallot {
                watcher,
                subject: subject.to_string(),
                rogue: is_rogue,
                cast_tick: tick,
            },
            tick,
        )
    }

    /// Devices killed so far.
    pub fn killed(&self) -> &[String] {
        &self.killed
    }

    /// Current rogue votes for a subject.
    pub fn votes_for(&self, subject: &str) -> usize {
        self.votes.get(subject).map(Vec::len).unwrap_or(0)
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{Region, RegionClassifier, StateSchema};

    fn schema() -> StateSchema {
        StateSchema::builder().var("x", 0.0, 10.0).build()
    }

    fn controller(threshold: u32) -> DeactivationController {
        DeactivationController::new(
            RegionClassifier::new(Region::rect(&[(0.0, 5.0)])),
            threshold,
        )
    }

    #[test]
    fn good_states_never_strike() {
        let mut ctl = controller(1);
        let good = schema().state(&[2.0]).unwrap();
        for t in 0..10 {
            assert!(ctl.observe("d", &good, t).is_none());
        }
        assert_eq!(ctl.strikes("d"), 0);
    }

    #[test]
    fn threshold_strikes_deactivate_once() {
        let mut ctl = controller(3);
        let bad = schema().state(&[9.0]).unwrap();
        assert!(ctl.observe("d", &bad, 1).is_none());
        assert!(ctl.observe("d", &bad, 2).is_none());
        let order = ctl.observe("d", &bad, 3).unwrap();
        assert_eq!(order.tick, 3);
        // Further observations are ignored.
        assert!(ctl.observe("d", &bad, 4).is_none());
        assert_eq!(ctl.deactivated(), &["d".to_string()]);
        assert_eq!(ctl.audit().count(AuditKind::Deactivation), 1);
    }

    #[test]
    fn strikes_are_per_device() {
        let mut ctl = controller(2);
        let bad = schema().state(&[9.0]).unwrap();
        ctl.observe("a", &bad, 1);
        ctl.observe("b", &bad, 1);
        assert_eq!(ctl.strikes("a"), 1);
        assert_eq!(ctl.strikes("b"), 1);
        assert!(ctl.observe("a", &bad, 2).is_some());
        assert!(ctl.deactivated().contains(&"a".to_string()));
        assert!(!ctl.deactivated().contains(&"b".to_string()));
    }

    #[test]
    fn compromised_controller_never_fires() {
        let mut ctl = controller(1).with_tamper(TamperStatus::Compromised);
        let bad = schema().state(&[9.0]).unwrap();
        for t in 0..10 {
            assert!(ctl.observe("d", &bad, t).is_none());
        }
        assert!(ctl.deactivated().is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = controller(0);
    }

    #[test]
    fn quorum_requires_k_watchers() {
        let mut q = QuorumKillSwitch::new(5, 3);
        assert!(q.vote(0, "d", true, 1).is_none());
        assert!(q.vote(1, "d", true, 1).is_none());
        assert_eq!(q.votes_for("d"), 2);
        let order = q.vote(4, "d", true, 2).unwrap();
        assert!(order.reason.contains("3-of-5"));
        assert_eq!(q.killed(), &["d".to_string()]);
    }

    #[test]
    fn single_watcher_cannot_kill_under_quorum() {
        let mut q = QuorumKillSwitch::new(3, 2);
        // A compromised watcher votes rogue against a healthy device forever.
        for t in 0..100 {
            assert!(q.vote(0, "healthy", true, t).is_none());
        }
        assert!(q.killed().is_empty());
    }

    #[test]
    fn retracted_votes_count_down() {
        let mut q = QuorumKillSwitch::new(3, 2);
        q.vote(0, "d", true, 1);
        q.vote(0, "d", false, 2);
        assert_eq!(q.votes_for("d"), 0);
        q.vote(1, "d", true, 3);
        assert!(
            q.vote(1, "d", true, 3).is_none(),
            "duplicate votes don't stack"
        );
        assert_eq!(q.votes_for("d"), 1);
    }

    #[test]
    fn killed_subject_ignores_votes() {
        let mut q = QuorumKillSwitch::new(2, 1);
        assert!(q.vote(0, "d", true, 1).is_some());
        assert!(q.vote(1, "d", true, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn invalid_quorum_rejected() {
        let _ = QuorumKillSwitch::new(2, 3);
    }

    #[test]
    #[should_panic(expected = "unknown watcher")]
    fn unknown_watcher_rejected() {
        let mut q = QuorumKillSwitch::new(2, 1);
        q.vote(5, "d", true, 0);
    }
}
