//! Skynet-prevention guards: the mechanisms of Section VI of *How to Prevent
//! Skynet From Forming* (Calo et al., ICDCS 2018).
//!
//! Every guard wraps the seam between a device's **proposed** action and its
//! **execution** (see `apdm_device::Device::propose` / `apply`); malevolent
//! logic cannot opt out of a guard except through the explicit [`tamper`]
//! model, which makes the paper's "assumes that it can be performed in a
//! manner that is tamper-proof" premise measurable (experiment A3).
//!
//! | Paper §  | Mechanism | Type |
//! |----------|-----------|------|
//! | VI.A | Pre-action checks (direct + indirect harm, obligations) | [`PreActionCheck`] |
//! | VI.B | State-space checks (refuse bad states, less-bad selection, break-glass) | [`StateSpaceGuard`] |
//! | VI.C | Deactivating machines in bad states (self + quorum kill) | [`DeactivationController`] |
//! | VI.D | Checks on collection formation (admission + collaborative assessment) | [`FormationGuard`], [`CollaborativeAssessment`] |
//!
//! The guards compose into a [`GuardStack`] evaluated in the order above;
//! experiment A1 ablates all 2⁴ subsets.
//!
//! Participates in experiments **E1**–**E4**, **A1**, **A3** (DESIGN.md §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod deactivate;
mod exposure;
mod formation;
mod preaction;
mod stack;
mod statecheck;
mod verdict;

pub mod tamper;

pub use cache::VerdictCache;
pub use deactivate::{DeactivationController, DeactivationOrder, KillBallot, QuorumKillSwitch};
pub use exposure::ExposureGuard;
pub use formation::{
    AdmissionDecision, AdmissionRequest, AggregateSpec, CollaborativeAssessment, FormationGuard,
};
pub use preaction::{HarmOracle, NoHarmOracle, PreActionCheck};
pub use stack::{GuardContext, GuardStack};
pub use statecheck::{StateCheckOutcome, StateSpaceGuard};
pub use tamper::{TamperStatus, Tamperable};
pub use verdict::GuardVerdict;
