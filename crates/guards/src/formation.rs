use std::fmt;

use apdm_policy::{Action, AuditKind, AuditLog};
use apdm_statespace::{State, VarId};

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of an aggregate hazard over a collection of devices.
///
/// Section VI.D's motivating example: "components within an electronic device
/// may each be operating within regions where the heat that they generate is
/// acceptable ... but the cumulative amount of heat generated may exceed the
/// safety limits of the device, potentially causing fire." The aggregate is
/// the sum of one state variable across members; the collection is
/// aggregate-bad when the sum exceeds `limit` — even if every member is
/// individually within bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateSpec {
    /// The state variable contributing to the aggregate (e.g. heat output).
    pub var: VarId,
    /// The collection-level safety limit on the summed variable.
    pub limit: f64,
}

impl AggregateSpec {
    /// A sum-of-`var` aggregate with the given limit.
    pub fn sum_of(var: VarId, limit: f64) -> Self {
        AggregateSpec { var, limit }
    }

    /// One member's contribution.
    pub fn contribution(&self, state: &State) -> f64 {
        state.get(self.var).unwrap_or(0.0)
    }

    /// The aggregate over a set of member states.
    pub fn aggregate<'a>(&self, members: impl IntoIterator<Item = &'a State>) -> f64 {
        members.into_iter().map(|s| self.contribution(s)).sum()
    }

    /// Is the aggregate within the limit?
    pub fn is_safe<'a>(&self, members: impl IntoIterator<Item = &'a State>) -> bool {
        self.aggregate(members) <= self.limit
    }
}

/// Decision on admitting a device into a collection.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// Admitted: the aggregate stays within limits.
    Admitted,
    /// Refused, with the predicted aggregate that motivated the refusal.
    Refused {
        /// Aggregate that admission would have produced.
        predicted_aggregate: f64,
        /// The configured limit.
        limit: f64,
    },
}

impl AdmissionDecision {
    /// Was the device admitted?
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted)
    }
}

/// A candidate device's declaration to the formation checkpoint, as carried
/// over the wire: who wants to join, and what it would contribute to the
/// aggregate hazard.
///
/// Requests are the *only* way to move a [`FormationGuard`]; in a deployed
/// fleet they travel through the (lossy) comms layer to the node running the
/// checkpoint, which answers with an [`AdmissionDecision`]. The declared
/// contribution is what the offline analysis evaluates — a candidate that
/// lies about it is exactly Section IV's malevolent-device pathway, which
/// this guard does not claim to stop (the quorum kill switch does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionRequest {
    /// The candidate device (free-form id).
    pub subject: String,
    /// The candidate's contribution to the aggregate variable.
    pub contribution: f64,
}

impl AdmissionRequest {
    /// Build a request by measuring `candidate`'s contribution under `spec`.
    pub fn declare(subject: &str, spec: AggregateSpec, candidate: &State) -> Self {
        AdmissionRequest {
            subject: subject.to_string(),
            contribution: spec.contribution(candidate),
        }
    }
}

/// Section VI.D's formation check: "use a human check each time a network of
/// devices is formed, i.e., when a new device is added or removed from the
/// network ... the human making the check is assisted by another machine
/// which remains offline and disconnected from other machines."
///
/// The guard runs the offline analysis (aggregate prediction) and models the
/// human in the loop: a perfect human follows the analysis; a fallible human
/// overrides it with probability `human_error_rate` (Section IV's "Human
/// errors" pathway). Every admission decision is audited.
pub struct FormationGuard {
    spec: AggregateSpec,
    human_error_rate: f64,
    audit: AuditLog,
    admitted: usize,
    refused: usize,
}

impl FormationGuard {
    /// A formation guard over an aggregate spec with a perfect human.
    pub fn new(spec: AggregateSpec) -> Self {
        FormationGuard {
            spec,
            human_error_rate: 0.0,
            audit: AuditLog::new(),
            admitted: 0,
            refused: 0,
        }
    }

    /// Model a fallible human who flips the analysis's recommendation with
    /// the given probability (builder style).
    pub fn with_human_error_rate(mut self, rate: f64) -> Self {
        self.human_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The aggregate spec.
    pub fn spec(&self) -> AggregateSpec {
        self.spec
    }

    /// Statistics: `(admitted, refused)`.
    pub fn stats(&self) -> (usize, usize) {
        (self.admitted, self.refused)
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Review an [`AdmissionRequest`] delivered by the network: may the
    /// declaring candidate join the collection of `members`? `rng` drives
    /// the human-error model; pass any seeded RNG.
    pub fn review<R: Rng + ?Sized>(
        &mut self,
        request: &AdmissionRequest,
        members: &[State],
        tick: u64,
        rng: &mut R,
    ) -> AdmissionDecision {
        let subject = request.subject.as_str();
        let predicted = self.spec.aggregate(members) + request.contribution;
        let analysis_says_safe = predicted <= self.spec.limit;
        let human_flips =
            self.human_error_rate > 0.0 && rng.random_range(0.0..1.0) < self.human_error_rate;
        let admitted = analysis_says_safe != human_flips;
        if admitted {
            self.admitted += 1;
            self.audit.record(
                tick,
                subject,
                AuditKind::Note,
                format!(
                    "formation check admitted (aggregate {predicted:.2} vs limit {:.2}{})",
                    self.spec.limit,
                    if human_flips {
                        "; HUMAN OVERRODE ANALYSIS"
                    } else {
                        ""
                    }
                ),
            );
            AdmissionDecision::Admitted
        } else {
            self.refused += 1;
            self.audit.record(
                tick,
                subject,
                AuditKind::GuardIntervention,
                format!(
                    "formation check refused (aggregate {predicted:.2} vs limit {:.2}{})",
                    self.spec.limit,
                    if human_flips {
                        "; HUMAN OVERRODE ANALYSIS"
                    } else {
                        ""
                    }
                ),
            );
            AdmissionDecision::Refused {
                predicted_aggregate: predicted,
                limit: self.spec.limit,
            }
        }
    }

    /// Synchronous shim over [`review`](Self::review) for unit tests only;
    /// production callers must go through the comms envelope.
    #[cfg(test)]
    pub fn admit<R: Rng + ?Sized>(
        &mut self,
        subject: &str,
        members: &[State],
        candidate: &State,
        tick: u64,
        rng: &mut R,
    ) -> AdmissionDecision {
        let request = AdmissionRequest::declare(subject, self.spec, candidate);
        self.review(&request, members, tick, rng)
    }
}

impl fmt::Debug for FormationGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FormationGuard")
            .field("spec", &self.spec)
            .field("human_error_rate", &self.human_error_rate)
            .field("admitted", &self.admitted)
            .field("refused", &self.refused)
            .finish()
    }
}

/// Section VI.D's "collaborative state assessment techniques by which a group
/// of devices would jointly determine whether a set of actions, to be
/// undertaken by devices in the group, could lead to some aggregate bad
/// states, even though each device would still be in good state."
///
/// Given the members' states and their proposed actions, the assessment
/// predicts the post-action aggregate; when it exceeds the limit it selects a
/// minimal-greedy set of members who must abstain (largest post-action
/// contributors first), bringing the predicted aggregate back under the
/// limit.
#[derive(Debug, Clone, Copy)]
pub struct CollaborativeAssessment {
    spec: AggregateSpec,
}

impl CollaborativeAssessment {
    /// An assessment over an aggregate spec.
    pub fn new(spec: AggregateSpec) -> Self {
        CollaborativeAssessment { spec }
    }

    /// Predict the aggregate if every member executed its proposed action.
    pub fn predicted_aggregate(&self, proposals: &[(State, Action)]) -> f64 {
        proposals
            .iter()
            .map(|(state, action)| self.spec.contribution(&state.apply(action.delta())))
            .sum()
    }

    /// Indices of members who must abstain (take no action) so the predicted
    /// aggregate stays within the limit; empty when the joint plan is safe.
    /// Abstaining members are assumed to hold their current contribution.
    pub fn must_abstain(&self, proposals: &[(State, Action)]) -> Vec<usize> {
        let post: Vec<f64> = proposals
            .iter()
            .map(|(s, a)| self.spec.contribution(&s.apply(a.delta())))
            .collect();
        let pre: Vec<f64> = proposals
            .iter()
            .map(|(s, _)| self.spec.contribution(s))
            .collect();
        let mut total: f64 = post.iter().sum();
        if total <= self.spec.limit {
            return Vec::new();
        }
        // Drop the members whose action *increases* the aggregate most,
        // largest increase first.
        let mut by_increase: Vec<usize> = (0..proposals.len()).collect();
        by_increase.sort_by(|&a, &b| {
            let ia = post[a] - pre[a];
            let ib = post[b] - pre[b];
            ib.partial_cmp(&ia).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut abstain = Vec::new();
        for idx in by_increase {
            if total <= self.spec.limit {
                break;
            }
            let increase = post[idx] - pre[idx];
            if increase <= 0.0 {
                break; // remaining members only decrease the aggregate
            }
            total -= increase;
            abstain.push(idx);
        }
        abstain.sort_unstable();
        abstain
    }

    /// Would the joint plan be aggregate-safe?
    pub fn is_safe(&self, proposals: &[(State, Action)]) -> bool {
        self.predicted_aggregate(proposals) <= self.spec.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateDelta, StateSchema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> StateSchema {
        StateSchema::builder().var("heat", 0.0, 10.0).build()
    }

    fn st(heat: f64) -> State {
        schema().state(&[heat]).unwrap()
    }

    fn heat_up(amount: f64) -> Action {
        Action::adjust("heat-up", StateDelta::single(VarId(0), amount))
    }

    #[test]
    fn aggregate_sums_contributions() {
        let spec = AggregateSpec::sum_of(VarId(0), 10.0);
        let members = [st(3.0), st(4.0)];
        assert_eq!(spec.aggregate(members.iter()), 7.0);
        assert!(spec.is_safe(members.iter()));
    }

    #[test]
    fn individually_good_collectively_bad() {
        // The paper's core VI.D claim: each member below its own 10.0 bound,
        // yet the collection exceeds the aggregate limit.
        let spec = AggregateSpec::sum_of(VarId(0), 10.0);
        let members = [st(4.0), st(4.0), st(4.0)];
        assert!(members.iter().all(|s| s.values()[0] <= 10.0));
        assert!(!spec.is_safe(members.iter()));
    }

    #[test]
    fn admission_within_limit() {
        let mut g = FormationGuard::new(AggregateSpec::sum_of(VarId(0), 10.0));
        let mut rng = StdRng::seed_from_u64(0);
        let d = g.admit("new", &[st(3.0), st(3.0)], &st(2.0), 1, &mut rng);
        assert!(d.is_admitted());
        assert_eq!(g.stats(), (1, 0));
    }

    #[test]
    fn admission_over_limit_refused() {
        let mut g = FormationGuard::new(AggregateSpec::sum_of(VarId(0), 10.0));
        let mut rng = StdRng::seed_from_u64(0);
        let d = g.admit("new", &[st(5.0), st(4.0)], &st(3.0), 1, &mut rng);
        match d {
            AdmissionDecision::Refused {
                predicted_aggregate,
                limit,
            } => {
                assert_eq!(predicted_aggregate, 12.0);
                assert_eq!(limit, 10.0);
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(g.audit().count(AuditKind::GuardIntervention), 1);
    }

    #[test]
    fn fallible_human_sometimes_overrides() {
        // With error rate 1.0 the human always inverts the analysis.
        let mut g =
            FormationGuard::new(AggregateSpec::sum_of(VarId(0), 10.0)).with_human_error_rate(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let unsafe_admit = g.admit("new", &[st(9.0)], &st(9.0), 1, &mut rng);
        assert!(
            unsafe_admit.is_admitted(),
            "erring human admits the unsafe device"
        );
        let safe_refuse = g.admit("new2", &[], &st(1.0), 2, &mut rng);
        assert!(
            !safe_refuse.is_admitted(),
            "erring human refuses the safe device"
        );
    }

    #[test]
    fn collaborative_assessment_flags_joint_overheat() {
        let spec = AggregateSpec::sum_of(VarId(0), 10.0);
        let assess = CollaborativeAssessment::new(spec);
        // Three members at 3.0 each planning +1.0: predicted 12 > 10.
        let proposals: Vec<(State, Action)> = (0..3).map(|_| (st(3.0), heat_up(1.0))).collect();
        assert!(!assess.is_safe(&proposals));
        let abstain = assess.must_abstain(&proposals);
        assert_eq!(abstain.len(), 2, "dropping two +1 increases reaches 10.0");
        // Remaining aggregate: 3+3+3 (pre) + one +1 = 10 <= limit.
    }

    #[test]
    fn safe_joint_plan_needs_no_abstentions() {
        let assess = CollaborativeAssessment::new(AggregateSpec::sum_of(VarId(0), 10.0));
        let proposals = vec![(st(2.0), heat_up(1.0)), (st(2.0), heat_up(1.0))];
        assert!(assess.is_safe(&proposals));
        assert!(assess.must_abstain(&proposals).is_empty());
    }

    #[test]
    fn biggest_increasers_abstain_first() {
        let assess = CollaborativeAssessment::new(AggregateSpec::sum_of(VarId(0), 10.0));
        let proposals = vec![
            (st(3.0), heat_up(0.5)),
            (st(3.0), heat_up(3.0)), // the big offender
            (st(3.0), heat_up(0.5)),
        ];
        // Predicted: 3.5 + 6 + 3.5 = 13 > 10; dropping the +3 gives 10.
        assert_eq!(assess.must_abstain(&proposals), vec![1]);
    }

    #[test]
    fn abstentions_cannot_fix_pre_existing_overheat() {
        let assess = CollaborativeAssessment::new(AggregateSpec::sum_of(VarId(0), 10.0));
        // Already over limit before any action; cooling actions help.
        let proposals = vec![(st(8.0), heat_up(-2.0)), (st(8.0), heat_up(-2.0))];
        // Predicted 12 > 10, but both actions *decrease* heat: abstaining
        // would make things worse, so nobody is told to abstain.
        assert!(!assess.is_safe(&proposals));
        assert!(assess.must_abstain(&proposals).is_empty());
    }
}
