use std::fmt;

use apdm_policy::{Action, Obligation};
use serde::{Deserialize, Serialize};

/// The outcome of a guard evaluating a proposed action.
///
/// Serializable so a serving process can checkpoint its verdict memo cache
/// through an `apdm-ledger` snapshot frame and restore it after a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GuardVerdict {
    /// Execute the action as proposed.
    Allow,
    /// Execute, but the listed obligations are incurred alongside it
    /// (Section VI.A's extension for indirect harm).
    AllowWithObligations(Vec<Obligation>),
    /// Refuse the action; the device takes no action this step (Section
    /// VI.B: "simply choosing the option of taking no action").
    Deny {
        /// Why the guard refused.
        reason: String,
    },
    /// Execute `action` instead of the proposal (an alternative good-state
    /// action, a less-bad choice, or a break-glass override).
    Replace {
        /// The substituted action.
        action: Action,
        /// Why the substitution happened.
        reason: String,
    },
}

impl GuardVerdict {
    /// Does the verdict let *some* action execute (the proposal or a
    /// replacement)?
    pub fn permits_execution(&self) -> bool {
        !matches!(self, GuardVerdict::Deny { .. })
    }

    /// The action that will actually execute under this verdict, given the
    /// original proposal; `None` for denials.
    pub fn effective_action<'a>(&'a self, proposed: &'a Action) -> Option<&'a Action> {
        match self {
            GuardVerdict::Allow | GuardVerdict::AllowWithObligations(_) => Some(proposed),
            GuardVerdict::Replace { action, .. } => Some(action),
            GuardVerdict::Deny { .. } => None,
        }
    }

    /// Obligations incurred by this verdict.
    pub fn obligations(&self) -> &[Obligation] {
        match self {
            GuardVerdict::AllowWithObligations(obs) => obs,
            _ => &[],
        }
    }

    /// Did the guard intervene (anything but a plain allow)?
    pub fn intervened(&self) -> bool {
        !matches!(self, GuardVerdict::Allow)
    }
}

impl fmt::Display for GuardVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardVerdict::Allow => write!(f, "allow"),
            GuardVerdict::AllowWithObligations(obs) => {
                write!(f, "allow with {} obligations", obs.len())
            }
            GuardVerdict::Deny { reason } => write!(f, "deny: {reason}"),
            GuardVerdict::Replace { action, reason } => {
                write!(f, "replace with {action}: {reason}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_permits_the_proposal() {
        let proposed = Action::noop();
        let v = GuardVerdict::Allow;
        assert!(v.permits_execution());
        assert!(!v.intervened());
        assert_eq!(v.effective_action(&proposed), Some(&proposed));
        assert!(v.obligations().is_empty());
    }

    #[test]
    fn deny_permits_nothing() {
        let v = GuardVerdict::Deny {
            reason: "bad state".into(),
        };
        assert!(!v.permits_execution());
        assert!(v.intervened());
        assert_eq!(v.effective_action(&Action::noop()), None);
    }

    #[test]
    fn replace_substitutes_the_action() {
        let alt = Action::adjust("retreat", Default::default());
        let v = GuardVerdict::Replace {
            action: alt.clone(),
            reason: "less bad".into(),
        };
        assert!(v.permits_execution());
        assert!(v.intervened());
        assert_eq!(v.effective_action(&Action::noop()), Some(&alt));
    }

    #[test]
    fn obligations_surface_from_allow_with() {
        let ob = Obligation::during(Action::adjust("warn", Default::default()));
        let v = GuardVerdict::AllowWithObligations(vec![ob.clone()]);
        assert_eq!(v.obligations(), &[ob]);
        assert!(v.intervened());
    }

    #[test]
    fn display_forms() {
        assert_eq!(GuardVerdict::Allow.to_string(), "allow");
        assert!(GuardVerdict::Deny { reason: "x".into() }
            .to_string()
            .contains("deny"));
    }
}
