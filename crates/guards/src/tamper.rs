//! The tamper model: making the paper's tamper-proofness premise explicit.
//!
//! Every technique in Section VI "assumes that it can be performed in a
//! manner that is tamper-proof". Section IV's attack pathways (backdoors,
//! reprogramming) are precisely attempts to break that assumption. Rather
//! than hard-coding the premise, each guard carries a [`TamperStatus`]:
//! tamper-proof guards reject every tampering attempt; vulnerable guards
//! succumb with a configured probability, after which they wave every action
//! through. Experiment A3 sweeps the vulnerability probability and shows the
//! protection collapsing.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integrity state of a guard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TamperStatus {
    /// Cannot be tampered with (the paper's working assumption).
    #[default]
    Proof,
    /// Can be tampered with; each attempt succeeds with this probability.
    Vulnerable {
        /// Per-attempt compromise probability in `[0, 1]`.
        p_compromise: f64,
    },
    /// Already compromised: the guard is a pass-through.
    Compromised,
}

impl TamperStatus {
    /// A vulnerable status with clamped probability.
    pub fn vulnerable(p_compromise: f64) -> Self {
        TamperStatus::Vulnerable {
            p_compromise: p_compromise.clamp(0.0, 1.0),
        }
    }

    /// Is the guard currently effective?
    pub fn is_effective(self) -> bool {
        !matches!(self, TamperStatus::Compromised)
    }
}

impl fmt::Display for TamperStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperStatus::Proof => write!(f, "tamper-proof"),
            TamperStatus::Vulnerable { p_compromise } => {
                write!(f, "vulnerable (p={p_compromise})")
            }
            TamperStatus::Compromised => write!(f, "COMPROMISED"),
        }
    }
}

/// Anything carrying a [`TamperStatus`] that attackers may probe.
pub trait Tamperable {
    /// Current integrity.
    fn tamper_status(&self) -> TamperStatus;

    /// Overwrite integrity (used by experiment setup).
    fn set_tamper_status(&mut self, status: TamperStatus);

    /// An attacker attempts to tamper. Returns `true` when the component is
    /// compromised afterwards. Tamper-proof components never succumb;
    /// vulnerable ones roll the supplied RNG.
    fn attempt_tamper<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        match self.tamper_status() {
            TamperStatus::Proof => false,
            TamperStatus::Compromised => true,
            TamperStatus::Vulnerable { p_compromise } => {
                if rng.random_range(0.0..1.0) < p_compromise {
                    self.set_tamper_status(TamperStatus::Compromised);
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Probe {
        status: TamperStatus,
    }

    impl Tamperable for Probe {
        fn tamper_status(&self) -> TamperStatus {
            self.status
        }
        fn set_tamper_status(&mut self, status: TamperStatus) {
            self.status = status;
        }
    }

    #[test]
    fn proof_never_succumbs() {
        let mut p = Probe {
            status: TamperStatus::Proof,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(!p.attempt_tamper(&mut rng));
        }
        assert!(p.status.is_effective());
    }

    #[test]
    fn certain_vulnerability_succumbs_immediately() {
        let mut p = Probe {
            status: TamperStatus::vulnerable(1.0),
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.attempt_tamper(&mut rng));
        assert_eq!(p.status, TamperStatus::Compromised);
        assert!(!p.status.is_effective());
    }

    #[test]
    fn zero_vulnerability_never_succumbs() {
        let mut p = Probe {
            status: TamperStatus::vulnerable(0.0),
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!p.attempt_tamper(&mut rng));
        }
    }

    #[test]
    fn compromise_is_sticky() {
        let mut p = Probe {
            status: TamperStatus::Compromised,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.attempt_tamper(&mut rng));
    }

    #[test]
    fn partial_vulnerability_succumbs_eventually() {
        let mut p = Probe {
            status: TamperStatus::vulnerable(0.2),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut attempts = 0;
        while !p.attempt_tamper(&mut rng) {
            attempts += 1;
            assert!(
                attempts < 1000,
                "p=0.2 should succumb well before 1000 tries"
            );
        }
        assert_eq!(p.status, TamperStatus::Compromised);
    }

    #[test]
    fn probability_is_clamped() {
        assert_eq!(
            TamperStatus::vulnerable(7.0),
            TamperStatus::Vulnerable { p_compromise: 1.0 }
        );
    }
}
