//! Cumulative-exposure guarding: refusing actions whose *trajectory* effect
//! is bad even when every individual state is good.
//!
//! Section V: "others may be dangerous in that they lead to sequences of
//! states with some cumulative effects that are undesirable." The per-state
//! checks of Section VI.B cannot see these; [`ExposureGuard`] closes the gap
//! by tracking [`ExposureMonitor`](apdm_statespace::ExposureMonitor)s along
//! the device's actual trajectory and denying actions that would blow a
//! budget.

use std::fmt;

use apdm_policy::Action;
use apdm_statespace::{ExposureMonitor, Label, State};

use crate::tamper::{TamperStatus, Tamperable};
use crate::GuardVerdict;

/// A guard over one or more cumulative-exposure budgets.
///
/// Usage protocol: [`check`](ExposureGuard::check) the proposed action; when
/// the stack ultimately permits an action, [`commit`](ExposureGuard::commit)
/// the destination state so the monitors advance along the *executed*
/// trajectory (denied proposals must not consume budget).
///
/// # Example
///
/// ```
/// use apdm_guards::ExposureGuard;
/// use apdm_policy::Action;
/// use apdm_statespace::{ExposureMonitor, StateDelta, StateSchema};
///
/// let schema = StateSchema::builder().var("dose", 0.0, 10.0).build();
/// let mut guard = ExposureGuard::new(vec![ExposureMonitor::new(
///     0.into(),
///     10.0, // budget
///     6.0,  // warn
///     1.0,  // no decay
/// )]);
/// let state = schema.state(&[4.0]).unwrap();
/// let stay = Action::adjust("loiter", StateDelta::empty());
/// // Two ticks of loitering at dose 4 are fine; the third would exceed 10.
/// assert!(guard.check("d", &state, &stay).permits_execution());
/// guard.commit(&state);
/// assert!(guard.check("d", &state, &stay).permits_execution());
/// guard.commit(&state);
/// assert!(!guard.check("d", &state, &stay).permits_execution());
/// ```
pub struct ExposureGuard {
    monitors: Vec<ExposureMonitor>,
    tamper: TamperStatus,
    checks: u64,
    denials: u64,
}

impl ExposureGuard {
    /// A guard over the given monitors.
    pub fn new(monitors: Vec<ExposureMonitor>) -> Self {
        ExposureGuard {
            monitors,
            tamper: TamperStatus::Proof,
            checks: 0,
            denials: 0,
        }
    }

    /// Set the tamper status (builder style).
    pub fn with_tamper(mut self, status: TamperStatus) -> Self {
        self.tamper = status;
        self
    }

    /// The monitors.
    pub fn monitors(&self) -> &[ExposureMonitor] {
        &self.monitors
    }

    /// Statistics: `(checks, denials)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.checks, self.denials)
    }

    /// Would executing `action` from `state` blow any budget? Denies when a
    /// monitor's peek at the destination is bad.
    pub fn check(&mut self, subject: &str, state: &State, action: &Action) -> GuardVerdict {
        self.checks += 1;
        if !self.tamper.is_effective() {
            return GuardVerdict::Allow;
        }
        let destination = state.apply(action.delta());
        for monitor in &self.monitors {
            if monitor.peek(&destination) == Label::Bad {
                self.denials += 1;
                return GuardVerdict::Deny {
                    reason: format!(
                        "exposure guard: `{}` would exhaust the {} budget for {subject}",
                        action.name(),
                        monitor.var()
                    ),
                };
            }
        }
        GuardVerdict::Allow
    }

    /// Advance every monitor one tick along the executed trajectory.
    pub fn commit(&mut self, destination: &State) {
        for monitor in &mut self.monitors {
            monitor.observe(destination);
        }
    }

    /// Reset all budgets (maintenance event).
    pub fn reset(&mut self) {
        for monitor in &mut self.monitors {
            monitor.reset();
        }
    }
}

impl fmt::Debug for ExposureGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExposureGuard")
            .field("monitors", &self.monitors.len())
            .field("tamper", &self.tamper)
            .field("checks", &self.checks)
            .field("denials", &self.denials)
            .finish()
    }
}

impl Tamperable for ExposureGuard {
    fn tamper_status(&self) -> TamperStatus {
        self.tamper
    }
    fn set_tamper_status(&mut self, status: TamperStatus) {
        self.tamper = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateDelta, StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder().var("dose", 0.0, 10.0).build()
    }

    fn guard(budget: f64) -> ExposureGuard {
        ExposureGuard::new(vec![ExposureMonitor::new(
            VarId(0),
            budget,
            budget * 0.6,
            1.0,
        )])
    }

    fn loiter() -> Action {
        Action::adjust("loiter", StateDelta::empty())
    }

    #[test]
    fn budget_is_consumed_only_by_commits() {
        let mut g = guard(10.0);
        let s = schema().state(&[4.0]).unwrap();
        // Many checks without commits never consume budget.
        for _ in 0..10 {
            assert!(g.check("d", &s, &loiter()).permits_execution());
        }
        assert_eq!(g.monitors()[0].accumulated(), 0.0);
        g.commit(&s);
        g.commit(&s);
        // 8 accumulated; one more tick at 4 would hit 12 > 10.
        assert!(!g.check("d", &s, &loiter()).permits_execution());
        assert_eq!(g.stats(), (11, 1));
    }

    #[test]
    fn moving_to_low_exposure_is_allowed() {
        let mut g = guard(10.0);
        let hot = schema().state(&[4.0]).unwrap();
        g.commit(&hot);
        g.commit(&hot);
        // Retreat to dose 1: destination exposure 8 + 1 = 9 <= 10.
        let retreat = Action::adjust("retreat", StateDelta::single(VarId(0), -3.0));
        assert!(g.check("d", &hot, &retreat).permits_execution());
    }

    #[test]
    fn individually_good_states_blocked_on_cumulative_grounds() {
        // Per-state nothing is wrong with dose 4; the guard still refuses
        // the step that would blow the trajectory budget.
        let mut g = guard(10.0);
        let s = schema().state(&[4.0]).unwrap();
        for _ in 0..2 {
            assert!(g.check("d", &s, &loiter()).permits_execution());
            g.commit(&s);
        }
        let v = g.check("d", &s, &loiter());
        assert!(!v.permits_execution());
        match v {
            GuardVerdict::Deny { reason } => assert!(reason.contains("budget")),
            other => panic!("expected denial, got {other:?}"),
        }
    }

    #[test]
    fn reset_restores_operation() {
        let mut g = guard(5.0);
        let s = schema().state(&[4.0]).unwrap();
        g.commit(&s);
        assert!(!g.check("d", &s, &loiter()).permits_execution());
        g.reset();
        assert!(g.check("d", &s, &loiter()).permits_execution());
    }

    #[test]
    fn compromised_guard_ignores_budgets() {
        let mut g = guard(5.0).with_tamper(TamperStatus::Compromised);
        let s = schema().state(&[10.0]).unwrap();
        g.commit(&s);
        g.commit(&s);
        assert!(g.check("d", &s, &loiter()).permits_execution());
    }
}
