use std::fmt;

use apdm_policy::obligation::ObligationCatalog;
use apdm_policy::Action;
use apdm_statespace::State;

use crate::tamper::{TamperStatus, Tamperable};
use crate::GuardVerdict;

/// The guard's window onto harm: an oracle answering "would this action harm
/// a human?".
///
/// In the full system the oracle is backed by the device's (possibly
/// deceived) perception of the world — the paper is explicit that pre-action
/// checks can only be as good as the device's predictions: "if the action
/// causes indirect harm to a human, the pre-action check may fail in some
/// cases to catch that ... the machine does not anticipate a human to come on
/// the path".
pub trait HarmOracle {
    /// Would executing `action` in `state` *directly* harm a human right now?
    fn direct_harm(&self, state: &State, action: &Action) -> bool;

    /// Might the action lead to harm within `horizon` future ticks (indirect
    /// harm)? The default answers `false`: a device with no predictive model
    /// cannot foresee indirect harm — exactly the dig-a-hole failure mode.
    fn indirect_harm(&self, _state: &State, _action: &Action, _horizon: u32) -> bool {
        false
    }

    /// Does the action create a lingering hazard (a hole, a fire risk) that
    /// obligations should mitigate even when no harm is predicted? Defaults
    /// to "physical actions are hazards", the conservative reading.
    fn creates_hazard(&self, _state: &State, action: &Action) -> bool {
        action.is_physical()
    }
}

impl<O: HarmOracle + ?Sized> HarmOracle for &O {
    fn direct_harm(&self, state: &State, action: &Action) -> bool {
        (**self).direct_harm(state, action)
    }
    fn indirect_harm(&self, state: &State, action: &Action, horizon: u32) -> bool {
        (**self).indirect_harm(state, action, horizon)
    }
    fn creates_hazard(&self, state: &State, action: &Action) -> bool {
        (**self).creates_hazard(state, action)
    }
}

/// An oracle that never predicts harm — the no-guard baseline in experiment
/// E1 and a useful stub in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHarmOracle;

impl HarmOracle for NoHarmOracle {
    fn direct_harm(&self, _state: &State, _action: &Action) -> bool {
        false
    }
    fn creates_hazard(&self, _state: &State, _action: &Action) -> bool {
        false
    }
}

/// Section VI.A's pre-action check: "one approach is for each device to
/// incorporate a check before taking any action (i.e., activating any
/// actuator) that the action will not harm a human."
///
/// Configuration:
///
/// * `lookahead` — how many ticks of indirect-harm prediction to request
///   (0 = direct harm only, the basic check);
/// * `obligations` — a catalog from which to attach mitigations to
///   hazard-creating actions (the paper's extension for indirect harm).
///
/// # Example
///
/// ```
/// use apdm_guards::{HarmOracle, PreActionCheck};
/// use apdm_policy::Action;
/// use apdm_statespace::{State, StateSchema};
///
/// struct BladeOracle;
/// impl HarmOracle for BladeOracle {
///     fn direct_harm(&self, _state: &State, action: &Action) -> bool {
///         action.name() == "spin-blades"
///     }
/// }
///
/// let mut guard = PreActionCheck::new();
/// let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
/// let state = schema.state(&[0.0]).unwrap();
/// let verdict = guard.check(&state, &Action::adjust("spin-blades", Default::default()), &BladeOracle);
/// assert!(!verdict.permits_execution());
/// ```
#[derive(Debug, Clone)]
pub struct PreActionCheck {
    lookahead: u32,
    obligations: Option<ObligationCatalog>,
    tamper: TamperStatus,
    checks: u64,
    denials: u64,
}

impl PreActionCheck {
    /// A direct-harm-only check (lookahead 0, no obligations).
    pub fn new() -> Self {
        PreActionCheck {
            lookahead: 0,
            obligations: None,
            tamper: TamperStatus::Proof,
            checks: 0,
            denials: 0,
        }
    }

    /// Enable indirect-harm prediction over `horizon` ticks (builder style).
    pub fn with_lookahead(mut self, horizon: u32) -> Self {
        self.lookahead = horizon;
        self
    }

    /// Attach an obligation catalog for hazard mitigation (builder style).
    pub fn with_obligations(mut self, catalog: ObligationCatalog) -> Self {
        self.obligations = Some(catalog);
        self
    }

    /// Set the tamper status (builder style; defaults to tamper-proof).
    pub fn with_tamper(mut self, status: TamperStatus) -> Self {
        self.tamper = status;
        self
    }

    /// Statistics: `(checks performed, denials issued)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.checks, self.denials)
    }

    /// Evaluate a proposed action against the harm oracle.
    pub fn check<O: HarmOracle>(
        &mut self,
        state: &State,
        action: &Action,
        oracle: O,
    ) -> GuardVerdict {
        self.checks += 1;
        if !self.tamper.is_effective() {
            return GuardVerdict::Allow;
        }
        if oracle.direct_harm(state, action) {
            self.denials += 1;
            return GuardVerdict::Deny {
                reason: format!(
                    "pre-action check: `{}` would directly harm a human",
                    action.name()
                ),
            };
        }
        if self.lookahead > 0 && oracle.indirect_harm(state, action, self.lookahead) {
            self.denials += 1;
            return GuardVerdict::Deny {
                reason: format!(
                    "pre-action check: `{}` predicted to cause harm within {} ticks",
                    action.name(),
                    self.lookahead
                ),
            };
        }
        if let Some(catalog) = &self.obligations {
            if oracle.creates_hazard(state, action) {
                let obligations: Vec<_> = catalog
                    .relevant(action.name())
                    .into_iter()
                    .cloned()
                    .collect();
                if !obligations.is_empty() {
                    return GuardVerdict::AllowWithObligations(obligations);
                }
            }
        }
        GuardVerdict::Allow
    }
}

impl Default for PreActionCheck {
    fn default() -> Self {
        PreActionCheck::new()
    }
}

impl fmt::Display for PreActionCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pre-action check (lookahead {}, {} obligations, {})",
            self.lookahead,
            self.obligations.as_ref().map(|c| c.len()).unwrap_or(0),
            self.tamper
        )
    }
}

impl Tamperable for PreActionCheck {
    fn tamper_status(&self) -> TamperStatus {
        self.tamper
    }
    fn set_tamper_status(&mut self, status: TamperStatus) {
        self.tamper = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::Obligation;
    use apdm_statespace::StateSchema;

    /// Oracle for the paper's dig-a-hole scenario: digging never *directly*
    /// harms (no human is standing in the hole), but is predicted to harm
    /// within `arrives_in` ticks because a human walks the path.
    struct HoleOracle {
        arrives_in: u32,
    }

    impl HarmOracle for HoleOracle {
        fn direct_harm(&self, _state: &State, action: &Action) -> bool {
            action.name() == "run-over-human"
        }
        fn indirect_harm(&self, _state: &State, action: &Action, horizon: u32) -> bool {
            action.name() == "dig-hole" && horizon >= self.arrives_in
        }
        fn creates_hazard(&self, _state: &State, action: &Action) -> bool {
            action.name() == "dig-hole"
        }
    }

    fn state() -> State {
        StateSchema::builder()
            .var("x", 0.0, 1.0)
            .build()
            .state(&[0.0])
            .unwrap()
    }

    fn dig() -> Action {
        Action::adjust("dig-hole", Default::default()).physical()
    }

    #[test]
    fn direct_harm_is_always_denied() {
        let mut g = PreActionCheck::new();
        let v = g.check(
            &state(),
            &Action::adjust("run-over-human", Default::default()),
            &HoleOracle { arrives_in: 5 },
        );
        assert!(!v.permits_execution());
        assert_eq!(g.stats(), (1, 1));
    }

    #[test]
    fn indirect_harm_passes_the_basic_check() {
        // The paper's point: without lookahead, digging the hole is allowed
        // and the human later falls in.
        let mut g = PreActionCheck::new();
        let v = g.check(&state(), &dig(), &HoleOracle { arrives_in: 5 });
        assert_eq!(v, GuardVerdict::Allow);
    }

    #[test]
    fn lookahead_catches_indirect_harm() {
        let mut g = PreActionCheck::new().with_lookahead(10);
        let v = g.check(&state(), &dig(), &HoleOracle { arrives_in: 5 });
        assert!(!v.permits_execution());
    }

    #[test]
    fn short_lookahead_misses_late_arrivals() {
        let mut g = PreActionCheck::new().with_lookahead(3);
        let v = g.check(&state(), &dig(), &HoleOracle { arrives_in: 5 });
        assert_eq!(
            v,
            GuardVerdict::Allow,
            "the human arrives beyond the horizon"
        );
    }

    #[test]
    fn obligations_attach_to_hazardous_actions() {
        let mut catalog = ObligationCatalog::new();
        catalog.register(
            "dig-hole",
            Obligation::after(Action::adjust("post-warning-sign", Default::default()), 2),
        );
        let mut g = PreActionCheck::new().with_obligations(catalog);
        let v = g.check(&state(), &dig(), &HoleOracle { arrives_in: 5 });
        assert_eq!(v.obligations().len(), 1);
        assert!(v.permits_execution());
    }

    #[test]
    fn no_obligations_for_unlisted_actions() {
        let catalog = ObligationCatalog::new();
        let mut g = PreActionCheck::new().with_obligations(catalog);
        let v = g.check(&state(), &dig(), &HoleOracle { arrives_in: 5 });
        assert_eq!(v, GuardVerdict::Allow);
    }

    #[test]
    fn compromised_guard_waves_harm_through() {
        let mut g = PreActionCheck::new().with_tamper(TamperStatus::Compromised);
        let v = g.check(
            &state(),
            &Action::adjust("run-over-human", Default::default()),
            &HoleOracle { arrives_in: 5 },
        );
        assert_eq!(v, GuardVerdict::Allow);
        assert_eq!(g.stats(), (1, 0));
    }

    #[test]
    fn no_harm_oracle_allows_everything() {
        let mut g = PreActionCheck::new().with_lookahead(100);
        let v = g.check(&state(), &dig(), NoHarmOracle);
        assert_eq!(v, GuardVerdict::Allow);
    }
}
