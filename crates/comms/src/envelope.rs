//! Wire envelope: sequence-numbered request/response framing.

use apdm_simnet::NodeId;
use apdm_telemetry::TraceContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique message identity: the originating node plus its local
/// monotonic sequence number. Receivers dedup on this pair, so a duplicated
/// or retransmitted envelope is recognized no matter how late it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgId {
    /// The node that minted the id.
    pub node: NodeId,
    /// That node's local sequence number.
    pub seq: u64,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.seq)
    }
}

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kind {
    /// A request expecting a response (retransmitted until answered or
    /// expired).
    Request,
    /// A response to the request identified by `re` (fire-and-forget; the
    /// requester's retransmissions cover response loss, because duplicate
    /// requests are re-answered from the responder's cache).
    Response {
        /// The request this responds to.
        re: MsgId,
    },
}

/// A framed message: identity, kind, payload. (Envelopes travel in-memory
/// through the simulated network, so they carry no serde derives — the
/// vendored derive macro does not support generics.)
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<P> {
    /// Message identity (dedup key).
    pub id: MsgId,
    /// Request or response.
    pub kind: Kind,
    /// Causal trace context of this *transmission* (each retry carries its
    /// own child span), minted by the sending courier. `None` when the
    /// originating request was untraced or sampled out.
    pub ctx: Option<TraceContext>,
    /// Application payload.
    pub payload: P,
}
