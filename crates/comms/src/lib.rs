//! Degraded-comms coordination layer for safety-critical exchanges.
//!
//! The paper's premise (§I, §IV) is that coalition devices act autonomously
//! *because* they are intermittently disconnected from command — yet quorum
//! kill switches, formation admission checks, and k-of-n council ballots
//! only mean anything if their messages actually arrive. This crate routes
//! those exchanges over [`apdm_simnet::Network`]'s seeded loss/duplication/
//! reordering/partition machinery and makes the failure policy explicit:
//!
//! - [`Envelope`]/[`MsgId`] — sequence-numbered request/response framing,
//!   so receivers can dedup duplicated or retransmitted deliveries;
//! - [`Courier`] — per-node at-least-once RPC: per-message timeouts,
//!   bounded retries with exponential backoff and seeded jitter, response
//!   caching for duplicate requests, RTT/retry/expiry telemetry;
//! - [`FailMode`]/[`IsolationMonitor`] — what a node does when the network
//!   abandons it: fail open, fail closed, or degrade to a conservative
//!   locally-regenerated standing policy (§IV made executable);
//! - [`SafetyMsg`] — the protocol: kill ballots, kill orders, admission
//!   requests, council calls/ballots, heartbeats.
//!
//! Everything is deterministic under a fixed seed: courier jitter uses its
//! own seeded RNG and all bookkeeping is in `BTreeMap` order, so sealed
//! ledgers of comms-driven experiments stay bit-identical across thread
//! counts (experiment E12).
//!
//! Participates in experiment **E12** (DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod courier;
mod degrade;
mod envelope;
mod proto;

pub use courier::{CommsConfig, Courier, Expired, Incoming, DEFAULT_RESPONSE_CACHE_CAP};
pub use degrade::{FailMode, IsolationMonitor};
pub use envelope::{Envelope, Kind, MsgId};
pub use proto::SafetyMsg;

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_simnet::{Link, Network, NodeId, Topology};

    fn pair(link: Link) -> (Network<Envelope<u32>>, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node();
        let b = t.add_node();
        t.connect(a, b, link);
        (Network::with_seed(t, 11), a, b)
    }

    /// Drive both couriers over `net` for `ticks` ticks; `server` answers
    /// every request with payload+1. Returns responses seen by `client`.
    fn drive(
        net: &mut Network<Envelope<u32>>,
        client: &mut Courier<u32>,
        server: &mut Courier<u32>,
        ticks: u64,
    ) -> Vec<(MsgId, u32)> {
        let mut responses = Vec::new();
        for now in 1..=ticks {
            for d in net.deliver_at(now) {
                if d.to == server.node() {
                    if let Some(Incoming::Request {
                        from, id, payload, ..
                    }) = server.accept(net, d, now)
                    {
                        server.respond(net, from, id, payload + 1, now);
                    }
                } else if let Some(Incoming::Response { re, payload, .. }) =
                    client.accept(net, d, now)
                {
                    responses.push((re, payload));
                }
            }
            client.poll(net, now);
            server.poll(net, now);
        }
        responses
    }

    #[test]
    fn response_cache_is_bounded_lru() {
        use apdm_simnet::Delivered;

        let (mut net, a, b) = pair(Link::with_latency(1));
        // The cap plumbs through the config (builder override also works).
        let cfg = CommsConfig {
            response_cache_cap: 4,
            ..CommsConfig::default()
        };
        let mut server = Courier::new(b, cfg, 2);
        // Answer 10 distinct requests: the cache must never exceed its cap.
        for seq in 0..10u64 {
            let re = MsgId { node: a, seq };
            server.respond(&mut net, a, re, seq as u32, 1);
            assert!(
                server.response_cache_len() <= 4,
                "cache grew past its bound at seq {seq}"
            );
        }
        assert_eq!(server.response_cache_len(), 4);

        let duplicate = |seq: u64| Delivered {
            from: a,
            to: b,
            payload: Envelope {
                id: MsgId { node: a, seq },
                kind: Kind::Request,
                ctx: None,
                payload: 0u32,
            },
            sent_at: 2,
        };
        // A duplicate of a hot (recent) request is absorbed and re-answered
        // from the cache: nothing is surfaced to the application.
        let before = server.counters().3;
        let (hits_before, _) = server.cache_counters();
        assert_eq!(server.accept(&mut net, duplicate(9), 3), None);
        assert_eq!(server.counters().3, before + 1);
        assert_eq!(server.cache_counters().0, hits_before + 1, "cache hit");
        // A duplicate of an evicted request is no longer deduped: it comes
        // back as a fresh request for the application to answer again.
        match server.accept(&mut net, duplicate(0), 3) {
            Some(Incoming::Request { id, .. }) => assert_eq!(id.seq, 0),
            other => panic!("evicted duplicate should resurface as a request, got {other:?}"),
        }
        assert_eq!(
            server.response_cache_len(),
            4,
            "re-surfacing must not grow the cache"
        );
    }

    #[test]
    fn response_cache_counters_use_the_comms_namespace() {
        use apdm_simnet::Delivered;
        use apdm_telemetry as telemetry;
        use std::rc::Rc;

        let collector = Rc::new(telemetry::RingCollector::new(64));
        let _g = telemetry::install(collector);
        let (mut net, a, b) = pair(Link::with_latency(1));
        let mut server = Courier::new(b, CommsConfig::default(), 2);
        let deliver = |sent_at| Delivered {
            from: a,
            to: b,
            payload: Envelope {
                id: MsgId { node: a, seq: 0 },
                kind: Kind::Request,
                ctx: None,
                payload: 7u32,
            },
            sent_at,
        };
        // A fresh request is a cache miss; answering it and replaying the
        // same id is a hit.
        match server.accept(&mut net, deliver(1), 1) {
            Some(Incoming::Request {
                from, id, payload, ..
            }) => server.respond(&mut net, from, id, payload + 1, 1),
            other => panic!("fresh request should surface, got {other:?}"),
        }
        assert_eq!(server.accept(&mut net, deliver(2), 2), None);
        // The registry instruments live under the `comms.` namespace — the
        // operator-facing names OPERATIONS.md documents.
        let (hit, miss) = telemetry::with_registry(|reg| {
            (
                reg.counter("comms.response_cache.hit").get(),
                reg.counter("comms.response_cache.miss").get(),
            )
        })
        .expect("a dispatch is installed");
        assert_eq!((hit, miss), (1, 1));
        assert_eq!((hit, miss), server.cache_counters());
    }

    #[test]
    fn lossless_request_gets_one_response() {
        let (mut net, a, b) = pair(Link::with_latency(1));
        let mut client = Courier::new(a, CommsConfig::default(), 1);
        let mut server = Courier::new(b, CommsConfig::default(), 2);
        let id = client.request(&mut net, b, 41, 0);
        let responses = drive(&mut net, &mut client, &mut server, 10);
        assert_eq!(responses, vec![(id, 42)]);
        assert_eq!(client.in_flight(), 0);
        let (completed, expired, retries, _) = client.counters();
        assert_eq!((completed, expired, retries), (1, 0, 0));
    }

    #[test]
    fn retries_survive_heavy_loss() {
        let (mut net, a, b) = pair(Link::with_latency(1).with_loss(0.6));
        let cfg = CommsConfig {
            timeout: 2,
            max_retries: 30,
            backoff_factor: 1,
            jitter: 1,
            ..CommsConfig::default()
        };
        let mut client = Courier::new(a, cfg, 1);
        let mut server = Courier::new(b, cfg, 2);
        let ids: Vec<MsgId> = (0..6).map(|i| client.request(&mut net, b, i, 0)).collect();
        let mut responses = drive(&mut net, &mut client, &mut server, 120);
        responses.sort();
        let expect: Vec<(MsgId, u32)> = ids.iter().map(|&id| (id, id.seq as u32 + 1)).collect();
        assert_eq!(responses, expect, "retries must get through 60% loss");
        let (_, _, retries, _) = client.counters();
        assert!(retries > 0, "loss should have forced retransmissions");
    }

    #[test]
    fn duplicated_links_yield_exactly_one_application_delivery() {
        let (mut net, a, b) = pair(Link::with_latency(1).with_dup(1.0));
        let mut client = Courier::new(a, CommsConfig::default(), 1);
        let mut server = Courier::new(b, CommsConfig::default(), 2);
        let id = client.request(&mut net, b, 5, 0);
        let responses = drive(&mut net, &mut client, &mut server, 20);
        assert_eq!(responses, vec![(id, 6)], "dedup must collapse duplicates");
        let (_, _, _, dropped) = server.counters();
        assert!(
            dropped > 0,
            "the duplicate copy must be dropped/re-answered"
        );
    }

    #[test]
    fn partition_expires_requests_with_bounded_retries() {
        let (mut net, a, b) = pair(Link::with_latency(1));
        net.topology_mut().partition(&[a]);
        let cfg = CommsConfig {
            timeout: 2,
            max_retries: 3,
            backoff_factor: 2,
            jitter: 0,
            ..CommsConfig::default()
        };
        let mut client = Courier::new(a, cfg, 1);
        let mut expired = Vec::new();
        client.request(&mut net, b, 9, 0);
        for now in 1..=100 {
            expired.extend(client.poll(&mut net, now));
        }
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].payload, 9);
        assert_eq!(expired[0].tries, 1 + cfg.max_retries);
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let cfg = CommsConfig {
            timeout: 3,
            max_retries: 4,
            backoff_factor: 2,
            jitter: 0,
            ..CommsConfig::default()
        };
        assert_eq!(cfg.wait_for_try(0), 3);
        assert_eq!(cfg.wait_for_try(1), 6);
        assert_eq!(cfg.wait_for_try(2), 12);
        assert_eq!(cfg.wait_for_try(3), 24);
    }

    #[test]
    fn traced_exchange_builds_a_resolvable_span_dag_under_faults() {
        use apdm_telemetry as telemetry;
        use std::rc::Rc;

        let run = || {
            let collector = Rc::new(telemetry::RingCollector::new(4096));
            let _g = telemetry::install(collector.clone());
            let (mut net, a, b) = pair(
                Link::with_latency(2)
                    .with_loss(0.4)
                    .with_dup(0.3)
                    .with_reorder(0.2),
            );
            let cfg = CommsConfig {
                timeout: 2,
                max_retries: 20,
                backoff_factor: 1,
                jitter: 1,
                ..CommsConfig::default()
            };
            let mut client = Courier::new(a, cfg, 1);
            let mut server = Courier::new(b, cfg, 2);
            let root = telemetry::TraceContext::root(telemetry::trace_id(7, 0), true);
            telemetry::set_tick(0);
            telemetry::emit_event("req.submit", telemetry::Level::Debug, {
                let mut f = Vec::new();
                root.push_fields(a.0, &mut f);
                f
            });
            client.request_traced(&mut net, b, 5u32, 0, Some(root));
            let mut done = Vec::new();
            for now in 1..=120 {
                telemetry::set_tick(now);
                for d in net.deliver_at(now) {
                    if d.to == server.node() {
                        if let Some(Incoming::Request {
                            from,
                            id,
                            ctx,
                            payload,
                        }) = server.accept(&mut net, d, now)
                        {
                            server.respond_traced(&mut net, from, id, payload + 1, now, ctx);
                        }
                    } else if let Some(Incoming::Response { ctx, payload, .. }) =
                        client.accept(&mut net, d, now)
                    {
                        if let Some(c) = ctx {
                            telemetry::emit_event("req.done", telemetry::Level::Debug, {
                                let mut f = Vec::new();
                                c.child(1).push_fields(a.0, &mut f);
                                f
                            });
                        }
                        done.push(payload);
                    }
                }
                client.poll(&mut net, now);
                server.poll(&mut net, now);
            }
            (collector.records(), done)
        };
        let (records, done) = run();
        assert_eq!(done, vec![6], "request must complete under faults");
        let graph = telemetry::TraceGraph::build(&records);
        assert_eq!(graph.traces().len(), 1, "one request, one trace id");
        assert!(
            graph.unresolved_parents().is_empty(),
            "every delivered message must name a recorded cause: {:?}",
            graph.unresolved_parents()
        );
        let trace = graph.traces()[0];
        let names: Vec<&str> = graph.nodes(trace).iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"req.submit"));
        assert!(names.contains(&"comms.send"));
        assert!(names.contains(&"comms.recv"));
        assert!(names.contains(&"req.done"));
        let path = graph.critical_path(trace).unwrap();
        assert_eq!(path.steps.first().unwrap().name, "req.submit");
        assert_eq!(path.steps.last().unwrap().name, "req.done");
        let waits: u64 = path.steps.iter().map(|s| s.wait_ticks).sum();
        assert_eq!(waits, path.total_ticks, "critical path must telescope");
        // Both runs of the same seeded scenario mint identical records.
        let (records2, _) = run();
        assert_eq!(records, records2, "traced exchange must be deterministic");
    }

    #[test]
    fn untraced_requests_stay_context_free() {
        let (mut net, a, b) = pair(Link::with_latency(1));
        let mut client = Courier::new(a, CommsConfig::default(), 1);
        let mut server = Courier::new(b, CommsConfig::default(), 2);
        client.request(&mut net, b, 1u32, 0);
        for now in 1..=6 {
            for d in net.deliver_at(now) {
                if d.to == server.node() {
                    if let Some(Incoming::Request {
                        from,
                        id,
                        ctx,
                        payload,
                    }) = server.accept(&mut net, d, now)
                    {
                        assert_eq!(ctx, None, "untraced request must carry no context");
                        server.respond(&mut net, from, id, payload, now);
                    }
                } else if let Some(Incoming::Response { ctx, .. }) = client.accept(&mut net, d, now)
                {
                    assert_eq!(ctx, None, "untraced response must carry no context");
                }
            }
            client.poll(&mut net, now);
            server.poll(&mut net, now);
        }
    }

    #[test]
    fn exchange_is_deterministic_per_seed() {
        let run = |net_seed: u64| {
            let (mut net, a, b) = pair(
                Link::with_latency(2)
                    .with_loss(0.3)
                    .with_dup(0.2)
                    .with_reorder(0.2),
            );
            let mut net = {
                // rebuild with requested seed
                let t = std::mem::replace(net.topology_mut(), Topology::new());
                Network::with_seed(t, net_seed)
            };
            let mut client = Courier::new(a, CommsConfig::default(), 5);
            let mut server = Courier::new(b, CommsConfig::default(), 6);
            let mut log = Vec::new();
            for i in 0..8u32 {
                client.request(&mut net, b, i, u64::from(i));
            }
            for now in 1..=60 {
                for d in net.deliver_at(now) {
                    if d.to == server.node() {
                        if let Some(Incoming::Request {
                            from, id, payload, ..
                        }) = server.accept(&mut net, d, now)
                        {
                            server.respond(&mut net, from, id, payload * 10, now);
                        }
                    } else if let Some(Incoming::Response {
                        re, payload, rtt, ..
                    }) = client.accept(&mut net, d, now)
                    {
                        log.push((re, payload, rtt, now));
                    }
                }
                client.poll(&mut net, now);
                server.poll(&mut net, now);
            }
            (log, client.counters(), server.counters(), net.stats())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different net seeds should differ (w.h.p.)");
    }
}
