//! The per-node courier: at-least-once request/response over the lossy net.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use apdm_simnet::{Delivered, Network, NodeId};
use apdm_telemetry as telemetry;
use apdm_telemetry::TraceContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::envelope::{Envelope, Kind, MsgId};

thread_local! {
    static REQUESTS_SENT: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.request.sent") };
    static RETRIES: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.retry") };
    static EXPIRED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.expired") };
    static DEDUP_DROPPED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.dedup.dropped") };
    static CACHE_HITS: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.response_cache.hit") };
    static CACHE_MISSES: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.response_cache.miss") };
    static RTT_TICKS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("comms.rtt.ticks") };
}

/// Default bound on the idempotent-response cache. Sized so that every
/// retransmission window a realistic backoff schedule can produce is still
/// covered, while a long-lived courier serving millions of requests stays
/// at a fixed footprint instead of growing per answered request.
pub const DEFAULT_RESPONSE_CACHE_CAP: usize = 1024;

/// Child-slot base for courier-derived spans: keeps the courier's span-id
/// derivations disjoint from the small slot numbers applications use on
/// the same parent context.
const COURIER_SLOT_BASE: u64 = 1 << 32;

/// Retry/backoff/timeout policy for a courier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommsConfig {
    /// Ticks to wait for a response before the first retransmission.
    pub timeout: u64,
    /// Retransmissions after the initial send before the request expires.
    pub max_retries: u32,
    /// Wait multiplier per retransmission (exponential backoff).
    pub backoff_factor: u64,
    /// Maximum seeded jitter (in ticks) added to each backoff wait, so a
    /// fleet of couriers does not retransmit in lock-step.
    pub jitter: u64,
    /// Bound on the idempotent-response cache (entries kept for re-answering
    /// duplicated requests). `0` disables caching; see
    /// [`Courier::with_response_cache_cap`] for the degradation semantics.
    pub response_cache_cap: usize,
}

impl Default for CommsConfig {
    fn default() -> Self {
        CommsConfig {
            timeout: 4,
            max_retries: 4,
            backoff_factor: 2,
            jitter: 2,
            response_cache_cap: DEFAULT_RESPONSE_CACHE_CAP,
        }
    }
}

impl CommsConfig {
    /// The response deadline for try number `tries` (0 = initial send),
    /// before jitter: `timeout * backoff_factor^tries`, saturating.
    pub fn wait_for_try(&self, tries: u32) -> u64 {
        let mut wait = self.timeout.max(1);
        for _ in 0..tries {
            wait = wait.saturating_mul(self.backoff_factor.max(1));
        }
        wait
    }
}

/// A request the courier gave up on after exhausting its retries.
#[derive(Debug, Clone, PartialEq)]
pub struct Expired<P> {
    /// The expired request's identity.
    pub id: MsgId,
    /// Who it was addressed to.
    pub to: NodeId,
    /// The request payload, returned so the caller can degrade or re-route.
    pub payload: P,
    /// Total transmissions attempted (1 initial + retries).
    pub tries: u32,
}

/// A deduplicated, application-relevant delivery surfaced by
/// [`Courier::accept`].
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming<P> {
    /// A request seen for the first time; answer it with
    /// [`Courier::respond`] quoting `id`.
    Request {
        /// Sender.
        from: NodeId,
        /// The request's identity (quote in the response).
        id: MsgId,
        /// Receiver-side trace context (the `comms.recv` span); continue
        /// the causal chain from it when processing the request.
        ctx: Option<TraceContext>,
        /// Request payload.
        payload: P,
    },
    /// The first response matching one of our pending requests.
    Response {
        /// Responder.
        from: NodeId,
        /// The request this answers.
        re: MsgId,
        /// Receiver-side trace context (the `comms.recv` span).
        ctx: Option<TraceContext>,
        /// Response payload.
        payload: P,
        /// Ticks between the original send and this delivery.
        rtt: u64,
    },
}

/// Per-node endpoint implementing at-least-once request/response:
/// requests are retransmitted on an exponential-backoff schedule (with
/// seeded jitter) until answered or expired; receivers dedup by [`MsgId`]
/// and re-answer duplicated requests from a bounded LRU response cache
/// (capacity set by [`CommsConfig::response_cache_cap`]), so duplicated and
/// reordered deliveries are invisible to the application.
///
/// When a request carries a sampled [`TraceContext`], every transmission
/// (initial send, each retry, the response, cached re-answers) is a span of
/// that trace: the sender mints a child span per transmission and the
/// envelope carries it, so the receiver's records name their true cause
/// even under loss, duplication, and reordering.
///
/// All state is deterministic: the only randomness is the courier's own
/// seeded jitter RNG, so a fixed seed yields a bit-identical exchange.
#[derive(Debug)]
pub struct Courier<P> {
    node: NodeId,
    cfg: CommsConfig,
    rng: StdRng,
    next_seq: u64,
    /// Our in-flight requests, keyed by local seq.
    pending: BTreeMap<u64, PendingRequest<P>>,
    /// Request ids we have surfaced to the application but not yet answered.
    seen: BTreeSet<MsgId>,
    /// Request id -> the response we sent, for re-answering dups.
    /// Bounded: see [`CommsConfig::response_cache_cap`].
    answered: BTreeMap<MsgId, CachedAnswer<P>>,
    /// LRU order over `answered` (front = coldest, evicted first).
    answered_order: VecDeque<MsgId>,
    /// Maximum `answered` entries kept for dup re-answering.
    answered_cap: usize,
    /// Receive-side sibling slot for dup-event spans (slot 0 is the
    /// surfaced delivery).
    dup_slot: u64,
    /// Responses matched to a pending request (for RTT bookkeeping tests).
    completed: u64,
    expired: u64,
    retries: u64,
    dedup_dropped: u64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Debug)]
struct PendingRequest<P> {
    to: NodeId,
    payload: P,
    /// Root context of the request (retries derive their spans from it).
    ctx: Option<TraceContext>,
    sent_at: u64,
    deadline: u64,
    tries: u32,
}

#[derive(Debug)]
struct CachedAnswer<P> {
    payload: P,
    /// Transmission context of the original response, reused verbatim by
    /// cached re-answers (the requester surfaces at most one copy).
    ctx: Option<TraceContext>,
}

/// Emit one courier trace event carrying `ctx` (no-op unless telemetry is
/// enabled *and* the trace is sampled).
fn trace_event(
    name: &'static str,
    ctx: &TraceContext,
    node: NodeId,
    extra: Vec<(telemetry::Name, telemetry::FieldValue)>,
) {
    if !telemetry::enabled() || !ctx.sampled {
        return;
    }
    let mut fields = extra;
    ctx.push_fields(node.0, &mut fields);
    telemetry::emit_event(name, telemetry::Level::Debug, fields);
}

impl<P: Clone> Courier<P> {
    /// A courier for `node` with the given policy and jitter seed.
    pub fn new(node: NodeId, cfg: CommsConfig, seed: u64) -> Self {
        Courier {
            node,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ node.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_seq: 0,
            pending: BTreeMap::new(),
            seen: BTreeSet::new(),
            answered: BTreeMap::new(),
            answered_order: VecDeque::new(),
            answered_cap: cfg.response_cache_cap,
            dup_slot: 0,
            completed: 0,
            expired: 0,
            retries: 0,
            dedup_dropped: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// This courier's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Override the idempotent-response cache bound (builder style; the
    /// constructor takes it from [`CommsConfig::response_cache_cap`]).
    /// Evicting an entry means a duplicate of that request arriving later
    /// is surfaced to the application as a fresh request instead of being
    /// re-answered from the cache — at-least-once semantics degrade
    /// gracefully, the bound just trades memory for re-work. A cap of 0
    /// disables caching entirely.
    pub fn with_response_cache_cap(mut self, cap: usize) -> Self {
        self.answered_cap = cap;
        self
    }

    /// Cached responses currently held for dup re-answering.
    pub fn response_cache_len(&self) -> usize {
        self.answered.len()
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Counters: `(completed, expired, retries, dedup_dropped)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.completed,
            self.expired,
            self.retries,
            self.dedup_dropped,
        )
    }

    /// Response-cache counters: `(hits, misses)`. A *hit* re-answered a
    /// duplicated request from the cache without involving the application;
    /// a *miss* is a fresh request surfaced for processing.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Send a request to `to` at tick `now`; it will be retransmitted on the
    /// backoff schedule until a response arrives or retries are exhausted.
    /// Returns the request's identity. Untraced shorthand for
    /// [`request_traced`](Self::request_traced).
    pub fn request(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        payload: P,
        now: u64,
    ) -> MsgId {
        self.request_traced(net, to, payload, now, None)
    }

    /// [`request`](Self::request) carrying a trace context: each
    /// transmission (this send and every retry) becomes a child span of
    /// `ctx` and rides in the envelope, giving the receiver its
    /// happened-before edge.
    pub fn request_traced(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        payload: P,
        now: u64,
        ctx: Option<TraceContext>,
    ) -> MsgId {
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        // Attempt 0's span; retries use slots 1, 2, … (see `poll`).
        let send_ctx = ctx.map(|c| c.child(COURIER_SLOT_BASE));
        if let Some(sc) = &send_ctx {
            trace_event(
                "comms.send",
                sc,
                self.node,
                vec![
                    (
                        telemetry::Name::Borrowed("to"),
                        telemetry::FieldValue::U64(to.0),
                    ),
                    (
                        telemetry::Name::Borrowed("try"),
                        telemetry::FieldValue::U64(0),
                    ),
                ],
            );
        }
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Request,
                ctx: send_ctx,
                payload: payload.clone(),
            },
            now,
        );
        if telemetry::enabled() {
            REQUESTS_SENT.with(|c| c.inc());
        }
        self.pending.insert(
            id.seq,
            PendingRequest {
                to,
                payload,
                ctx,
                sent_at: now,
                deadline: now + self.cfg.wait_for_try(0),
                tries: 1,
            },
        );
        id
    }

    /// Answer the request `re` with `payload`. The response is cached so a
    /// duplicated or retransmitted copy of the request is re-answered
    /// without involving the application again. Untraced shorthand for
    /// [`respond_traced`](Self::respond_traced).
    pub fn respond(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        re: MsgId,
        payload: P,
        now: u64,
    ) {
        self.respond_traced(net, to, re, payload, now, None)
    }

    /// [`respond`](Self::respond) carrying a trace context (usually the
    /// last processing span of the request): the response transmission
    /// becomes its child span, carried back to the requester.
    pub fn respond_traced(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        re: MsgId,
        payload: P,
        now: u64,
        ctx: Option<TraceContext>,
    ) {
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let send_ctx = ctx.map(|c| c.child(COURIER_SLOT_BASE + id.seq));
        if let Some(sc) = &send_ctx {
            trace_event(
                "comms.respond",
                sc,
                self.node,
                vec![(
                    telemetry::Name::Borrowed("to"),
                    telemetry::FieldValue::U64(to.0),
                )],
            );
        }
        self.cache_answer(re, payload.clone(), send_ctx);
        self.seen.remove(&re);
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Response { re },
                ctx: send_ctx,
                payload,
            },
            now,
        );
    }

    /// Process one delivery addressed to this node. Duplicates are absorbed
    /// here: an already-answered request is re-answered from the cache, an
    /// already-surfaced request or already-matched response is dropped.
    pub fn accept(
        &mut self,
        net: &mut Network<Envelope<P>>,
        delivered: Delivered<Envelope<P>>,
        now: u64,
    ) -> Option<Incoming<P>> {
        debug_assert_eq!(delivered.to, self.node, "misrouted delivery");
        let Envelope {
            id,
            kind,
            ctx,
            payload,
        } = delivered.payload;
        match kind {
            Kind::Request => {
                if let Some(answer) = self.answered.get(&id) {
                    let (answer_payload, answer_ctx) = (answer.payload.clone(), answer.ctx);
                    self.touch_answer(id);
                    self.dedup_dropped += 1;
                    self.cache_hits += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                        CACHE_HITS.with(|c| c.inc());
                    }
                    if let Some(c) = &ctx {
                        self.dup_slot += 1;
                        trace_event(
                            "comms.dup",
                            &c.child(self.dup_slot),
                            self.node,
                            vec![(
                                telemetry::Name::Borrowed("cached"),
                                telemetry::FieldValue::Bool(true),
                            )],
                        );
                    }
                    self.respond_again(net, delivered.from, id, answer_payload, answer_ctx, now);
                    return None;
                }
                if !self.seen.insert(id) {
                    self.dedup_dropped += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                    }
                    if let Some(c) = &ctx {
                        self.dup_slot += 1;
                        trace_event(
                            "comms.dup",
                            &c.child(self.dup_slot),
                            self.node,
                            vec![(
                                telemetry::Name::Borrowed("cached"),
                                telemetry::FieldValue::Bool(false),
                            )],
                        );
                    }
                    return None;
                }
                self.cache_misses += 1;
                if telemetry::enabled() {
                    CACHE_MISSES.with(|c| c.inc());
                }
                // Slot 0 is reserved for the one surfaced delivery of a
                // transmission; dup events use slots ≥ 1.
                let recv_ctx = ctx.map(|c| c.child(0));
                if let Some(rc) = &recv_ctx {
                    trace_event(
                        "comms.recv",
                        rc,
                        self.node,
                        vec![(
                            telemetry::Name::Borrowed("kind"),
                            telemetry::FieldValue::Str("request".into()),
                        )],
                    );
                }
                Some(Incoming::Request {
                    from: delivered.from,
                    id,
                    ctx: recv_ctx,
                    payload,
                })
            }
            Kind::Response { re } => {
                if re.node != self.node {
                    self.dedup_dropped += 1;
                    return None;
                }
                let Some(pending) = self.pending.remove(&re.seq) else {
                    // Duplicate response, or one that arrived after expiry.
                    self.dedup_dropped += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                    }
                    if let Some(c) = &ctx {
                        self.dup_slot += 1;
                        trace_event(
                            "comms.dup",
                            &c.child(self.dup_slot),
                            self.node,
                            vec![(
                                telemetry::Name::Borrowed("cached"),
                                telemetry::FieldValue::Bool(false),
                            )],
                        );
                    }
                    return None;
                };
                self.completed += 1;
                let rtt = now.saturating_sub(pending.sent_at);
                if telemetry::enabled() {
                    RTT_TICKS.with(|h| h.record(rtt));
                }
                let recv_ctx = ctx.map(|c| c.child(0));
                if let Some(rc) = &recv_ctx {
                    trace_event(
                        "comms.recv",
                        rc,
                        self.node,
                        vec![
                            (
                                telemetry::Name::Borrowed("kind"),
                                telemetry::FieldValue::Str("response".into()),
                            ),
                            (
                                telemetry::Name::Borrowed("rtt"),
                                telemetry::FieldValue::U64(rtt),
                            ),
                        ],
                    );
                }
                Some(Incoming::Response {
                    from: delivered.from,
                    re,
                    ctx: recv_ctx,
                    payload,
                    rtt,
                })
            }
        }
    }

    /// Retransmit overdue requests and expire the exhausted ones. Call once
    /// per tick after draining deliveries. Expired requests are handed back
    /// so the caller can apply its degradation policy.
    pub fn poll(&mut self, net: &mut Network<Envelope<P>>, now: u64) -> Vec<Expired<P>> {
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&seq, _)| seq)
            .collect();
        let mut expired = Vec::new();
        for seq in due {
            let exhausted = self
                .pending
                .get(&seq)
                .is_some_and(|p| p.tries > self.cfg.max_retries);
            if exhausted {
                let p = self.pending.remove(&seq).expect("pending entry vanished");
                self.expired += 1;
                if telemetry::enabled() {
                    EXPIRED.with(|c| c.inc());
                }
                expired.push(Expired {
                    id: MsgId {
                        node: self.node,
                        seq,
                    },
                    to: p.to,
                    payload: p.payload,
                    tries: p.tries,
                });
                continue;
            }
            let jitter = if self.cfg.jitter > 0 {
                self.rng.random_range(0..=self.cfg.jitter)
            } else {
                0
            };
            let p = self.pending.get_mut(&seq).expect("pending entry vanished");
            let id = MsgId {
                node: self.node,
                seq,
            };
            // Retry attempt `p.tries` gets its own span (slot matches the
            // attempt index, so replays mint identical ids).
            let send_ctx = p
                .ctx
                .map(|c| c.child(COURIER_SLOT_BASE + u64::from(p.tries)));
            let envelope = Envelope {
                id,
                kind: Kind::Request,
                ctx: send_ctx,
                payload: p.payload.clone(),
            };
            let to = p.to;
            let try_no = p.tries;
            let wait = self.cfg.wait_for_try(p.tries);
            p.tries += 1;
            p.deadline = now + wait + jitter;
            self.retries += 1;
            if telemetry::enabled() {
                RETRIES.with(|c| c.inc());
            }
            if let Some(sc) = &send_ctx {
                trace_event(
                    "comms.retry",
                    sc,
                    self.node,
                    vec![
                        (
                            telemetry::Name::Borrowed("to"),
                            telemetry::FieldValue::U64(to.0),
                        ),
                        (
                            telemetry::Name::Borrowed("try"),
                            telemetry::FieldValue::U64(u64::from(try_no)),
                        ),
                    ],
                );
            }
            net.send(self.node, to, envelope, now);
        }
        expired
    }

    /// Insert into the bounded response cache, evicting the coldest entries
    /// once the cap is exceeded. Eviction order is deterministic (pure LRU
    /// over the courier's own observation order).
    fn cache_answer(&mut self, re: MsgId, payload: P, ctx: Option<TraceContext>) {
        if self.answered_cap == 0 {
            return;
        }
        if self
            .answered
            .insert(re, CachedAnswer { payload, ctx })
            .is_some()
        {
            self.touch_answer(re);
            return;
        }
        self.answered_order.push_back(re);
        while self.answered.len() > self.answered_cap {
            if let Some(cold) = self.answered_order.pop_front() {
                self.answered.remove(&cold);
            }
        }
    }

    /// Move `re` to the hot end of the LRU order.
    fn touch_answer(&mut self, re: MsgId) {
        if let Some(pos) = self.answered_order.iter().position(|&id| id == re) {
            self.answered_order.remove(pos);
            self.answered_order.push_back(re);
        }
    }

    /// Re-send a cached answer for a duplicated request (fresh envelope id,
    /// same `re` and same transmission context — the requester surfaces at
    /// most one copy); the requester's own dedup absorbs any extra copies.
    fn respond_again(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        re: MsgId,
        payload: P,
        ctx: Option<TraceContext>,
        now: u64,
    ) {
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Response { re },
                ctx,
                payload,
            },
            now,
        );
    }
}
