//! The per-node courier: at-least-once request/response over the lossy net.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use apdm_simnet::{Delivered, Network, NodeId};
use apdm_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::envelope::{Envelope, Kind, MsgId};

thread_local! {
    static REQUESTS_SENT: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.request.sent") };
    static RETRIES: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.retry") };
    static EXPIRED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.expired") };
    static DEDUP_DROPPED: telemetry::CachedCounter =
        const { telemetry::CachedCounter::new("comms.dedup.dropped") };
    static RTT_TICKS: telemetry::CachedHistogram =
        const { telemetry::CachedHistogram::new("comms.rtt.ticks") };
}

/// Retry/backoff/timeout policy for a courier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommsConfig {
    /// Ticks to wait for a response before the first retransmission.
    pub timeout: u64,
    /// Retransmissions after the initial send before the request expires.
    pub max_retries: u32,
    /// Wait multiplier per retransmission (exponential backoff).
    pub backoff_factor: u64,
    /// Maximum seeded jitter (in ticks) added to each backoff wait, so a
    /// fleet of couriers does not retransmit in lock-step.
    pub jitter: u64,
}

impl Default for CommsConfig {
    fn default() -> Self {
        CommsConfig {
            timeout: 4,
            max_retries: 4,
            backoff_factor: 2,
            jitter: 2,
        }
    }
}

impl CommsConfig {
    /// The response deadline for try number `tries` (0 = initial send),
    /// before jitter: `timeout * backoff_factor^tries`, saturating.
    pub fn wait_for_try(&self, tries: u32) -> u64 {
        let mut wait = self.timeout.max(1);
        for _ in 0..tries {
            wait = wait.saturating_mul(self.backoff_factor.max(1));
        }
        wait
    }
}

/// A request the courier gave up on after exhausting its retries.
#[derive(Debug, Clone, PartialEq)]
pub struct Expired<P> {
    /// The expired request's identity.
    pub id: MsgId,
    /// Who it was addressed to.
    pub to: NodeId,
    /// The request payload, returned so the caller can degrade or re-route.
    pub payload: P,
    /// Total transmissions attempted (1 initial + retries).
    pub tries: u32,
}

/// A deduplicated, application-relevant delivery surfaced by
/// [`Courier::accept`].
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming<P> {
    /// A request seen for the first time; answer it with
    /// [`Courier::respond`] quoting `id`.
    Request {
        /// Sender.
        from: NodeId,
        /// The request's identity (quote in the response).
        id: MsgId,
        /// Request payload.
        payload: P,
    },
    /// The first response matching one of our pending requests.
    Response {
        /// Responder.
        from: NodeId,
        /// The request this answers.
        re: MsgId,
        /// Response payload.
        payload: P,
        /// Ticks between the original send and this delivery.
        rtt: u64,
    },
}

/// Per-node endpoint implementing at-least-once request/response:
/// requests are retransmitted on an exponential-backoff schedule (with
/// seeded jitter) until answered or expired; receivers dedup by [`MsgId`]
/// and re-answer duplicated requests from a bounded LRU response cache
/// (see [`Courier::with_response_cache_cap`]), so duplicated and reordered
/// deliveries are invisible to the application.
///
/// All state is deterministic: the only randomness is the courier's own
/// seeded jitter RNG, so a fixed seed yields a bit-identical exchange.
#[derive(Debug)]
pub struct Courier<P> {
    node: NodeId,
    cfg: CommsConfig,
    rng: StdRng,
    next_seq: u64,
    /// Our in-flight requests, keyed by local seq.
    pending: BTreeMap<u64, PendingRequest<P>>,
    /// Request ids we have surfaced to the application but not yet answered.
    seen: BTreeSet<MsgId>,
    /// Request id -> the response payload we sent, for re-answering dups.
    /// Bounded: see [`Courier::with_response_cache_cap`].
    answered: BTreeMap<MsgId, P>,
    /// LRU order over `answered` (front = coldest, evicted first).
    answered_order: VecDeque<MsgId>,
    /// Maximum `answered` entries kept for dup re-answering.
    answered_cap: usize,
    /// Responses matched to a pending request (for RTT bookkeeping tests).
    completed: u64,
    expired: u64,
    retries: u64,
    dedup_dropped: u64,
}

/// Default bound on the idempotent-response cache. Sized so that every
/// retransmission window a realistic backoff schedule can produce is still
/// covered, while a long-lived courier serving millions of requests stays
/// at a fixed footprint instead of growing per answered request.
const DEFAULT_RESPONSE_CACHE_CAP: usize = 1024;

#[derive(Debug)]
struct PendingRequest<P> {
    to: NodeId,
    payload: P,
    sent_at: u64,
    deadline: u64,
    tries: u32,
}

impl<P: Clone> Courier<P> {
    /// A courier for `node` with the given policy and jitter seed.
    pub fn new(node: NodeId, cfg: CommsConfig, seed: u64) -> Self {
        Courier {
            node,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ node.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_seq: 0,
            pending: BTreeMap::new(),
            seen: BTreeSet::new(),
            answered: BTreeMap::new(),
            answered_order: VecDeque::new(),
            answered_cap: DEFAULT_RESPONSE_CACHE_CAP,
            completed: 0,
            expired: 0,
            retries: 0,
            dedup_dropped: 0,
        }
    }

    /// This courier's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Override the idempotent-response cache bound (builder style).
    /// Evicting an entry means a duplicate of that request arriving later
    /// is surfaced to the application as a fresh request instead of being
    /// re-answered from the cache — at-least-once semantics degrade
    /// gracefully, the bound just trades memory for re-work. A cap of 0
    /// disables caching entirely.
    pub fn with_response_cache_cap(mut self, cap: usize) -> Self {
        self.answered_cap = cap;
        self
    }

    /// Cached responses currently held for dup re-answering.
    pub fn response_cache_len(&self) -> usize {
        self.answered.len()
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Counters: `(completed, expired, retries, dedup_dropped)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.completed,
            self.expired,
            self.retries,
            self.dedup_dropped,
        )
    }

    /// Send a request to `to` at tick `now`; it will be retransmitted on the
    /// backoff schedule until a response arrives or retries are exhausted.
    /// Returns the request's identity.
    pub fn request(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        payload: P,
        now: u64,
    ) -> MsgId {
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Request,
                payload: payload.clone(),
            },
            now,
        );
        if telemetry::enabled() {
            REQUESTS_SENT.with(|c| c.inc());
        }
        self.pending.insert(
            id.seq,
            PendingRequest {
                to,
                payload,
                sent_at: now,
                deadline: now + self.cfg.wait_for_try(0),
                tries: 1,
            },
        );
        id
    }

    /// Answer the request `re` with `payload`. The response is cached so a
    /// duplicated or retransmitted copy of the request is re-answered
    /// without involving the application again.
    pub fn respond(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        re: MsgId,
        payload: P,
        now: u64,
    ) {
        self.cache_answer(re, payload.clone());
        self.seen.remove(&re);
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Response { re },
                payload,
            },
            now,
        );
    }

    /// Process one delivery addressed to this node. Duplicates are absorbed
    /// here: an already-answered request is re-answered from the cache, an
    /// already-surfaced request or already-matched response is dropped.
    pub fn accept(
        &mut self,
        net: &mut Network<Envelope<P>>,
        delivered: Delivered<Envelope<P>>,
        now: u64,
    ) -> Option<Incoming<P>> {
        debug_assert_eq!(delivered.to, self.node, "misrouted delivery");
        let Envelope { id, kind, payload } = delivered.payload;
        match kind {
            Kind::Request => {
                if let Some(answer) = self.answered.get(&id).cloned() {
                    self.touch_answer(id);
                    self.dedup_dropped += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                    }
                    self.respond_again(net, delivered.from, id, answer, now);
                    return None;
                }
                if !self.seen.insert(id) {
                    self.dedup_dropped += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                    }
                    return None;
                }
                Some(Incoming::Request {
                    from: delivered.from,
                    id,
                    payload,
                })
            }
            Kind::Response { re } => {
                if re.node != self.node {
                    self.dedup_dropped += 1;
                    return None;
                }
                let Some(pending) = self.pending.remove(&re.seq) else {
                    // Duplicate response, or one that arrived after expiry.
                    self.dedup_dropped += 1;
                    if telemetry::enabled() {
                        DEDUP_DROPPED.with(|c| c.inc());
                    }
                    return None;
                };
                self.completed += 1;
                let rtt = now.saturating_sub(pending.sent_at);
                if telemetry::enabled() {
                    RTT_TICKS.with(|h| h.record(rtt));
                }
                Some(Incoming::Response {
                    from: delivered.from,
                    re,
                    payload,
                    rtt,
                })
            }
        }
    }

    /// Retransmit overdue requests and expire the exhausted ones. Call once
    /// per tick after draining deliveries. Expired requests are handed back
    /// so the caller can apply its degradation policy.
    pub fn poll(&mut self, net: &mut Network<Envelope<P>>, now: u64) -> Vec<Expired<P>> {
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&seq, _)| seq)
            .collect();
        let mut expired = Vec::new();
        for seq in due {
            let exhausted = self
                .pending
                .get(&seq)
                .is_some_and(|p| p.tries > self.cfg.max_retries);
            if exhausted {
                let p = self.pending.remove(&seq).expect("pending entry vanished");
                self.expired += 1;
                if telemetry::enabled() {
                    EXPIRED.with(|c| c.inc());
                }
                expired.push(Expired {
                    id: MsgId {
                        node: self.node,
                        seq,
                    },
                    to: p.to,
                    payload: p.payload,
                    tries: p.tries,
                });
                continue;
            }
            let jitter = if self.cfg.jitter > 0 {
                self.rng.random_range(0..=self.cfg.jitter)
            } else {
                0
            };
            let p = self.pending.get_mut(&seq).expect("pending entry vanished");
            let id = MsgId {
                node: self.node,
                seq,
            };
            let envelope = Envelope {
                id,
                kind: Kind::Request,
                payload: p.payload.clone(),
            };
            let to = p.to;
            let wait = self.cfg.wait_for_try(p.tries);
            p.tries += 1;
            p.deadline = now + wait + jitter;
            self.retries += 1;
            if telemetry::enabled() {
                RETRIES.with(|c| c.inc());
            }
            net.send(self.node, to, envelope, now);
        }
        expired
    }

    /// Insert into the bounded response cache, evicting the coldest entries
    /// once the cap is exceeded. Eviction order is deterministic (pure LRU
    /// over the courier's own observation order).
    fn cache_answer(&mut self, re: MsgId, payload: P) {
        if self.answered_cap == 0 {
            return;
        }
        if self.answered.insert(re, payload).is_some() {
            self.touch_answer(re);
            return;
        }
        self.answered_order.push_back(re);
        while self.answered.len() > self.answered_cap {
            if let Some(cold) = self.answered_order.pop_front() {
                self.answered.remove(&cold);
            }
        }
    }

    /// Move `re` to the hot end of the LRU order.
    fn touch_answer(&mut self, re: MsgId) {
        if let Some(pos) = self.answered_order.iter().position(|&id| id == re) {
            self.answered_order.remove(pos);
            self.answered_order.push_back(re);
        }
    }

    /// Re-send a cached answer for a duplicated request (fresh envelope id,
    /// same `re`); the requester's own dedup absorbs any extra copies.
    fn respond_again(
        &mut self,
        net: &mut Network<Envelope<P>>,
        to: NodeId,
        re: MsgId,
        payload: P,
        now: u64,
    ) {
        let id = MsgId {
            node: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        net.send(
            self.node,
            to,
            Envelope {
                id,
                kind: Kind::Response { re },
                payload,
            },
            now,
        );
    }
}
