//! The safety-coordination protocol: every message the guards and the
//! council exchange when they run over the degraded network.

use apdm_governance::CouncilBallot;
use apdm_guards::{AdmissionRequest, KillBallot};
use apdm_policy::Action;
use apdm_statespace::State;
use serde::{Deserialize, Serialize};

/// Payload of every safety-critical exchange in the degraded-comms model.
///
/// Watchers ship [`KillBallot`]s to the coordinator; the coordinator ships
/// kill orders (council-ratified) back to device agents; candidates ship
/// [`AdmissionRequest`]s to the formation checkpoint; council members judge
/// [`SafetyMsg::CouncilCall`]s and answer with [`CouncilBallot`]s; and
/// heartbeats keep every node's isolation monitor honest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SafetyMsg {
    /// Watcher -> coordinator: one kill-switch ballot.
    KillVote(KillBallot),
    /// Coordinator -> watcher: ballot received.
    VoteAck,
    /// Coordinator -> device agent: deactivate yourself.
    KillOrder {
        /// The device to deactivate.
        subject: String,
        /// Why.
        reason: String,
        /// Tick the order was issued.
        tick: u64,
    },
    /// Device agent -> coordinator: kill order executed.
    KillAck {
        /// The deactivated device.
        subject: String,
    },
    /// Candidate -> formation checkpoint: request to join.
    Admission(AdmissionRequest),
    /// Formation checkpoint -> candidate: the decision.
    AdmissionVerdict {
        /// Was the candidate admitted?
        admitted: bool,
    },
    /// Coordinator -> council member: judge this proposal.
    CouncilCall {
        /// The proposal's ballot id.
        ballot_id: u64,
        /// The state under judgment.
        state: State,
        /// The action under judgment.
        action: Action,
    },
    /// Council member -> coordinator: my ballot.
    CouncilVote(CouncilBallot),
    /// Keep-alive for isolation monitors.
    Heartbeat,
    /// Heartbeat response (also refreshes the sender's monitor).
    HeartbeatAck,
}

impl SafetyMsg {
    /// Stable short tag for logging and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            SafetyMsg::KillVote(_) => "kill-vote",
            SafetyMsg::VoteAck => "vote-ack",
            SafetyMsg::KillOrder { .. } => "kill-order",
            SafetyMsg::KillAck { .. } => "kill-ack",
            SafetyMsg::Admission(_) => "admission",
            SafetyMsg::AdmissionVerdict { .. } => "admission-verdict",
            SafetyMsg::CouncilCall { .. } => "council-call",
            SafetyMsg::CouncilVote(_) => "council-vote",
            SafetyMsg::Heartbeat => "heartbeat",
            SafetyMsg::HeartbeatAck => "heartbeat-ack",
        }
    }
}
