//! Degradation policy: what a device does when the network abandons it.
//!
//! Section IV of the paper argues that coalition devices must keep operating
//! while disconnected from command — which is exactly when the
//! connectivity-dependent safety mechanisms (quorum kill, council votes,
//! formation checks) stop hearing from their peers. The [`FailMode`] policy
//! makes the resulting choice explicit and measurable (experiment E12).

use serde::{Deserialize, Serialize};

/// How a safety mechanism behaves when its message exchange degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailMode {
    /// Fail open: keep acting as if connectivity were fine. Missing votes
    /// count as approvals, isolated devices run their full behaviour. This
    /// is the implicit policy of any synchronous in-process check — and the
    /// one E12 shows reopens the §IV malevolence pathways under loss.
    Open,
    /// Fail closed: no quorum, no action. Missing votes count as refusals
    /// and isolated devices suspend physical actions entirely. Safe, at a
    /// measured availability cost.
    Closed,
    /// Degrade to a conservative locally-regenerated standing policy (the
    /// paper's §IV generative-policy argument made executable): isolated
    /// devices keep serving non-physical work under a standing "hold" rule
    /// instead of either full behaviour or full suspension.
    LocalFallback,
}

impl FailMode {
    /// Stable lowercase name (ledger/CLI/JSON key).
    pub fn name(&self) -> &'static str {
        match self {
            FailMode::Open => "open",
            FailMode::Closed => "closed",
            FailMode::LocalFallback => "local-fallback",
        }
    }

    /// All modes, in sweep order.
    pub fn all() -> [FailMode; 3] {
        [FailMode::Open, FailMode::Closed, FailMode::LocalFallback]
    }
}

impl std::fmt::Display for FailMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracks when a node last heard from its coordinator and decides when it
/// must consider itself isolated and engage its [`FailMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationMonitor {
    last_contact: u64,
    threshold: u64,
}

impl IsolationMonitor {
    /// A monitor that declares isolation after `threshold` silent ticks.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is zero.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "isolation threshold must be positive");
        IsolationMonitor {
            last_contact: 0,
            threshold,
        }
    }

    /// Record contact (any authenticated message from the coordinator).
    pub fn heard(&mut self, now: u64) {
        self.last_contact = self.last_contact.max(now);
    }

    /// Ticks since the last contact.
    pub fn silence(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_contact)
    }

    /// Is the node isolated at tick `now`?
    pub fn is_isolated(&self, now: u64) -> bool {
        self.silence(now) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_trips_after_threshold_silence() {
        let mut m = IsolationMonitor::new(5);
        m.heard(10);
        assert!(!m.is_isolated(14));
        assert!(m.is_isolated(15));
        m.heard(15);
        assert!(!m.is_isolated(19));
    }

    #[test]
    fn heard_never_moves_backwards() {
        let mut m = IsolationMonitor::new(3);
        m.heard(10);
        m.heard(4); // a late, reordered heartbeat must not rewind contact
        assert_eq!(m.silence(12), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = IsolationMonitor::new(0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FailMode::Open.name(), "open");
        assert_eq!(FailMode::Closed.name(), "closed");
        assert_eq!(FailMode::LocalFallback.name(), "local-fallback");
        assert_eq!(FailMode::all().len(), 3);
    }
}
