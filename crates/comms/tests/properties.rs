//! Property tests: safety invariants of the quorum kill switch when its
//! ballots travel over an arbitrarily faulty network.

use std::collections::BTreeMap;

use proptest::prelude::*;

use apdm_guards::{KillBallot, QuorumKillSwitch};

/// What the network does to one cast ballot.
#[derive(Debug, Clone, Copy)]
enum Fate {
    Drop,
    Deliver,
    Duplicate,
}

fn arb_fate() -> impl Strategy<Value = Fate> {
    (0u8..4).prop_map(|k| match k {
        0 => Fate::Drop,
        3 => Fate::Duplicate,
        _ => Fate::Deliver,
    })
}

proptest! {
    /// Under arbitrary drop/duplicate/reorder schedules, the switch never
    /// issues a kill order unless at least `quorum` *distinct* watchers'
    /// newest delivered ballots concur, and never issues two orders for the
    /// same subject however many duplicated ballots arrive.
    #[test]
    fn quorum_safe_under_arbitrary_message_faults(
        casts in proptest::collection::vec(
            ((0usize..5), (0u8..3), any::<bool>(), arb_fate()),
            1..50,
        ),
        order_seed in any::<u64>(),
        quorum in 1usize..=5,
    ) {
        // Build the delivery schedule: each surviving ballot appears once
        // (or twice when duplicated), then reorder it deterministically.
        let mut deliveries: Vec<KillBallot> = Vec::new();
        for (cast_tick, (watcher, subject, rogue, fate)) in casts.iter().enumerate() {
            let ballot = KillBallot {
                watcher: *watcher,
                subject: format!("s{subject}"),
                rogue: *rogue,
                cast_tick: cast_tick as u64,
            };
            match fate {
                Fate::Drop => {}
                Fate::Deliver => deliveries.push(ballot),
                Fate::Duplicate => {
                    deliveries.push(ballot.clone());
                    deliveries.push(ballot);
                }
            }
        }
        // Deterministic pseudo-shuffle (Fisher–Yates with an LCG).
        let mut state = order_seed | 1;
        for i in (1..deliveries.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            deliveries.swap(i, j);
        }

        let mut switch = QuorumKillSwitch::new(5, quorum);
        // Model: the newest applied cast per (subject, watcher), mirroring
        // the latest-cast-wins rule.
        let mut model: BTreeMap<(String, usize), (u64, bool)> = BTreeMap::new();
        let mut orders: BTreeMap<String, usize> = BTreeMap::new();
        for (now, ballot) in deliveries.iter().enumerate() {
            let killed_already = switch.killed().contains(&ballot.subject);
            let order = switch.apply_ballot(ballot, now as u64);
            if !killed_already {
                let key = (ballot.subject.clone(), ballot.watcher);
                let stale = model
                    .get(&key)
                    .is_some_and(|&(tick, _)| ballot.cast_tick <= tick);
                if !stale {
                    model.insert(key, (ballot.cast_tick, ballot.rogue));
                }
            }
            if let Some(order) = order {
                let distinct_rogue = model
                    .iter()
                    .filter(|((subj, _), &(_, rogue))| *subj == order.subject && rogue)
                    .count();
                prop_assert!(
                    distinct_rogue >= quorum,
                    "killed {} with only {distinct_rogue} distinct concurring watchers (< {quorum})",
                    order.subject
                );
                *orders.entry(order.subject.clone()).or_insert(0) += 1;
            }
        }
        for (subject, count) in &orders {
            prop_assert_eq!(*count, 1, "double-kill on {}", subject);
        }
    }

    /// Delivering the exact same ballot twice in a row is always a no-op
    /// the second time: same vote count, no order.
    #[test]
    fn exact_duplicate_is_inert(
        watcher in 0usize..5,
        cast_tick in 0u64..100,
        rogue in any::<bool>(),
    ) {
        let mut switch = QuorumKillSwitch::new(5, 5);
        let ballot = KillBallot {
            watcher,
            subject: "d".to_string(),
            rogue,
            cast_tick,
        };
        switch.apply_ballot(&ballot, cast_tick);
        let before = switch.votes_for("d");
        prop_assert!(switch.apply_ballot(&ballot, cast_tick + 1).is_none());
        prop_assert_eq!(switch.votes_for("d"), before);
    }
}
