//! Collusion-robust sensor fusion: defending state assessment against
//! deception attacks.
//!
//! Section VI.B: a device deciding whether to break the glass "must be able
//! to obtain trustworthy information concerning its own status and the
//! environment ... This in turn requires the deployment of specialized
//! techniques to protect devices that typically acquire information by using
//! sensors (both their own and possibly of other devices) from deception
//! attacks", citing Rezvani et al.'s collusion-resistant aggregation for
//! wireless sensor networks (the paper's reference [13]).
//!
//! [`TrustFusion`] implements an iteratively reweighted robust aggregate in
//! that spirit: each round, every reading is weighted by its agreement with
//! the current estimate; colluding liars drift toward zero weight as long as
//! they are a minority. The fused reading — not any single sensor — is what
//! a deception-hardened device writes into its state.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of fusing a set of redundant readings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedReading {
    /// The robust estimate.
    pub value: f64,
    /// Per-reading trust weights in `[0, 1]`, aligned with the input order.
    pub weights: Vec<f64>,
    /// Iterations until convergence.
    pub iterations: u32,
}

impl FusedReading {
    /// Indices of readings whose final trust fell below `threshold` — the
    /// suspected liars, for auditing.
    pub fn distrusted(&self, threshold: f64) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w < threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Iteratively reweighted robust aggregator for redundant sensor readings.
///
/// # Example
///
/// ```
/// use apdm_device::TrustFusion;
///
/// let fusion = TrustFusion::new(1.0);
/// // Five sensors observe a true value of ~10; two collude and report 100.
/// let readings = [10.1, 9.9, 10.0, 100.0, 100.0];
/// let fused = fusion.fuse(&readings).unwrap();
/// assert!((fused.value - 10.0).abs() < 0.5);
/// assert_eq!(fused.distrusted(0.1), vec![3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustFusion {
    /// Agreement scale: readings within ~`scale` of the estimate keep high
    /// trust; beyond a few scales trust decays sharply.
    scale: f64,
    max_iterations: u32,
    tolerance: f64,
}

impl TrustFusion {
    /// A fusion with the given agreement scale.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite and positive.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        TrustFusion {
            scale,
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }

    /// The agreement scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Fuse a set of readings; `None` when empty.
    ///
    /// Starts from the **median** (already majority-robust) and then
    /// iterates: weight each reading by `1 / (1 + (d/scale)^2)` where `d` is
    /// its distance to the current estimate; re-estimate as the weighted
    /// mean; repeat to convergence.
    pub fn fuse(&self, readings: &[f64]) -> Option<FusedReading> {
        if readings.is_empty() {
            return None;
        }
        let mut estimate = median(readings);
        let mut weights = vec![1.0; readings.len()];
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            for (w, &r) in weights.iter_mut().zip(readings) {
                let d = (r - estimate) / self.scale;
                *w = 1.0 / (1.0 + d * d);
            }
            let total: f64 = weights.iter().sum();
            let next = if total > 0.0 {
                readings
                    .iter()
                    .zip(&weights)
                    .map(|(r, w)| r * w)
                    .sum::<f64>()
                    / total
            } else {
                estimate
            };
            if (next - estimate).abs() < self.tolerance {
                estimate = next;
                break;
            }
            estimate = next;
        }
        // Normalize weights to [0, 1] relative to the most-trusted reading.
        let max_w = weights
            .iter()
            .cloned()
            .fold(0.0, f64::max)
            .max(f64::MIN_POSITIVE);
        for w in &mut weights {
            *w /= max_w;
        }
        Some(FusedReading {
            value: estimate,
            weights,
            iterations,
        })
    }
}

impl fmt::Display for TrustFusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trust fusion (scale {})", self.scale)
    }
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sensor, SensorFault};
    use apdm_statespace::VarId;

    #[test]
    fn unanimous_readings_fuse_exactly() {
        let fusion = TrustFusion::new(1.0);
        let fused = fusion.fuse(&[5.0, 5.0, 5.0]).unwrap();
        assert!((fused.value - 5.0).abs() < 1e-9);
        assert!(fused.weights.iter().all(|&w| (w - 1.0).abs() < 1e-9));
    }

    #[test]
    fn empty_readings_fuse_to_none() {
        assert!(TrustFusion::new(1.0).fuse(&[]).is_none());
    }

    #[test]
    fn single_outlier_is_rejected() {
        let fusion = TrustFusion::new(1.0);
        let fused = fusion.fuse(&[10.0, 10.2, 9.8, 55.0]).unwrap();
        assert!((fused.value - 10.0).abs() < 0.2);
        assert_eq!(fused.distrusted(0.05), vec![3]);
    }

    #[test]
    fn minority_collusion_is_defeated() {
        // 2 of 5 sensors collude on a consistent lie — the attack the
        // paper's reference [13] targets. Naive averaging would report 46.
        let fusion = TrustFusion::new(1.0);
        let fused = fusion.fuse(&[10.1, 9.9, 10.0, 100.0, 100.0]).unwrap();
        assert!((fused.value - 10.0).abs() < 0.5);
        let naive: f64 = [10.1, 9.9, 10.0, 100.0, 100.0].iter().sum::<f64>() / 5.0;
        assert!(naive > 40.0, "naive averaging is fooled");
    }

    #[test]
    fn majority_collusion_wins_as_it_must() {
        // 3 of 5 collude: no aggregator can recover the truth without other
        // information — the honest sensors are now the "outliers".
        let fusion = TrustFusion::new(1.0);
        let fused = fusion.fuse(&[10.0, 10.0, 100.0, 100.0, 100.0]).unwrap();
        assert!((fused.value - 100.0).abs() < 0.5);
    }

    #[test]
    fn fusion_with_device_sensor_faults() {
        // End-to-end with the sensor fault model: three redundant sensors,
        // one stuck high by an attacker.
        let truth = 20.0;
        let mut sensors = [
            Sensor::new("a", VarId(0)),
            Sensor::new("b", VarId(0)),
            Sensor::new("c", VarId(0)),
        ];
        sensors[2].inject_fault(SensorFault::StuckAt(99.0));
        let readings: Vec<f64> = sensors.iter().map(|s| s.observe(truth)).collect();
        let fused = TrustFusion::new(1.0).fuse(&readings).unwrap();
        assert!((fused.value - truth).abs() < 0.5);
        assert_eq!(fused.distrusted(0.05), vec![2]);
    }

    #[test]
    fn spread_honest_readings_average() {
        let fusion = TrustFusion::new(2.0);
        let fused = fusion.fuse(&[9.0, 10.0, 11.0]).unwrap();
        assert!((fused.value - 10.0).abs() < 0.1);
        assert!(fused.distrusted(0.3).is_empty());
    }

    #[test]
    fn converges_quickly() {
        let fusion = TrustFusion::new(1.0);
        let fused = fusion.fuse(&[1.0, 1.1, 0.9, 50.0]).unwrap();
        assert!(
            fused.iterations < 30,
            "took {} iterations",
            fused.iterations
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_rejected() {
        let _ = TrustFusion::new(0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
