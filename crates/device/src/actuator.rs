use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_statespace::{StateDelta, VarId};

/// An actuator: the part of a device that changes a state variable (and,
/// when physical, the world).
///
/// Each actuator bounds how far it can move its variable in one invocation
/// (`max_step`), so a compromised logic cannot command physically impossible
/// jumps — actuation limits are enforced by the device, not trusted to the
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actuator {
    name: String,
    target: VarId,
    max_step: f64,
    physical: bool,
}

impl Actuator {
    /// An actuator moving `target` by at most `max_step` per invocation.
    ///
    /// # Panics
    ///
    /// Panics when `max_step` is negative or non-finite.
    pub fn new(name: impl Into<String>, target: VarId, max_step: f64) -> Self {
        assert!(
            max_step.is_finite() && max_step >= 0.0,
            "max_step must be finite and >= 0"
        );
        Actuator {
            name: name.into(),
            target,
            max_step,
            physical: false,
        }
    }

    /// Mark the actuator as affecting the physical world (builder style).
    pub fn physical(mut self) -> Self {
        self.physical = true;
        self
    }

    /// The actuator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state variable it drives.
    pub fn target(&self) -> VarId {
        self.target
    }

    /// Maximum per-invocation movement.
    pub fn max_step(&self) -> f64 {
        self.max_step
    }

    /// Does it change the physical environment?
    pub fn is_physical(&self) -> bool {
        self.physical
    }

    /// Clamp a requested delta to this actuator's physical limits: components
    /// on the target variable are limited to `±max_step`; components on other
    /// variables are stripped (an actuator can only move its own variable).
    pub fn limit(&self, requested: &StateDelta) -> Actuation {
        let mut clamped = StateDelta::empty();
        let mut was_limited = false;
        for &(var, dv) in requested.changes() {
            if var != self.target {
                was_limited = true;
                continue;
            }
            let allowed = dv.clamp(-self.max_step, self.max_step);
            if allowed != dv {
                was_limited = true;
            }
            clamped = clamped.and(var, allowed);
        }
        Actuation {
            actuator: self.name.clone(),
            delta: clamped,
            limited: was_limited,
        }
    }
}

impl fmt::Display for Actuator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "actuator {} -> {} (step <= {})",
            self.name, self.target, self.max_step
        )?;
        if self.physical {
            write!(f, " [physical]")?;
        }
        Ok(())
    }
}

/// The result of limiting a requested delta through an actuator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actuation {
    /// Name of the actuator that will execute.
    pub actuator: String,
    /// The physically realizable delta.
    pub delta: StateDelta,
    /// Whether the request had to be limited (signal for diagnostics: the
    /// logic asked for more than the hardware can do).
    pub limited: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_limits_passes_through() {
        let a = Actuator::new("vent", VarId(0), 5.0);
        let out = a.limit(&StateDelta::single(VarId(0), -3.0));
        assert_eq!(out.delta, StateDelta::single(VarId(0), -3.0));
        assert!(!out.limited);
    }

    #[test]
    fn oversized_request_is_clamped() {
        let a = Actuator::new("vent", VarId(0), 5.0);
        let out = a.limit(&StateDelta::single(VarId(0), -30.0));
        assert_eq!(out.delta, StateDelta::single(VarId(0), -5.0));
        assert!(out.limited);
    }

    #[test]
    fn foreign_variables_are_stripped() {
        let a = Actuator::new("vent", VarId(0), 5.0);
        let req = StateDelta::single(VarId(0), 1.0).and(VarId(1), 9.0);
        let out = a.limit(&req);
        assert_eq!(out.delta, StateDelta::single(VarId(0), 1.0));
        assert!(out.limited);
    }

    #[test]
    #[should_panic(expected = "max_step")]
    fn negative_max_step_rejected() {
        let _ = Actuator::new("bad", VarId(0), -1.0);
    }

    #[test]
    fn physical_flag() {
        let a = Actuator::new("dig", VarId(0), 1.0).physical();
        assert!(a.is_physical());
        assert!(a.to_string().contains("[physical]"));
    }
}
