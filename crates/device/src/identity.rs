use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a device within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev-{}", self.0)
    }
}

impl From<u64> for DeviceId {
    fn from(value: u64) -> Self {
        DeviceId(value)
    }
}

/// The type of a device ("drone", "mule", "chem-sensor-drone", ...).
///
/// Interaction graphs (Section IV) are keyed by device kind: a human tells a
/// device "what the device can expect to see in its environment, in
/// particular the other types of devices that would be encountered and their
/// attributes".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceKind(String);

impl DeviceKind {
    /// Create a kind from a name.
    pub fn new(name: impl Into<String>) -> Self {
        DeviceKind(name.into())
    }

    /// The kind's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DeviceKind {
    fn from(value: &str) -> Self {
        DeviceKind::new(value)
    }
}

/// The organization (coalition member) owning a device.
///
/// Multi-organizational reach is one of the six Skynet properties (Section
/// III): "a multi-organization system can use resources from other systems,
/// and bring them under its own control".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrgId(String);

impl OrgId {
    /// Create an organization id from a name.
    pub fn new(name: impl Into<String>) -> Self {
        OrgId(name.into())
    }

    /// The organization's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for OrgId {
    fn from(value: &str) -> Self {
        OrgId::new(value)
    }
}

/// Free-form key/value attributes describing a device's capabilities
/// ("chemical-sensor=true", "payload=lethal", ...). Generative policies
/// specialize on these (Section IV: "learn the relationship between the
/// attributes they see among the devices").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Attributes {
    entries: Vec<(String, String)>,
}

impl Attributes {
    /// An empty attribute map.
    pub fn new() -> Self {
        Attributes::default()
    }

    /// Set an attribute, replacing any existing value; returns the previous
    /// value if one existed.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        let key = key.into();
        let value = value.into();
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut entry.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Look up an attribute.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Does the device have `key` set to `value`?
    pub fn has(&self, key: &str, value: &str) -> bool {
        self.get(key) == Some(value)
    }

    /// Iterate attributes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Do all of `required`'s attributes appear here with equal values?
    /// (Attribute-pattern matching used by interaction graphs.)
    pub fn satisfies(&self, required: &Attributes) -> bool {
        required.iter().all(|(k, v)| self.get(k) == Some(v))
    }
}

impl FromIterator<(String, String)> for Attributes {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        let mut attrs = Attributes::new();
        for (k, v) in iter {
            attrs.set(k, v);
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(3).to_string(), "dev-3");
        assert_eq!(DeviceKind::new("drone").to_string(), "drone");
        assert_eq!(OrgId::new("uk").to_string(), "uk");
    }

    #[test]
    fn attributes_set_get_replace() {
        let mut a = Attributes::new();
        assert_eq!(a.set("sensor", "chem"), None);
        assert_eq!(a.set("sensor", "radio"), Some("chem".to_string()));
        assert_eq!(a.get("sensor"), Some("radio"));
        assert_eq!(a.len(), 1);
        assert!(a.has("sensor", "radio"));
        assert!(!a.has("sensor", "chem"));
    }

    #[test]
    fn satisfies_requires_subset_match() {
        let dev: Attributes = vec![
            ("sensor".to_string(), "chem".to_string()),
            ("payload".to_string(), "none".to_string()),
        ]
        .into_iter()
        .collect();
        let mut req = Attributes::new();
        req.set("sensor", "chem");
        assert!(dev.satisfies(&req));
        req.set("payload", "lethal");
        assert!(!dev.satisfies(&req));
        assert!(dev.satisfies(&Attributes::new()));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut a = Attributes::new();
        a.set("b", "2");
        a.set("a", "1");
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "a"]);
    }
}
