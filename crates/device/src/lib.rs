//! Abstract device model: sensors, actuators, logic and state.
//!
//! Implements Figure 2 of *How to Prevent Skynet From Forming* (Calo et al.,
//! ICDCS 2018): "Any device can be viewed as a set of sensors and actuators
//! which has logic dictating its behavior under different circumstances ...
//! When an event occurs ... the logic used within the device looks at the
//! current state and the inbound event, and then takes an action. The result
//! of the action, which may invoke an actuator, effectively moves the device
//! to another state."
//!
//! A [`Device`] owns:
//!
//! * an identity: [`DeviceId`], [`DeviceKind`], owning [`OrgId`] and
//!   free-form [`Attributes`] (the attributes that interaction graphs match
//!   on in Section IV);
//! * a [`State`](apdm_statespace::State) over a
//!   [`StateSchema`](apdm_statespace::StateSchema);
//! * [`Sensor`]s that write environment observations into state variables
//!   (with noise/bias models so deception attacks are expressible);
//! * [`Actuator`]s that actions invoke, each bounding how fast it can move
//!   its state variable and whether it touches the physical world;
//! * logic: a [`PolicyEngine`](apdm_policy::PolicyEngine) over ECA rules;
//! * [`Health`] driven by diagnostic checks ("the good states (normal
//!   operation) and the bad states (need repair) can be identified by a set
//!   of conditions (e.g., the results of a set of diagnostic checks)").
//!
//! Participates in experiments **F1**, **F2** and as the substrate of every
//! fleet experiment (DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use apdm_device::{Actuator, Device, DeviceKind, OrgId};
//! use apdm_policy::{Action, Condition, EcaRule, Event};
//! use apdm_statespace::{StateDelta, StateSchema};
//!
//! let schema = StateSchema::builder().var("altitude", 0.0, 100.0).build();
//! let mut drone = Device::builder(1, DeviceKind::new("drone"), OrgId::new("us"))
//!     .schema(schema)
//!     .actuator(Actuator::new("climb", 0.into(), 10.0).physical())
//!     .rule(EcaRule::new(
//!         "gain-altitude",
//!         Event::pattern("threat"),
//!         Condition::True,
//!         Action::adjust("climb", StateDelta::single(0.into(), 10.0)).physical(),
//!     ))
//!     .build();
//!
//! let decision = drone.propose(&Event::named("threat")).unwrap();
//! drone.apply(decision.action());
//! assert_eq!(drone.state().values()[0], 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actuator;
mod device;
mod fusion;
mod health;
mod identity;
mod sensor;

pub use actuator::{Actuation, Actuator};
pub use device::{Device, DeviceBuilder};
pub use fusion::{FusedReading, TrustFusion};
pub use health::{DiagnosticCheck, Health, HealthMonitor};
pub use identity::{Attributes, DeviceId, DeviceKind, OrgId};
pub use sensor::{Sensor, SensorFault};
