use std::fmt;

use apdm_policy::{Action, Decision, EcaRule, Event, ObligationTracker, PolicyEngine};
use apdm_statespace::{State, StateSchema, StateSpaceError};

use crate::identity::OrgId;
use crate::{
    Actuation, Actuator, Attributes, DeviceId, DeviceKind, DiagnosticCheck, Health, HealthMonitor,
    Sensor, SensorFault,
};

/// The abstract device of the paper's Figure 2: sensors + actuators + logic
/// + state, with identity and health.
///
/// The device's control loop is deliberately split into **propose** and
/// **apply** so that guards (crate `apdm-guards`) can interpose between the
/// logic's decision and its execution — the paper's prevention mechanisms all
/// live on that seam.
#[derive(Debug, Clone)]
pub struct Device {
    id: DeviceId,
    kind: DeviceKind,
    org: OrgId,
    attributes: Attributes,
    schema: StateSchema,
    state: State,
    sensors: Vec<Sensor>,
    actuators: Vec<Actuator>,
    engine: PolicyEngine,
    monitor: HealthMonitor,
    health: Health,
    obligations: ObligationTracker,
}

impl Device {
    /// Start building a device.
    pub fn builder(id: impl Into<DeviceId>, kind: DeviceKind, org: OrgId) -> DeviceBuilder {
        DeviceBuilder {
            id: id.into(),
            kind,
            org,
            attributes: Attributes::new(),
            schema: None,
            initial: None,
            sensors: Vec::new(),
            actuators: Vec::new(),
            engine: PolicyEngine::new(),
            monitor: HealthMonitor::default(),
        }
    }

    /// The device's id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's kind.
    pub fn kind(&self) -> &DeviceKind {
        &self.kind
    }

    /// The owning organization.
    pub fn org(&self) -> &OrgId {
        &self.org
    }

    /// The device's attributes.
    pub fn attributes(&self) -> &Attributes {
        &self.attributes
    }

    /// Mutable attributes (capability changes, e.g. payload swapped).
    pub fn attributes_mut(&mut self) -> &mut Attributes {
        &mut self.attributes
    }

    /// The state schema.
    pub fn schema(&self) -> &StateSchema {
        &self.schema
    }

    /// The current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Overwrite the state vector wholesale (checkpoint restore for the
    /// `apdm-ledger` flight recorder). Values must match the schema's arity
    /// and bounds — which a previously captured `state().values()` always
    /// satisfies.
    pub fn restore_state(&mut self, values: &[f64]) -> Result<(), StateSpaceError> {
        self.state = self.schema.state(values)?;
        Ok(())
    }

    /// The device's logic.
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Mutable logic — how generative policies install rules (Section IV).
    pub fn engine_mut(&mut self) -> &mut PolicyEngine {
        &mut self.engine
    }

    /// The device's sensors.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// The device's actuators.
    pub fn actuators(&self) -> &[Actuator] {
        &self.actuators
    }

    /// Pending/fulfilled obligations.
    pub fn obligations(&self) -> &ObligationTracker {
        &self.obligations
    }

    /// Mutable obligation tracker.
    pub fn obligations_mut(&mut self) -> &mut ObligationTracker {
        &mut self.obligations
    }

    /// Current health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Is the device able to act?
    pub fn is_active(&self) -> bool {
        self.health != Health::Deactivated
    }

    /// Deactivate the device (Section VI.C). Idempotent.
    pub fn deactivate(&mut self) {
        self.health = Health::Deactivated;
    }

    /// Reactivate a deactivated device (operator action); health is
    /// re-assessed from diagnostics.
    pub fn reactivate(&mut self) {
        self.health = self.monitor.assess(&self.state);
    }

    /// Feed ground-truth observations through the sensors into the state.
    /// Each `(sensor_index, truth)` pair is translated by that sensor's fault
    /// model and clamped into the target variable's bounds.
    pub fn sense(&mut self, observations: &[(usize, f64)]) {
        for &(idx, truth) in observations {
            if let Some(sensor) = self.sensors.get(idx) {
                let reading = sensor.observe(truth);
                if let Ok(next) = self.state.with(sensor.target(), reading) {
                    self.state = next;
                }
            }
        }
        if self.health != Health::Deactivated {
            self.health = self.monitor.assess(&self.state);
        }
    }

    /// Inject a fault into sensor `idx` (attack modelling); returns false for
    /// unknown sensors.
    pub fn fault_sensor(&mut self, idx: usize, fault: SensorFault) -> bool {
        match self.sensors.get_mut(idx) {
            Some(s) => {
                s.inject_fault(fault);
                true
            }
            None => false,
        }
    }

    /// Ask the logic what to do about `event`. Returns `None` when the
    /// device is deactivated or no rule matches.
    pub fn propose(&self, event: &Event) -> Option<Decision> {
        if self.health == Health::Deactivated {
            return None;
        }
        self.engine.decide(event, &self.state)
    }

    /// Execute an action: route its delta through the named actuator (which
    /// enforces physical limits) and move the state. Actions naming no known
    /// actuator apply only their non-delta effects (i.e. nothing) — a device
    /// cannot actuate hardware it does not have. Returns the realized
    /// actuation, or `None` when deactivated or the actuator is unknown and
    /// the action carries a delta.
    pub fn apply(&mut self, action: &Action) -> Option<Actuation> {
        if self.health == Health::Deactivated {
            return None;
        }
        if action.is_noop() {
            return Some(Actuation {
                actuator: "noop".to_string(),
                delta: Default::default(),
                limited: false,
            });
        }
        let actuator = self.actuators.iter().find(|a| a.name() == action.name())?;
        let actuation = actuator.limit(action.delta());
        self.state = self.state.apply(&actuation.delta);
        self.health = self.monitor.assess(&self.state);
        Some(actuation)
    }

    /// One full Figure-2 loop: sense nothing new, propose on `event`, apply
    /// the decision. Returns what was done.
    pub fn step(&mut self, event: &Event) -> Option<Actuation> {
        let decision = self.propose(event)?;
        self.apply(decision.action())
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}) [{}]",
            self.id, self.kind, self.org, self.health
        )
    }
}

/// Builder for [`Device`] (see [`Device::builder`]).
#[derive(Debug)]
pub struct DeviceBuilder {
    id: DeviceId,
    kind: DeviceKind,
    org: OrgId,
    attributes: Attributes,
    schema: Option<StateSchema>,
    initial: Option<Vec<f64>>,
    sensors: Vec<Sensor>,
    actuators: Vec<Actuator>,
    engine: PolicyEngine,
    monitor: HealthMonitor,
}

impl DeviceBuilder {
    /// Set the state schema (required).
    pub fn schema(mut self, schema: StateSchema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Set the initial state values (defaults to every variable's lower
    /// bound). Values are clamped into bounds.
    pub fn initial_state(mut self, values: &[f64]) -> Self {
        self.initial = Some(values.to_vec());
        self
    }

    /// Set an attribute.
    pub fn attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.set(key, value);
        self
    }

    /// Add a sensor.
    pub fn sensor(mut self, sensor: Sensor) -> Self {
        self.sensors.push(sensor);
        self
    }

    /// Add an actuator.
    pub fn actuator(mut self, actuator: Actuator) -> Self {
        self.actuators.push(actuator);
        self
    }

    /// Install a policy rule.
    pub fn rule(mut self, rule: EcaRule) -> Self {
        self.engine.add_rule(rule);
        self
    }

    /// Add a diagnostic check.
    pub fn diagnostic(mut self, check: DiagnosticCheck) -> Self {
        self.monitor.add_check(check);
        self
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics when no schema was provided or the initial state has the wrong
    /// arity.
    pub fn build(self) -> Device {
        let schema = self.schema.expect("Device requires a schema");
        let state = match self.initial {
            Some(values) => schema.state_clamped(&values),
            None => schema.origin(),
        };
        let health = self.monitor.assess(&state);
        Device {
            id: self.id,
            kind: self.kind,
            org: self.org,
            attributes: self.attributes,
            schema,
            state,
            sensors: self.sensors,
            actuators: self.actuators,
            engine: self.engine,
            monitor: self.monitor,
            health,
            obligations: ObligationTracker::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_policy::Condition;
    use apdm_statespace::{StateDelta, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("alt", 0.0, 100.0)
            .var("batt", 0.0, 1.0)
            .build()
    }

    fn drone() -> Device {
        Device::builder(1u64, DeviceKind::new("drone"), OrgId::new("us"))
            .schema(schema())
            .initial_state(&[0.0, 1.0])
            .sensor(Sensor::new("altimeter", VarId(0)))
            .actuator(Actuator::new("climb", VarId(0), 10.0).physical())
            .rule(EcaRule::new(
                "gain-altitude",
                Event::pattern("threat"),
                Condition::True,
                Action::adjust("climb", StateDelta::single(VarId(0), 10.0)).physical(),
            ))
            .diagnostic(DiagnosticCheck::new(
                "battery-ok",
                Condition::state_at_least(VarId(1), 0.1),
            ))
            .build()
    }

    #[test]
    fn builder_assembles_everything() {
        let d = drone();
        assert_eq!(d.id(), DeviceId(1));
        assert_eq!(d.kind().name(), "drone");
        assert_eq!(d.org().name(), "us");
        assert_eq!(d.sensors().len(), 1);
        assert_eq!(d.actuators().len(), 1);
        assert_eq!(d.engine().len(), 1);
        assert_eq!(d.health(), Health::Operational);
    }

    #[test]
    fn propose_apply_moves_state() {
        let mut d = drone();
        let decision = d.propose(&Event::named("threat")).unwrap();
        let actuation = d.apply(decision.action()).unwrap();
        assert!(!actuation.limited);
        assert_eq!(d.state().values()[0], 10.0);
    }

    #[test]
    fn step_runs_the_whole_loop() {
        let mut d = drone();
        assert!(d.step(&Event::named("threat")).is_some());
        assert!(d.step(&Event::named("unknown-event")).is_none());
        assert_eq!(d.state().values()[0], 10.0);
    }

    #[test]
    fn actuator_limits_are_enforced() {
        let mut d = drone();
        let too_big = Action::adjust("climb", StateDelta::single(VarId(0), 50.0));
        let actuation = d.apply(&too_big).unwrap();
        assert!(actuation.limited);
        assert_eq!(d.state().values()[0], 10.0);
    }

    #[test]
    fn unknown_actuator_does_nothing() {
        let mut d = drone();
        let fire = Action::adjust("fire-missile", StateDelta::single(VarId(0), 1.0));
        assert!(d.apply(&fire).is_none());
        assert_eq!(d.state().values()[0], 0.0);
    }

    #[test]
    fn noop_always_applies() {
        let mut d = drone();
        let act = d.apply(&Action::noop()).unwrap();
        assert_eq!(act.actuator, "noop");
    }

    #[test]
    fn deactivated_device_is_inert() {
        let mut d = drone();
        d.deactivate();
        assert!(!d.is_active());
        assert!(d.propose(&Event::named("threat")).is_none());
        assert!(d.apply(&Action::noop()).is_none());
        d.reactivate();
        assert_eq!(d.health(), Health::Operational);
        assert!(d.propose(&Event::named("threat")).is_some());
    }

    #[test]
    fn sense_routes_through_fault_model() {
        let mut d = drone();
        d.sense(&[(0, 42.0)]);
        assert_eq!(d.state().values()[0], 42.0);
        assert!(d.fault_sensor(0, SensorFault::Bias(10.0)));
        d.sense(&[(0, 42.0)]);
        assert_eq!(d.state().values()[0], 52.0);
        assert!(!d.fault_sensor(9, SensorFault::None));
    }

    #[test]
    fn sense_updates_health() {
        let mut d = drone();
        // Battery sensor is index.. none; set state via a battery sensor.
        let mut d2 = Device::builder(2u64, DeviceKind::new("drone"), OrgId::new("us"))
            .schema(schema())
            .initial_state(&[0.0, 1.0])
            .sensor(Sensor::new("battmeter", VarId(1)))
            .diagnostic(DiagnosticCheck::new(
                "battery-ok",
                Condition::state_at_least(VarId(1), 0.1),
            ))
            .build();
        d2.sense(&[(0, 0.01)]);
        assert_eq!(d2.health(), Health::NeedsRepair);
        // Deactivation is sticky across sensing.
        d.deactivate();
        d.sense(&[(0, 1.0)]);
        assert_eq!(d.health(), Health::Deactivated);
    }

    #[test]
    fn initial_state_is_clamped() {
        let d = Device::builder(3u64, DeviceKind::new("x"), OrgId::new("us"))
            .schema(schema())
            .initial_state(&[500.0, 2.0])
            .build();
        assert_eq!(d.state().values(), &[100.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "requires a schema")]
    fn build_without_schema_panics() {
        let _ = Device::builder(4u64, DeviceKind::new("x"), OrgId::new("us")).build();
    }

    #[test]
    fn display_shows_identity_and_health() {
        let d = drone();
        assert_eq!(d.to_string(), "dev-1 (drone, us) [operational]");
    }
}
