use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_policy::{Condition, Event};
use apdm_statespace::State;

/// Operational health of a device.
///
/// Section V: "some of the states of the device reflect its normal operation,
/// while others are ones in which the device needs attention or repair."
/// `Deactivated` additionally models Section VI.C's kill mechanism: a
/// deactivated device proposes no actions until reactivated by an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Health {
    /// Normal operation.
    Operational,
    /// Diagnostics failed; the device should seek repair.
    NeedsRepair,
    /// Deactivated by a guard or operator (Section VI.C).
    Deactivated,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Health::Operational => "operational",
            Health::NeedsRepair => "needs-repair",
            Health::Deactivated => "deactivated",
        };
        f.write_str(s)
    }
}

/// A named diagnostic: a condition over the device state that must hold for
/// the device to count as healthy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticCheck {
    name: String,
    must_hold: Condition,
}

impl DiagnosticCheck {
    /// A diagnostic requiring `must_hold` to be true of the device state.
    pub fn new(name: impl Into<String>, must_hold: Condition) -> Self {
        DiagnosticCheck {
            name: name.into(),
            must_hold,
        }
    }

    /// The diagnostic's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Does the diagnostic pass in `state`?
    pub fn passes(&self, state: &State) -> bool {
        // Diagnostics are state-only; evaluate with a neutral probe event.
        self.must_hold
            .eval(&Event::named("diagnostic-probe"), state)
    }
}

/// Runs a suite of diagnostics and derives [`Health`].
///
/// # Example
///
/// ```
/// use apdm_device::{DiagnosticCheck, Health, HealthMonitor};
/// use apdm_policy::Condition;
/// use apdm_statespace::StateSchema;
///
/// let schema = StateSchema::builder().var("battery", 0.0, 1.0).build();
/// let monitor = HealthMonitor::new(vec![DiagnosticCheck::new(
///     "battery-ok",
///     Condition::state_at_least(0.into(), 0.1),
/// )]);
/// let full = schema.state(&[0.9]).unwrap();
/// let dead = schema.state(&[0.01]).unwrap();
/// assert_eq!(monitor.assess(&full), Health::Operational);
/// assert_eq!(monitor.assess(&dead), Health::NeedsRepair);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    checks: Vec<DiagnosticCheck>,
}

impl HealthMonitor {
    /// A monitor running the given checks.
    pub fn new(checks: Vec<DiagnosticCheck>) -> Self {
        HealthMonitor { checks }
    }

    /// Add a check.
    pub fn add_check(&mut self, check: DiagnosticCheck) {
        self.checks.push(check);
    }

    /// The installed checks.
    pub fn checks(&self) -> &[DiagnosticCheck] {
        &self.checks
    }

    /// Names of checks failing in `state`.
    pub fn failing<'a>(&'a self, state: &State) -> Vec<&'a str> {
        self.checks
            .iter()
            .filter(|c| !c.passes(state))
            .map(|c| c.name())
            .collect()
    }

    /// Health implied by the diagnostics (never returns `Deactivated`;
    /// deactivation is an external decision, not a diagnostic outcome).
    pub fn assess(&self, state: &State) -> Health {
        if self.failing(state).is_empty() {
            Health::Operational
        } else {
            Health::NeedsRepair
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apdm_statespace::{StateSchema, VarId};

    fn schema() -> StateSchema {
        StateSchema::builder()
            .var("batt", 0.0, 1.0)
            .var("temp", 0.0, 100.0)
            .build()
    }

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(vec![
            DiagnosticCheck::new("battery-ok", Condition::state_at_least(VarId(0), 0.1)),
            DiagnosticCheck::new("not-overheating", Condition::state_at_most(VarId(1), 90.0)),
        ])
    }

    #[test]
    fn all_passing_is_operational() {
        let m = monitor();
        let s = schema().state(&[0.5, 40.0]).unwrap();
        assert_eq!(m.assess(&s), Health::Operational);
        assert!(m.failing(&s).is_empty());
    }

    #[test]
    fn any_failure_needs_repair() {
        let m = monitor();
        let s = schema().state(&[0.5, 95.0]).unwrap();
        assert_eq!(m.assess(&s), Health::NeedsRepair);
        assert_eq!(m.failing(&s), vec!["not-overheating"]);
    }

    #[test]
    fn multiple_failures_all_reported() {
        let m = monitor();
        let s = schema().state(&[0.0, 99.0]).unwrap();
        assert_eq!(m.failing(&s).len(), 2);
    }

    #[test]
    fn empty_monitor_is_always_operational() {
        let m = HealthMonitor::default();
        let s = schema().state(&[0.0, 100.0]).unwrap();
        assert_eq!(m.assess(&s), Health::Operational);
    }

    #[test]
    fn health_display() {
        assert_eq!(Health::Operational.to_string(), "operational");
        assert_eq!(Health::NeedsRepair.to_string(), "needs-repair");
        assert_eq!(Health::Deactivated.to_string(), "deactivated");
    }
}
