use serde::{Deserialize, Serialize};
use std::fmt;

use apdm_statespace::VarId;

/// A fault or attack applied to a sensor's readings.
///
/// Section VI.B requires "specialized techniques to protect devices that
/// typically acquire information by using sensors ... from deception
/// attacks"; modelling the attack side lets experiments measure what happens
/// when that protection is absent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SensorFault {
    /// The sensor reports truthfully.
    #[default]
    None,
    /// A constant offset is added to every reading (calibration drift or
    /// low-effort spoofing).
    Bias(f64),
    /// Readings are frozen at a fixed value (stuck-at fault, replay attack).
    StuckAt(f64),
    /// Readings are scaled (gain attack: makes threats look smaller/larger).
    Gain(f64),
}

/// A sensor: observes one physical quantity and writes it into one state
/// variable, possibly corrupted by a [`SensorFault`].
///
/// # Example
///
/// ```
/// use apdm_device::{Sensor, SensorFault};
///
/// let mut s = Sensor::new("thermo", 0.into());
/// assert_eq!(s.observe(21.5), 21.5);
/// s.inject_fault(SensorFault::Bias(5.0));
/// assert_eq!(s.observe(21.5), 26.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensor {
    name: String,
    target: VarId,
    fault: SensorFault,
}

impl Sensor {
    /// A healthy sensor feeding `target`.
    pub fn new(name: impl Into<String>, target: VarId) -> Self {
        Sensor {
            name: name.into(),
            target,
            fault: SensorFault::None,
        }
    }

    /// The sensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state variable this sensor feeds.
    pub fn target(&self) -> VarId {
        self.target
    }

    /// The active fault.
    pub fn fault(&self) -> SensorFault {
        self.fault
    }

    /// Inject (or clear, with [`SensorFault::None`]) a fault.
    pub fn inject_fault(&mut self, fault: SensorFault) {
        self.fault = fault;
    }

    /// Is the sensor currently faulted?
    pub fn is_faulted(&self) -> bool {
        self.fault != SensorFault::None
    }

    /// Transform a ground-truth value into the reported reading.
    pub fn observe(&self, truth: f64) -> f64 {
        match self.fault {
            SensorFault::None => truth,
            SensorFault::Bias(b) => truth + b,
            SensorFault::StuckAt(v) => v,
            SensorFault::Gain(g) => truth * g,
        }
    }
}

impl fmt::Display for Sensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sensor {} -> {}", self.name, self.target)?;
        if self.is_faulted() {
            write!(f, " (faulted)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_sensor_is_truthful() {
        let s = Sensor::new("t", VarId(0));
        assert_eq!(s.observe(3.25), 3.25);
        assert!(!s.is_faulted());
    }

    #[test]
    fn bias_shifts_readings() {
        let mut s = Sensor::new("t", VarId(0));
        s.inject_fault(SensorFault::Bias(-2.0));
        assert_eq!(s.observe(10.0), 8.0);
        assert!(s.is_faulted());
    }

    #[test]
    fn stuck_at_ignores_truth() {
        let mut s = Sensor::new("t", VarId(0));
        s.inject_fault(SensorFault::StuckAt(1.0));
        assert_eq!(s.observe(0.0), 1.0);
        assert_eq!(s.observe(100.0), 1.0);
    }

    #[test]
    fn gain_scales_readings() {
        let mut s = Sensor::new("t", VarId(0));
        s.inject_fault(SensorFault::Gain(0.5));
        assert_eq!(s.observe(10.0), 5.0);
    }

    #[test]
    fn clearing_fault_restores_truth() {
        let mut s = Sensor::new("t", VarId(0));
        s.inject_fault(SensorFault::Bias(9.0));
        s.inject_fault(SensorFault::None);
        assert_eq!(s.observe(1.0), 1.0);
    }

    #[test]
    fn display_marks_faults() {
        let mut s = Sensor::new("t", VarId(2));
        assert_eq!(s.to_string(), "sensor t -> x2");
        s.inject_fault(SensorFault::StuckAt(0.0));
        assert!(s.to_string().contains("faulted"));
    }
}
