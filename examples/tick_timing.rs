//! Internal timing harness: wall time per recorded-scenario run at scale.
use apdm::sim::recorder::{run_recorded, RecordSpec};
use std::time::Instant;

fn main() {
    let threads = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let spec = RecordSpec {
        n_devices: 48,
        ticks: 600,
        seed: 42,
        p_tamper: 0.0,
        snapshot_every: 0,
        threads,
        cache: false,
    };
    // Warm-up.
    let _ = run_recorded(&spec);
    let mut times: Vec<f64> = (0..7)
        .map(|_| {
            let t0 = Instant::now();
            let run = run_recorded(&spec);
            let dt = t0.elapsed().as_secs_f64() * 1000.0;
            assert!(run.ledger.verify().is_ok());
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "median {:.2} ms  (min {:.2}, max {:.2})",
        times[3], times[0], times[6]
    );
}
