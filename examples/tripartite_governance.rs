//! Section VI.E's AI-overseeing-AI: an executive collective whose risk model
//! has been captured keeps trying to execute out-of-scope actions; the
//! legislative and judiciary collectives outvote it 2-of-3 — until two
//! branches fall, which is exactly the boundary of the paper's assumption.
//!
//! Run with: `cargo run --example tripartite_governance`

use apdm::sim::runner::{run_e5, E5Arm};

fn main() {
    println!(
        "{:<18} {:>10} {:>12} {:>11} {:>13}",
        "arm", "corrupted", "mal-executed", "mal-blocked", "false-blocks"
    );
    for corrupted in 0..=3 {
        for arm in E5Arm::all() {
            let r = run_e5(arm, corrupted, 400, 13);
            println!(
                "{:<18} {:>10} {:>12} {:>11} {:>13}",
                r.arm,
                r.corrupted_branches,
                r.malevolent_executed,
                r.malevolent_blocked,
                r.false_blocks
            );
        }
    }
    println!();
    println!("Reading the table:");
    println!("- executive-only is safe only while the executive itself is honest");
    println!("- tripartite-2of3 holds with ONE corrupted branch (the paper's claim)");
    println!("- with TWO corrupted branches the majority flips and governance fails,");
    println!("  which is the paper's own stated assumption: \"two out of the three");
    println!("  collectives always prevail\"");
}
