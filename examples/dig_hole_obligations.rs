//! The paper's dig-a-hole story (Section VI.A), end to end: a pre-action
//! check stops *direct* harm, misses *indirect* harm when the device cannot
//! predict a human's path, and obligations (posting a warning sign) close
//! the gap.
//!
//! Run with: `cargo run --example dig_hole_obligations`

use apdm::sim::runner::{run_e1, E1Arm};

fn main() {
    println!(
        "{:<26} {:>7} {:>9} {:>14} {:>13}",
        "guard arm", "direct", "indirect", "interventions", "availability"
    );
    for arm in E1Arm::all() {
        let r = run_e1(arm, 12, 12, 80, 7);
        println!(
            "{:<26} {:>7} {:>9} {:>14} {:>12.0}%",
            r.arm,
            r.direct_harms,
            r.indirect_harms,
            r.interventions,
            r.availability * 100.0
        );
    }
    println!();
    println!("- no-guard: both harm kinds occur");
    println!("- pre-action: direct harm -> 0, but the hole still claims a walker");
    println!("  (\"the machine does not anticipate a human to come on the path\")");
    println!("- lookahead: a predictive oracle also catches the indirect case");
    println!("- obligations: the myopic device may dig, but must post a warning");
    println!("  sign, so the hole exists and harms nobody");
}
