//! The `apdm-ledger` flight recorder end to end: record a guarded run into a
//! hash-chained ledger, verify the chain, tamper with one record and watch
//! verification localize it, then deterministically replay the run from the
//! last snapshot and confirm it is bit-for-bit faithful.
//!
//! Section VI.B requires that audit records be "maintained in a manner that
//! is tamper-proof"; the ledger delivers the practical version of that —
//! tamper *evidence*: any post-hoc edit breaks the digest chain at the site
//! of the edit.
//!
//! Run with: `cargo run --example black_box_recorder`

use apdm::ledger::Ledger;
use apdm::sim::recorder::{replay_recorded, run_recorded, RecordSpec, ReplayStart};

fn main() {
    // 1. Record: the canonical guarded-striker scenario under attack, with a
    //    snapshot frame every 40 ticks.
    let spec = RecordSpec {
        seed: 42,
        ..RecordSpec::default()
    };
    let recorded = run_recorded(&spec);
    let ledger = &recorded.ledger;
    println!(
        "recorded {} events over {} ticks  (head digest {:#018x})",
        ledger.len(),
        spec.ticks,
        ledger.head_digest()
    );
    println!(
        "  harms: {}   snapshots: {}",
        recorded.metrics.harm_count(),
        ledger.snapshots().count()
    );

    // 2. Verify: the exported JSONL round-trips and the chain is intact.
    let jsonl = ledger.to_jsonl();
    let reloaded = Ledger::from_jsonl(&jsonl).expect("own export parses");
    assert!(reloaded.verify().is_ok());
    println!("  verify: chain intact, sealed");
    println!();

    // 3. Tamper: flip one digit inside a mid-run record and re-verify. The
    //    digest chain breaks exactly at the edited record.
    let mut lines: Vec<&str> = jsonl.lines().collect();
    let doctored = lines[7].replace("\"tick\":", "\"tick\": 1");
    lines[7] = &doctored;
    let tampered = Ledger::from_jsonl(&lines.join("\n")).expect("still valid JSON");
    match tampered.verify() {
        Ok(()) => unreachable!("tampering must be caught"),
        Err(corruption) => println!("after editing record 7 -> {corruption}"),
    }
    println!();

    // 4. Replay: re-execute from the latest snapshot and compare event-by-
    //    event against the recording.
    let outcome =
        replay_recorded(&spec, &reloaded, ReplayStart::LatestSnapshot).expect("snapshot restores");
    println!("replay from latest snapshot -> {}", outcome.report);
    assert!(outcome.report.is_faithful());
    assert_eq!(outcome.metrics.harm_count(), recorded.metrics.harm_count());
    println!();
    println!("The ledger is the fleet's black box: every verdict, fault and");
    println!("harm is on an append-only digest chain, so an operator can prove");
    println!("what the fleet did — and a tampering device cannot unwrite it.");
}
