//! Trace a run: install a ring-buffer collector, execute the canonical
//! recorded scenario, and export the trace as JSONL plus a Chrome
//! `trace_event` document (loadable in `chrome://tracing` / Perfetto).
//!
//! This is the library-level equivalent of
//! `apdm-experiments trace --out trace.jsonl`.
//!
//! Run with: `cargo run --example trace_a_run`

use std::rc::Rc;

use apdm::sim::recorder::{run_recorded, RecordSpec};
use apdm::telemetry::{self, export_chrome, export_jsonl, RecordKind, RingCollector};

fn main() {
    // 1. Install one subscriber for the whole run: a bounded ring buffer
    //    (oldest records evicted first). Until this install, every span!/
    //    event! call site in the fleet, guards and ledger costs a single
    //    thread-local read and constructs nothing.
    let ring = Rc::new(RingCollector::new(1 << 16));
    let _guard = telemetry::install(ring.clone());

    // 2. Run the canonical recorded scenario, shortened. The fleet stamps
    //    the telemetry virtual clock with its tick, so every record carries
    //    a deterministic (tick, seq) timestamp.
    let spec = RecordSpec {
        ticks: 60,
        ..RecordSpec::default()
    };
    let recorded = run_recorded(&spec);
    println!(
        "run: {} ledger records, {} harms, {} proposals",
        recorded.ledger.len(),
        recorded.metrics.harm_count(),
        recorded.metrics.proposals,
    );

    // 3. The capture: per-tick phase spans (sense → propose → guard →
    //    execute → world-step → ledger-append) plus guard/ledger events.
    let records = ring.records();
    let tick_phases = records
        .iter()
        .filter(|r| r.kind == RecordKind::SpanStart && r.name.starts_with("phase."))
        .count();
    println!(
        "trace: {} records captured ({} phase spans, {} evicted)",
        records.len(),
        tick_phases,
        ring.dropped(),
    );

    // 4. Export both wire formats next to the current directory.
    let jsonl_path = "trace_a_run.jsonl";
    let chrome_path = "trace_a_run.chrome.json";
    std::fs::write(jsonl_path, export_jsonl(&records)).expect("write jsonl");
    std::fs::write(chrome_path, export_chrome(&records)).expect("write chrome trace");
    println!("wrote {jsonl_path} and {chrome_path} (load the latter in chrome://tracing)");

    // 5. The metrics registry accumulated alongside the trace: guard
    //    latency percentiles, allow/deny/substitute verdict counters,
    //    per-phase timings.
    let registry = telemetry::current_registry().expect("dispatch installed");
    print!("{}", registry.render_summary());
}
