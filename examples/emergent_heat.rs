//! Section VI.D's emergent-hazard example: heaters that are each
//! individually safe jointly exceed the enclosure's heat limit and start a
//! fire — unless collection formation is checked, or the collection
//! collaboratively assesses its joint actions.
//!
//! Run with: `cargo run --example emergent_heat`

use apdm::sim::runner::{run_e4, E4Arm};

fn main() {
    let (devices, heat_each, limit) = (6, 2.5, 10.0);
    println!("{devices} heaters at {heat_each} heat each; enclosure limit {limit}");
    println!("(each device is individually fine: 2.5 << 10.0; six are not: 15 > 10)");
    println!();
    println!(
        "{:<26} {:>9} {:>8} {:>8} {:>10}",
        "arm", "admitted", "refused", "fires", "work done"
    );
    for arm in E4Arm::all() {
        let r = run_e4(arm, devices, heat_each, limit, 50, 11);
        println!(
            "{:<26} {:>9} {:>8} {:>8} {:>10.0}",
            r.arm, r.admitted, r.refused, r.aggregate_harms, r.work_done
        );
    }
    println!();
    println!("- no-check: everyone joins, the aggregate ignites");
    println!("- formation-check: the guard refuses the device that would tip the sum");
    println!("- collaborative-assessment: everyone joins, but the group plans its");
    println!("  joint heat so the limit is never crossed (more members, same safety)");
}
