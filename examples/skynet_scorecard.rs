//! The executable Skynet definition (Section III): measure the six
//! properties — networked, learning, cognitive, multi-organizational,
//! physical, malevolent — over a running generative-policy fleet, with and
//! without guards, under a cyber attack.
//!
//! Run with: `cargo run --example skynet_scorecard`

use apdm::device::{Device, DeviceId, DeviceKind, OrgId};
use apdm::guards::{GuardStack, PreActionCheck};
use apdm::policy::{Action, Condition, EcaRule, Event};
use apdm::sim::faults::{FaultInjector, Pathway};
use apdm::sim::runner::skynet_score;
use apdm::sim::{actions, Fleet, FleetConfig, World, WorldConfig};
use apdm::statespace::{StateDelta, StateSchema};

fn build_fleet(guarded: bool) -> (Fleet, World) {
    let schema = StateSchema::builder().var("threat", 0.0, 1.0).build();
    let mut world = World::new(WorldConfig {
        width: 20,
        height: 20,
        heat_limit: f64::MAX,
        heat_zone: None,
    });
    for i in 0..5 {
        world.add_human(vec![(5, 4 * i), (6, 4 * i)], true);
    }
    let mut fleet = Fleet::new(FleetConfig::default());
    for i in 0..8u64 {
        let org = if i % 2 == 0 { "us" } else { "uk" };
        let mut device = Device::builder(i, DeviceKind::new("drone"), OrgId::new(org))
            .schema(schema.clone())
            .rule(EcaRule::new(
                "patrol",
                Event::pattern("tick"),
                Condition::True,
                Action::adjust(actions::MOVE, StateDelta::empty())
                    .with_param("dx", "1")
                    .physical(),
            ))
            .build();
        // Devices "learned" additional generated rules in the field.
        device.engine_mut().add_rule(
            EcaRule::new(
                "generated-scan",
                Event::pattern("scan"),
                Condition::True,
                Action::noop(),
            )
            .generated(),
        );
        let stack = if guarded {
            GuardStack::new().with_preaction(PreActionCheck::new())
        } else {
            GuardStack::new()
        };
        fleet.add(device, stack, (5 + (i as i32 % 3), 2 * i as i32));
    }
    (fleet, world)
}

fn run(guarded: bool) {
    let (mut fleet, mut world) = build_fleet(guarded);
    let mut injector = FaultInjector::new(Pathway::CyberAttack, 3);
    injector.inject(&mut fleet);
    let events: Vec<(DeviceId, Event)> = fleet
        .iter()
        .map(|(&id, _)| (id, Event::named("tick")))
        .collect();
    for t in 1..=60 {
        injector.tick(&mut fleet);
        fleet.step(&mut world, t, &events);
    }
    let score = skynet_score(&fleet, &world, 2, 2);
    println!(
        "{:<9} capability={:.2}  {}  -> {}",
        if guarded { "guarded" } else { "unguarded" },
        score.capability(),
        score,
        if score.is_skynet() {
            "SKYNET FORMED"
        } else {
            "not Skynet"
        },
    );
}

fn main() {
    println!("Skynet scorecard under a cyber attack (Section III x Section IV):");
    run(false);
    run(true);
    println!();
    println!("Both fleets are networked, learning, cognitive, multi-org and");
    println!("physical — five of the six Skynet properties, by design. Only the");
    println!("unguarded fleet acquires the sixth (malevolence): guards keep the");
    println!("capability and drop the harm, which is the paper's whole program.");
}
