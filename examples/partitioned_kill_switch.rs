//! A quorum kill switch whose every message crosses a lossy, partitioned
//! network — the §IV degraded-comms argument, executable.
//!
//! Part 1 shows the mechanics: a watcher's kill ballot is carried by the
//! retry/backoff [`Courier`](apdm::comms::Courier) envelope across a link
//! that drops more than half its packets, and still arrives.
//!
//! Part 2 runs the full E12 cell — 12 devices, 5 watchers, a 3-member
//! council, 3 in-field compromises, a 30-tick partition at 30% loss — once
//! per fail mode, and prints why "fail open" is the one option a
//! Skynet-resistant fleet cannot afford.
//!
//! Run with: `cargo run --example partitioned_kill_switch`

use apdm::comms::{CommsConfig, Courier, Envelope, FailMode, Incoming, SafetyMsg};
use apdm::guards::KillBallot;
use apdm::sim::degraded::{run_e12_cell, E12Config};
use apdm::simnet::{Link, Network, Topology};

fn main() {
    // ---- Part 1: one ballot across a terrible link ----------------------
    let mut topo = Topology::new();
    let watcher = topo.add_node();
    let coordinator = topo.add_node();
    topo.connect(watcher, coordinator, Link::with_latency(2).with_loss(0.6));
    let mut net: Network<Envelope<SafetyMsg>> = Network::with_seed(topo, 7);

    // An aggressive schedule for the demo: short timeout, flat backoff,
    // plenty of retries — the envelope simply outlasts the loss.
    let cfg = CommsConfig {
        timeout: 3,
        max_retries: 16,
        backoff_factor: 1,
        jitter: 2,
        ..CommsConfig::default()
    };
    let mut w = Courier::new(watcher, cfg, 7);
    let mut c = Courier::new(coordinator, cfg, 7);

    let ballot = KillBallot {
        watcher: 0,
        subject: "agent-3".into(),
        rogue: true,
        cast_tick: 1,
    };
    w.request(&mut net, coordinator, SafetyMsg::KillVote(ballot), 1);

    let mut acked_at = None;
    for now in 2..200 {
        for d in net.deliver_at(now) {
            let courier = if d.to == watcher { &mut w } else { &mut c };
            match courier.accept(&mut net, d, now) {
                Some(Incoming::Request { from, id, .. }) => {
                    c.respond(&mut net, from, id, SafetyMsg::VoteAck, now);
                }
                Some(Incoming::Response { .. }) => acked_at = Some(now),
                None => {}
            }
        }
        w.poll(&mut net, now);
        c.poll(&mut net, now);
        if acked_at.is_some() {
            break;
        }
    }
    let (_, _, retries, _) = w.counters();
    let (sent, lost, _) = net.stats();
    println!("== Part 1: a kill ballot vs a 60%-loss link ==");
    match acked_at {
        Some(t) => println!(
            "ballot delivered and acknowledged at tick {t} \
             ({retries} retransmissions; network sent {sent}, dropped {lost})"
        ),
        None => println!("ballot expired — even {retries} retries were not enough"),
    }
    println!();

    // ---- Part 2: the whole fleet, three fail modes ----------------------
    println!("== Part 2: 12-device fleet, 30% loss, 30-tick partition ==");
    println!("three compromised devices defect right after the partition");
    println!("cuts two of them off from the kill switch:");
    println!();
    let cell_cfg = E12Config::default();
    println!(
        "{:<15} {:>6} {:>12} {:>13}",
        "fail mode", "harms", "containment", "availability"
    );
    for mode in FailMode::all() {
        let (report, ledger) = run_e12_cell(&cell_cfg, 0.3, 30, mode);
        ledger.verify().expect("sealed cell ledger verifies");
        println!(
            "{:<15} {:>6} {:>12} {:>12.1}%",
            report.mode,
            report.harms,
            report
                .containment_tick
                .map_or_else(|| "never".into(), |t| format!("tick {t}")),
            report.availability * 100.0,
        );
    }
    println!();
    println!("fail-open keeps isolated (possibly compromised) devices fully");
    println!("autonomous: the harm pathway reopens exactly when the network");
    println!("degrades. fail-closed suspends them — safest, but it pays in");
    println!("availability. local-fallback regenerates a conservative standing");
    println!("policy on the spot (§IV): fail-closed harms at a fraction of the");
    println!("availability cost.");
}
