//! Quickstart: wrap a device in the paper's full prevention stack and watch
//! the state-space check keep it inside its good region.
//!
//! Run with: `cargo run --example quickstart`

use apdm::core::prelude::*;
use apdm::guards::NoHarmOracle;

fn main() {
    // 1. The device's state space: a single `speed` variable; speeds above
    //    7.0 are bad states (the device could not brake for a human).
    let schema = StateSchema::builder().var("speed", 0.0, 10.0).build();
    let good = Region::rect(&[(0.0, 7.0)]);

    // 2. The paper-recommended protection profile: pre-action checks,
    //    state-space checks, deactivation and governance.
    let kernel = SafetyKernel::new(SafetyConfig::paper_recommended(good));
    println!(
        "safety kernel active with {} of the paper's 5 mechanisms",
        kernel.config().mechanisms_active()
    );

    // 3. A ground mule whose (buggy? mislearned?) logic wants to floor it.
    let mule = Device::builder(1u64, DeviceKind::new("mule"), OrgId::new("us"))
        .schema(schema)
        .actuator(Actuator::new("throttle", 0.into(), 10.0))
        .rule(EcaRule::new(
            "floor-it",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust("throttle", StateDelta::single(0.into(), 3.0)),
        ))
        .build();
    let mut manager = AutonomicManager::new(mule, &kernel);

    // 4. Drive it. The first two accelerations are fine; the third would
    //    cross into the bad region and the guard stops it.
    for tick in 1..=5 {
        let outcome = manager.handle(&Event::named("tick"), NoHarmOracle, tick);
        println!(
            "tick {tick}: speed={:.1} executed={} intervened={}",
            manager.device().state().values()[0],
            outcome.executed.is_some(),
            outcome.guard_intervened,
        );
    }

    let speed = manager.device().state().values()[0];
    assert!(speed <= 7.0, "the guard must hold the line");
    println!("final speed {speed:.1} — never entered a bad state");
}
