//! Section VI.B's trustworthiness caveat, end to end: break-glass rules are
//! only as safe as the perception they judge. A deception attack on a single
//! trusted sensor manufactures fake emergencies; collusion-robust fusion
//! over redundant sensors (the paper's cited defense) shuts the attack down
//! without losing real emergencies.
//!
//! Run with: `cargo run --example sensor_deception`

use apdm::device::{Sensor, SensorFault, TrustFusion};
use apdm::sim::runner::{run_e2d, E2dArm};
use apdm::statespace::VarId;

fn main() {
    // The micro view: what fusion does to one attacked reading set.
    let mut sensors: Vec<Sensor> = (0..5)
        .map(|i| Sensor::new(format!("t{i}"), VarId(0)))
        .collect();
    sensors[0].inject_fault(SensorFault::StuckAt(1.0));
    sensors[1].inject_fault(SensorFault::StuckAt(1.0));
    let true_threat = 0.1;
    let readings: Vec<f64> = sensors.iter().map(|s| s.observe(true_threat)).collect();
    let fused = TrustFusion::new(0.1).fuse(&readings).unwrap();
    println!("true threat          : {true_threat}");
    println!("raw readings         : {readings:?}");
    println!("fused estimate       : {:.3}", fused.value);
    println!("distrusted sensors   : {:?}", fused.distrusted(0.1));
    println!();

    // The macro view: wrongful break-glass grants across 400 episodes.
    println!(
        "{:<16} {:>10} {:>16} {:>16} {:>8}",
        "arm", "deceived-p", "wrongful-grants", "rightful-grants", "missed"
    );
    for &p in &[0.1f64, 0.3, 0.5] {
        for arm in E2dArm::all() {
            let r = run_e2d(arm, 400, p, 42);
            println!(
                "{:<16} {:>10.1} {:>16} {:>16} {:>8}",
                r.arm, p, r.wrongful_grants, r.rightful_grants, r.missed_emergencies
            );
        }
    }
    println!();
    println!("\"it is critical that a device be able to obtain trustworthy");
    println!("information ... to base its decision of breaking the glass on true");
    println!("information\" — with fusion, the attacker's minority of sensors is");
    println!("identified and ignored; every wrongful grant disappears.");
}
