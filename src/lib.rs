//! `apdm` — policy-based autonomic device management with Skynet-prevention
//! safety mechanisms.
//!
//! This facade crate re-exports the whole workspace, a reproduction of *How
//! to Prevent Skynet From Forming (A Perspective from Policy-based Autonomic
//! Device Management)* (Calo, Verma, Bertino, Ingham, Cirincione — ICDCS
//! 2018). See the repository's `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! experiment results.
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`statespace`] | `apdm-statespace` | V, VII — states, good/bad regions, ontologies, risk, utility |
//! | [`policy`] | `apdm-policy` | IV–VI — ECA rules, obligations, break-glass, audits |
//! | [`device`] | `apdm-device` | II, V — the Figure-2 abstract device |
//! | [`simnet`] | `apdm-simnet` | III — network, discovery, organizations |
//! | [`comms`] | `apdm-comms` | IV, VI — safety coordination over degraded networks |
//! | [`genpolicy`] | `apdm-genpolicy` | IV — interaction graphs, grammars, templates |
//! | [`learning`] | `apdm-learning` | III–IV — learners and adversarial pathways |
//! | [`guards`] | `apdm-guards` | VI.A–D — the prevention mechanisms |
//! | [`governance`] | `apdm-governance` | VI.E — AI overseeing AI |
//! | [`ledger`] | `apdm-ledger` | VI.B audits — tamper-evident flight recorder and replay |
//! | [`telemetry`] | `apdm-telemetry` | — deterministic spans/events, metrics, trace exporters |
//! | [`par`] | `apdm-par` | — deterministic scoped-thread shard pools and fan-out |
//! | [`serve`] | `apdm-serve` | VI at fleet scale — sharded micro-batching decision service, fail-closed shedding |
//! | [`net`] | `apdm-net` | VI at the I/O boundary — framed TCP transport, fail-closed codec, E17 harness |
//! | [`sim`] | `apdm-sim` | I–II — the coalition world and experiments |
//! | [`core`] | `apdm-core` | everything — `SafetyKernel`, `AutonomicManager` |
//!
//! # Quickstart
//!
//! ```
//! use apdm::core::prelude::*;
//! use apdm::guards::NoHarmOracle;
//!
//! let schema = StateSchema::builder().var("speed", 0.0, 10.0).build();
//! let kernel = SafetyKernel::new(SafetyConfig::paper_recommended(
//!     Region::rect(&[(0.0, 7.0)]),
//! ));
//! let device = Device::builder(1u64, DeviceKind::new("mule"), OrgId::new("us"))
//!     .schema(schema)
//!     .rule(EcaRule::new(
//!         "accelerate",
//!         Event::pattern("tick"),
//!         Condition::True,
//!         Action::adjust("throttle", StateDelta::single(0.into(), 9.0)),
//!     ))
//!     .build();
//! let mut manager = AutonomicManager::new(device, &kernel);
//! let outcome = manager.handle(&Event::named("tick"), NoHarmOracle, 1);
//! assert!(outcome.guard_intervened, "the state check caught the bad transition");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apdm_comms as comms;
pub use apdm_core as core;
pub use apdm_device as device;
pub use apdm_genpolicy as genpolicy;
pub use apdm_governance as governance;
pub use apdm_guards as guards;
pub use apdm_learning as learning;
pub use apdm_ledger as ledger;
pub use apdm_net as net;
pub use apdm_par as par;
pub use apdm_policy as policy;
pub use apdm_serve as serve;
pub use apdm_sim as sim;
pub use apdm_simnet as simnet;
pub use apdm_statespace as statespace;
pub use apdm_telemetry as telemetry;
