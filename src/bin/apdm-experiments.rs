//! Command-line experiment runner: regenerate any experiment table without
//! the bench harness, optionally as JSON.
//!
//! ```text
//! apdm-experiments list
//! apdm-experiments run e1 [--seed 42] [--json] [--trace out.jsonl] [--quiet]
//! apdm-experiments run all
//! apdm-experiments record [--seed 42] [--out run.jsonl]
//! apdm-experiments verify run.jsonl
//! apdm-experiments replay run.jsonl [--seed 42] [--from-snapshot]
//! apdm-experiments trace [--seed 42] [--out trace.jsonl]
//! apdm-experiments serve-bench [--seed 42] [--smoke] [--out report.json]
//! apdm-experiments serve-bench --calibrate [--seed 42]
//! apdm-experiments trace-analyze trace.jsonl [--chrome out.json]
//! apdm-experiments checkpoint [--kill-tick T] [--seed 42] --out base
//! apdm-experiments resume base [--seed 42] [--out base2]
//! apdm-experiments serve-net serve [--listen 127.0.0.1:0] [--addr-file p] \
//!     [--clients N] [--smoke] [--out base]
//! apdm-experiments serve-net client (--connect addr | --addr-file p) \
//!     --index I --clients N [--smoke]
//! apdm-experiments serve-net chaos (--connect addr | --addr-file p) --kind k
//! apdm-experiments serve-net golden [--smoke] [--out base]
//! ```
//!
//! Parallelism: the global `--threads N` flag sets the worker count for
//! both the two-phase fleet tick and the experiment fan-out (`0` = one
//! per hardware thread, the default; `1` = fully sequential; the
//! `APDM_THREADS` env var overrides auto-detection). Experiment sweeps
//! distribute their cells across the pool but always print in table
//! order, and recorded ledgers are bit-identical at any thread count.
//! `--no-cache` disables the guard-verdict memo cache.
//!
//! `record` runs the canonical guarded-striker scenario under the
//! `apdm-ledger` flight recorder and writes the hash-chained ledger as
//! JSONL; `verify` re-imports it and localizes the first corrupt record if
//! any; `replay` re-executes the run (from tick 0, or from the last
//! checkpoint with `--from-snapshot`) and reports the first divergence.
//!
//! Observability: progress lines route through an `apdm-telemetry` stderr
//! subscriber, so `--quiet` silences them without touching result output
//! (stdout). The global `--trace <path>` flag additionally captures every
//! span and event into a ring buffer and, when the command finishes, writes
//! the trace as JSONL to `<path>` and as a Chrome `trace_event` document to
//! `<path>.chrome.json`, then prints the metrics percentile table
//! (per-guard latency, per-tick phase timings). The `trace` subcommand does
//! this for the canonical recorded scenario in one step.
//!
//! Skew scheduling: `run e15` sweeps Zipf device skew × {static, balanced}
//! shard scheduling (experiment E15); `run e15 --out cell.jsonl` runs the
//! canonical skewed cell and writes its sealed ledger, with `--sched
//! static|balanced` picking the scheduling mode — CI compares the two
//! files byte for byte. `serve-bench --calibrate` measures real per-batch
//! guard-stack nanoseconds and prints the least-squares-fitted `CostModel`
//! constants with their residual error.
//!
//! Distributed tracing: `run e14 --out traced.jsonl` records the full-mode
//! causally-traced serve run (experiment E14) as JSONL, and
//! `trace-analyze` rebuilds the cross-device span DAG from any such
//! export, prints each trace's critical path (per-step waits telescope to
//! the end-to-end tick latency), and with `--chrome <path>` writes a
//! multi-device Chrome timeline (one track per device).
//!
//! Crash tolerance: `checkpoint --out base` runs the canonical rotating
//! serve cell (experiment E16's smoke shape) and writes its sealed
//! segment files as `base.segNNNN.jsonl`; with `--kill-tick T` it instead
//! writes the segment files exactly as a process SIGKILLed at tick `T`
//! would leave them (an open, checkpoint-headed tail). `resume base`
//! recovers from those files — latest valid checkpoint, fallback ladder,
//! full restart if nothing survived — replays the suffix, and writes the
//! resumed run's sealed segments; CI `cmp`s them byte for byte against
//! the golden files. `verify` recognizes rotated runs: pointed at any
//! `.segNNNN.jsonl` file (or the family's base path), it checks every
//! retained segment's hash chain *and* the cross-segment anchors, prints
//! a per-segment report, and exits nonzero if any segment fails.
//!
//! Networked serving: `serve-net` exposes the experiment E17 machinery as
//! separate processes so CI can prove the TCP path is ledger-invisible
//! across real process boundaries. `serve-net serve` binds a listener
//! (writing the bound address to `--addr-file` for rendezvous), drives the
//! canonical seeded workload through `apdm-net`, and writes the sealed
//! segment family to `--out`; `serve-net client` connects and drives
//! workload partition `--index` of `--clients`; `serve-net chaos` runs one
//! scripted hostile connection (`--kind garbage|badcrc|oversize|slow|`
//! `disconnect|unauthorized`); `serve-net golden` writes the in-process
//! run's segments for a byte-for-byte `cmp`. The wire format is specified
//! in `docs/PROTOCOL.md`.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::rc::Rc;

use apdm::comms::FailMode;
use apdm::ledger::{Ledger, SegmentedLedger};
use apdm::net::{
    golden_segments, run_chaos_client, run_e17, run_workload_client, serve, ChaosKind, E17Config,
};
use apdm::serve::{
    resume_run, run_calibration, run_e13, run_e14, run_e14_mode, run_e15, run_e15_cell, run_e16,
    run_e16_cell, run_to_completion, standard_stacks, E13Config, E14Config, E15Config, E16Config,
    PolicyDecisionService, Scheduling, SimDisk, TraceMode, WorkloadGen, WorkloadOracle,
};
use apdm::sim::contagion::{run_contagion, ContagionArm};
use apdm::sim::degraded::{run_e12, run_e12_cell, E12Config};
use apdm::sim::faults::Pathway;
use apdm::sim::recorder::{
    replay_recorded, replay_recorded_prefix, run_e9, run_recorded, RecordSpec, ReplayStart,
};
use apdm::sim::runner::*;
use apdm::sim::scenario::run_surveillance;
use apdm::telemetry::{self, event, Fanout, Level, RingCollector, StderrSubscriber, Subscriber};

/// Ring-buffer capacity for `--trace` captures (most recent records win).
const TRACE_RING_CAPACITY: usize = 262_144;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("f1", "Figure 1: coalition fleet operation and autonomy"),
    ("e1", "pre-action checks: direct vs indirect harm (VI.A)"),
    ("e2", "state-space checks: bad entries and dilemmas (VI.B)"),
    ("e2d", "break-glass under sensor deception (VI.B)"),
    ("e3", "deactivation and quorum kill (VI.C)"),
    ("e4", "collection formation and emergent heat (VI.D)"),
    ("e5", "tripartite governance (VI.E)"),
    ("e6", "ill-defined spaces: utility gradients (VII)"),
    ("e7", "malevolence pathways (IV)"),
    ("e8", "policy contagion (IV)"),
    ("a1", "guard-stack ablation"),
    ("a3", "tamper-proofness ablation"),
    (
        "e9",
        "tamper evidence: ledger corruption detection (VI.B audits)",
    ),
    ("e10", "observability overhead: telemetry on the hot loop"),
    (
        "e11",
        "strong scaling: two-phase parallel tick, ledger-verified",
    ),
    (
        "e12",
        "degraded comms: safety coordination under loss/partition (IV)",
    ),
    (
        "e13",
        "serving: micro-batching decision service under load (VI at fleet scale)",
    ),
    (
        "e14",
        "distributed tracing: causal propagation, critical paths, overhead",
    ),
    (
        "e15",
        "skew scheduling: deterministic work stealing and backpressure under Zipf load",
    ),
    (
        "e16",
        "crash tolerance: kill-and-resume sweep over checkpointed rotating ledgers",
    ),
    (
        "e17",
        "networked serving: framed TCP path, ledger byte-identical under chaos",
    ),
];

/// Flags specific to the `serve-net` subcommand.
#[derive(Debug, Clone, Default)]
struct NetFlags {
    /// Listen address for `serve` (`--listen`, default an ephemeral
    /// loopback port).
    listen: Option<String>,
    /// Explicit server address for `client`/`chaos` (`--connect`).
    connect: Option<String>,
    /// Rendezvous file: `serve` writes its bound address there,
    /// `client`/`chaos` poll it (`--addr-file`).
    addr_file: Option<String>,
    /// Workload client count the run is partitioned across (`--clients`).
    clients: u32,
    /// This client's partition index in `0..clients` (`--index`).
    index: u32,
    /// Chaos script name (`--kind`).
    kind: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut json = false;
    let mut quiet = false;
    let mut seed: u64 = 42;
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut from_snapshot = false;
    let mut threads: usize = 0;
    let mut cache = true;
    let mut smoke = false;
    let mut calibrate = false;
    let mut kill_tick: Option<u64> = None;
    let mut sched = Scheduling::Balanced;
    let mut net = NetFlags {
        clients: 1,
        ..NetFlags::default()
    };
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--from-snapshot" => from_snapshot = true,
            "--no-cache" => cache = false,
            "--smoke" => smoke = true,
            "--calibrate" => calibrate = true,
            "--sched" => match iter.next().map(String::as_str) {
                Some("static") => sched = Scheduling::Static,
                Some("balanced") => sched = Scheduling::Balanced,
                _ => {
                    eprintln!("--sched requires `static` or `balanced`");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads requires an integer (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            "--kill-tick" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(t) => kill_tick = Some(t),
                None => {
                    eprintln!("--kill-tick requires a tick number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match iter.next() {
                Some(path) => trace = Some(path.clone()),
                None => {
                    eprintln!("--trace requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--chrome" => match iter.next() {
                Some(path) => chrome = Some(path.clone()),
                None => {
                    eprintln!("--chrome requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--listen" => match iter.next() {
                Some(addr) => net.listen = Some(addr.clone()),
                None => {
                    eprintln!("--listen requires an address");
                    return ExitCode::FAILURE;
                }
            },
            "--connect" => match iter.next() {
                Some(addr) => net.connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect requires an address");
                    return ExitCode::FAILURE;
                }
            },
            "--addr-file" => match iter.next() {
                Some(path) => net.addr_file = Some(path.clone()),
                None => {
                    eprintln!("--addr-file requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--clients" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => net.clients = n,
                _ => {
                    eprintln!("--clients requires an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--index" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(i) => net.index = i,
                None => {
                    eprintln!("--index requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--kind" => match iter.next() {
                Some(kind) => net.kind = Some(kind.clone()),
                None => {
                    eprintln!("--kind requires a chaos script name");
                    return ExitCode::FAILURE;
                }
            },
            other => positional.push(other.to_string()),
        }
    }

    // The `trace` subcommand is the canonical recorded scenario run under
    // `--trace`, with `--out` naming the trace file.
    if positional.first().map(String::as_str) == Some("trace") && trace.is_none() {
        trace = Some(out.clone().unwrap_or_else(|| format!("trace-{seed}.jsonl")));
    }

    // Telemetry: progress lines go to stderr (unless --quiet); --trace adds
    // a ring-buffer capture. With neither, no subscriber is installed and
    // the span!/event! call sites in the hot loop stay disabled.
    let collector = trace
        .as_ref()
        .map(|_| Rc::new(RingCollector::new(TRACE_RING_CAPACITY)));
    let mut sinks: Vec<Rc<dyn Subscriber>> = Vec::new();
    if !quiet {
        sinks.push(Rc::new(StderrSubscriber::default()));
    }
    if let Some(c) = &collector {
        sinks.push(c.clone());
    }
    let _guard = (!sinks.is_empty()).then(|| telemetry::install(Rc::new(Fanout::new(sinks))));

    let code = dispatch(
        &positional,
        seed,
        json,
        out,
        chrome,
        from_snapshot,
        threads,
        cache,
        smoke,
        calibrate,
        kill_tick,
        sched,
        &net,
    );

    // Dump even when the command failed: a trace of a failing verify run
    // carries the ledger.corruption events that explain it.
    if let (Some(path), Some(collector)) = (&trace, &collector) {
        if let Err(e) = dump_trace(path, collector) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

/// Execute the chosen subcommand.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    positional: &[String],
    seed: u64,
    json: bool,
    out: Option<String>,
    chrome: Option<String>,
    from_snapshot: bool,
    threads: usize,
    cache: bool,
    smoke: bool,
    calibrate: bool,
    kill_tick: Option<u64>,
    sched: Scheduling,
    net: &NetFlags,
) -> ExitCode {
    match positional.first().map(String::as_str) {
        Some("list") => {
            for (id, title) in EXPERIMENTS {
                println!("{id:<5} {title}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => match positional.get(1).map(String::as_str) {
            Some("all") => {
                for (id, _) in EXPERIMENTS {
                    run_experiment(id, seed, json, threads, cache, None, sched);
                }
                ExitCode::SUCCESS
            }
            Some(id) if EXPERIMENTS.iter().any(|(e, _)| e == &id) => {
                run_experiment(id, seed, json, threads, cache, out.as_deref(), sched);
                ExitCode::SUCCESS
            }
            Some(other) => {
                eprintln!("unknown experiment `{other}`; see `apdm-experiments list`");
                ExitCode::FAILURE
            }
            None => {
                eprintln!("usage: apdm-experiments run <id|all> [--seed N] [--json]");
                ExitCode::FAILURE
            }
        },
        Some("record") => {
            let spec = RecordSpec {
                seed,
                threads,
                cache,
                ..RecordSpec::default()
            };
            let recorded = run_recorded(&spec);
            let path = out.unwrap_or_else(|| format!("run-{seed}.jsonl"));
            if let Err(e) = fs::write(&path, recorded.ledger.to_jsonl()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            event!(
                Level::Info,
                "record.written",
                path = path.as_str(),
                records = recorded.ledger.len(),
                harms = recorded.metrics.harm_count(),
            );
            emit(json, &recorded.metrics);
            ExitCode::SUCCESS
        }
        Some("trace") => {
            // The traced canonical scenario; main() installed the collector
            // and writes the files after we return. Tracing stays useful at
            // any thread count: workers run with telemetry disabled, so the
            // phase spans come from the sequential commit path.
            let spec = RecordSpec {
                seed,
                threads,
                cache,
                ..RecordSpec::default()
            };
            let recorded = run_recorded(&spec);
            event!(
                Level::Info,
                "trace.run-finished",
                records = recorded.ledger.len(),
                harms = recorded.metrics.harm_count(),
            );
            emit(json, &recorded.metrics);
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = positional.get(1) else {
                eprintln!("usage: apdm-experiments verify <ledger.jsonl | run.segNNNN.jsonl>");
                return ExitCode::FAILURE;
            };
            // A rotated run is a family of `.segNNNN.jsonl` files. If the
            // path names one of them (or their common base), verify the
            // whole chain — per-segment hash chains plus cross-segment
            // anchors — and report every segment.
            let base = segment_base(path);
            match discover_segments(&base) {
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                Ok(segs) if !segs.is_empty() => return verify_segmented(&base, &segs),
                Ok(_) => {}
            }
            match load_ledger(path) {
                Err(code) => code,
                Ok((ledger, torn)) => {
                    if torn {
                        // A torn final line is crash evidence, not tamper
                        // evidence: the recovered prefix must still chain,
                        // but the seal is legitimately missing.
                        match ledger.verify_chain() {
                            Ok(()) => {
                                println!("{ledger}: chain intact, torn tail recovered (unsealed)");
                                ExitCode::SUCCESS
                            }
                            Err(corruption) => {
                                eprintln!("{corruption}");
                                ExitCode::FAILURE
                            }
                        }
                    } else {
                        match ledger.verify() {
                            Ok(()) => {
                                println!("{ledger}: chain intact, sealed");
                                ExitCode::SUCCESS
                            }
                            Err(corruption) => {
                                eprintln!("{corruption}");
                                ExitCode::FAILURE
                            }
                        }
                    }
                }
            }
        }
        Some("replay") => {
            let Some(path) = positional.get(1) else {
                eprintln!(
                    "usage: apdm-experiments replay <ledger.jsonl> [--seed N] [--from-snapshot]"
                );
                return ExitCode::FAILURE;
            };
            let (ledger, torn) = match load_ledger(path) {
                Err(code) => return code,
                Ok(loaded) => loaded,
            };
            let spec = RecordSpec {
                seed,
                threads,
                cache,
                ..RecordSpec::default()
            };
            let start = if from_snapshot {
                ReplayStart::LatestSnapshot
            } else {
                ReplayStart::Origin
            };
            // A torn reference is a prefix of the real run: the replay will
            // legitimately run past its cut, so only the surviving prefix is
            // required to match.
            let outcome = if torn {
                replay_recorded_prefix(&spec, &ledger, start)
            } else {
                replay_recorded(&spec, &ledger, start)
            };
            match outcome {
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    ExitCode::FAILURE
                }
                Ok(outcome) => {
                    println!("{}", outcome.report);
                    emit(json, &outcome.metrics);
                    if outcome.report.is_faithful() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
            }
        }
        Some("serve-bench") => {
            // `--calibrate` replaces the sweep with the wall-clock cost
            // model fit: measure real per-batch guard-stack nanoseconds and
            // print the least-squares constants plus residual error.
            if calibrate {
                let report = run_calibration(seed, 8, 1_000_000);
                if json {
                    emit(true, &report);
                } else {
                    println!(
                        "calibration: {} timed batches (seed {seed})",
                        report.samples
                    );
                    println!(
                        "  fit: batch_ns ~= {:.1} + {:.1}*hits + {:.1}*misses",
                        report.overhead_ns, report.hit_ns, report.miss_ns
                    );
                    println!(
                        "  residual: {:.1} ns rms ({:.1}% of mean batch)",
                        report.residual_rms_ns,
                        report.residual_rel * 100.0
                    );
                    let m = &report.fitted;
                    println!(
                        "fitted CostModel (1 unit = one cache hit, tick budget {} ns):",
                        report.tick_budget_ns
                    );
                    println!(
                        "  capacity_per_tick={} batch_overhead={} cost_hit={} cost_miss={}",
                        m.capacity_per_tick, m.batch_overhead, m.cost_hit, m.cost_miss
                    );
                }
                return ExitCode::SUCCESS;
            }
            // The serving-layer load sweep (experiment E13), runnable
            // without the criterion harness. `--smoke` is the CI shape:
            // short arrival window, one underloaded and one overloaded
            // point.
            let cfg = E13Config {
                seed,
                threads,
                ..if smoke {
                    E13Config::smoke()
                } else {
                    E13Config::default()
                }
            };
            let report = run_e13(&cfg);
            if json {
                emit(true, &report);
            } else {
                print_e13_table(&report);
            }
            if let Some(path) = out {
                let body = serde_json::to_string_pretty(&report).expect("serializable report");
                if let Err(e) = fs::write(&path, body) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                if !json {
                    println!("report written to {path}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("trace-analyze") => {
            let Some(path) = positional.get(1) else {
                eprintln!(
                    "usage: apdm-experiments trace-analyze <trace.jsonl> [--chrome out.json]"
                );
                return ExitCode::FAILURE;
            };
            trace_analyze(path, chrome.as_deref())
        }
        Some("checkpoint") => {
            let cfg = E16Config {
                seed,
                ..E16Config::smoke()
            };
            let base = out.unwrap_or_else(|| format!("e16-{seed}"));
            checkpoint_cmd(&cfg, sched, kill_tick, &base)
        }
        Some("resume") => {
            let Some(base) = positional.get(1) else {
                eprintln!("usage: apdm-experiments resume <base> [--seed N] [--out base2]");
                return ExitCode::FAILURE;
            };
            let cfg = E16Config {
                seed,
                ..E16Config::smoke()
            };
            let out_base = out.unwrap_or_else(|| format!("{base}-resumed"));
            resume_cmd(&cfg, sched, base, &out_base)
        }
        Some("serve-net") => {
            let cfg = E17Config {
                seed,
                ..if smoke {
                    E17Config::smoke()
                } else {
                    E17Config::default()
                }
            };
            serve_net_cmd(positional.get(1).map(String::as_str), &cfg, out, net)
        }
        _ => {
            eprintln!(
                "usage: apdm-experiments \
                 <list|run|record|verify|replay|trace|serve-bench|trace-analyze\
                 |checkpoint|resume|serve-net> ..."
            );
            ExitCode::FAILURE
        }
    }
}

/// How long `client`/`chaos` poll the `--addr-file` rendezvous before
/// giving up, and how long workload clients wait for the run to finish.
const NET_RENDEZVOUS: std::time::Duration = std::time::Duration::from_secs(20);
const NET_DEADLINE: std::time::Duration = std::time::Duration::from_secs(120);

/// Resolve the server address for `serve-net client`/`chaos`: an explicit
/// `--connect`, or polling the `--addr-file` the server writes on bind.
fn resolve_addr(net: &NetFlags) -> Result<String, String> {
    if let Some(addr) = &net.connect {
        return Ok(addr.clone());
    }
    let Some(path) = &net.addr_file else {
        return Err("need --connect ADDR or --addr-file PATH".to_string());
    };
    let deadline = std::time::Instant::now() + NET_RENDEZVOUS;
    loop {
        if let Ok(text) = fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return Ok(addr.to_string());
            }
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!("timed out waiting for server address in {path}"));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// The multi-process face of experiment E17 (see `docs/PROTOCOL.md`).
fn serve_net_cmd(
    mode: Option<&str>,
    cfg: &E17Config,
    out: Option<String>,
    net: &NetFlags,
) -> ExitCode {
    match mode {
        Some("serve") => {
            let listen = net.listen.as_deref().unwrap_or("127.0.0.1:0");
            let listener = match std::net::TcpListener::bind(listen) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {listen}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = match listener.local_addr() {
                Ok(a) => a.to_string(),
                Err(e) => {
                    eprintln!("cannot read bound address: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Write-then-rename so pollers never see a partial address.
            if let Some(path) = &net.addr_file {
                let tmp = format!("{path}.tmp");
                if let Err(e) =
                    fs::write(&tmp, &addr).and_then(|()| fs::rename(&tmp, path.as_str()))
                {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "serving on {addr} ({} workload clients expected)",
                net.clients
            );
            let svc = PolicyDecisionService::new(
                cfg.serve_config(),
                standard_stacks(cfg.shards, true),
                WorkloadOracle,
                &cfg.run_name(),
            );
            let outcome = match serve(listener, svc, cfg.net_config(net.clients)) {
                Ok(outcome) => outcome,
                Err(e) => {
                    eprintln!("serve failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = outcome.ledger.verify() {
                eprintln!("served ledger corrupt: {e}");
                return ExitCode::FAILURE;
            }
            if outcome.audit.verify().is_err() {
                eprintln!("boundary audit ledger corrupt");
                return ExitCode::FAILURE;
            }
            let base = out.unwrap_or_else(|| format!("e17-{}", cfg.seed));
            if let Err(e) = write_segments(&base, &outcome.ledger.to_jsonl_segments()) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!(
                "sealed at tick {}: {} decisions delivered, {} rejects, {} drops, \
                 {} segments, head {:016x} -> {base}.seg*.jsonl",
                outcome.final_tick,
                outcome.decisions_sent,
                outcome.rejects,
                outcome.drops,
                outcome.ledger.segments().len(),
                outcome.ledger.head_digest(),
            );
            ExitCode::SUCCESS
        }
        Some("client") => {
            let addr = match resolve_addr(net) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if net.index >= net.clients {
                eprintln!("--index {} out of range 0..{}", net.index, net.clients);
                return ExitCode::FAILURE;
            }
            match run_workload_client(
                &addr,
                cfg.spec(),
                net.index,
                net.clients,
                None,
                NET_DEADLINE,
            ) {
                Ok(report) => {
                    println!(
                        "client {}/{}: {} requests sent, {} decisions returned",
                        net.index,
                        net.clients,
                        report.sent,
                        report.decisions.len(),
                    );
                    if report.decisions.len() as u64 == report.sent {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("decision stream incomplete");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("client failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("chaos") => {
            let Some(kind) = net.kind.as_deref().and_then(ChaosKind::parse) else {
                let names: Vec<&str> = ChaosKind::all().iter().map(|k| k.name()).collect();
                eprintln!("--kind must be one of: {}", names.join(", "));
                return ExitCode::FAILURE;
            };
            let addr = match resolve_addr(net) {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_chaos_client(&addr, kind) {
                Ok(report) => {
                    println!(
                        "chaos {}: closed with {:?}, {} fail-closed denies",
                        kind.name(),
                        report.closed_code,
                        report.denies,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("chaos {} failed: {e}", kind.name());
                    ExitCode::FAILURE
                }
            }
        }
        Some("golden") => {
            let base = out.unwrap_or_else(|| format!("e17-{}-golden", cfg.seed));
            let segments = golden_segments(cfg);
            if let Err(e) = write_segments(&base, &segments) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!(
                "golden in-process run: {} segments -> {base}.seg*.jsonl",
                segments.len(),
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: apdm-experiments serve-net <serve|client|chaos|golden> \
                 [--listen A] [--connect A] [--addr-file P] [--clients N] \
                 [--index I] [--kind K] [--smoke] [--out base]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Strip a `.segNNNN.jsonl` suffix, mapping any member of a rotated-run
/// file family to the family's base path; other paths pass through.
fn segment_base(path: &str) -> String {
    if let Some(pos) = path.rfind(".seg") {
        if let Some(digits) = path[pos + 4..].strip_suffix(".jsonl") {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return path[..pos].to_string();
            }
        }
    }
    path.to_string()
}

/// Find every `base.segNNNN.jsonl` sibling on disk, sorted by segment
/// index. An unreadable directory is treated as "no family" (the caller
/// falls back to single-file handling); an unreadable family member is a
/// hard error.
fn discover_segments(base: &str) -> Result<Vec<(u64, String)>, String> {
    let path = std::path::Path::new(base);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let Some(stem) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Ok(Vec::new());
    };
    let prefix = format!("{stem}.seg");
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(Vec::new());
    };
    let mut segs = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".jsonl") else {
            continue;
        };
        let Ok(index) = digits.parse::<u64>() else {
            continue;
        };
        let text = fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
        segs.push((index, text));
    }
    segs.sort_by_key(|(index, _)| *index);
    Ok(segs)
}

/// Write a rotated run's segments as a `base.segNNNN.jsonl` file family.
fn write_segments(base: &str, segs: &[(u64, String)]) -> Result<(), String> {
    for (index, text) in segs {
        let path = format!("{base}.seg{index:04}.jsonl");
        fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Verify a rotated run end to end and print one line per retained
/// segment. Any unparseable, chain-broken, or mis-anchored segment makes
/// the whole command fail.
fn verify_segmented(base: &str, segs: &[(u64, String)]) -> ExitCode {
    let mut ledgers = Vec::new();
    let mut failed = false;
    for (index, text) in segs {
        match Ledger::from_jsonl(text) {
            Ok(ledger) => ledgers.push(ledger),
            Err(e) => {
                eprintln!("segment {index:04}: unparseable: {e}");
                failed = true;
            }
        }
    }
    if failed || ledgers.is_empty() {
        return ExitCode::FAILURE;
    }
    let ledger = SegmentedLedger::from_segments(ledgers);
    for report in ledger.verify_report() {
        match &report.error {
            None => println!(
                "segment {:04}: {} records, head {:016x}: ok",
                report.segment, report.records, report.head
            ),
            Some(corruption) => {
                eprintln!(
                    "segment {:04}: {} records, head {:016x}: {corruption}",
                    report.segment, report.records, report.head
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "{base}: {} segments intact ({} pruned), {} records, anchored head {:016x}",
            ledger.segments().len(),
            ledger.pruned_count(),
            ledger.total_records(),
            ledger.head_digest(),
        );
        ExitCode::SUCCESS
    }
}

/// Run the canonical rotating serve cell (E16 smoke shape) and write its
/// segment files: the sealed golden run, or — with a kill tick — the
/// exact bytes a SIGKILLed process would leave behind.
fn checkpoint_cmd(
    cfg: &E16Config,
    sched: Scheduling,
    kill_tick: Option<u64>,
    base: &str,
) -> ExitCode {
    let budget = cfg.budgets[0];
    let mut svc = PolicyDecisionService::new(
        cfg.serve_config(budget, sched, 1),
        standard_stacks(cfg.shards, true),
        WorkloadOracle,
        &cfg.run_name(budget),
    );
    let mut gen = WorkloadGen::new(cfg.spec(budget));
    let mut disk = SimDisk::default();
    let mut killed: Option<SimDisk> = None;
    let (decisions, final_tick) = run_to_completion(
        &mut svc,
        &mut gen,
        1,
        cfg.arrival_ticks,
        cfg.max_ticks,
        |now, rec| {
            disk.persist(rec);
            if kill_tick == Some(now) {
                killed = Some(disk.clone());
            }
        },
    );
    match kill_tick {
        Some(tick) => {
            let Some(killed) = killed else {
                eprintln!("--kill-tick {tick} is past the run's final tick {final_tick}");
                return ExitCode::FAILURE;
            };
            let segs: Vec<(u64, String)> = killed
                .files()
                .iter()
                .map(|(&index, text)| (index, text.clone()))
                .collect();
            if let Err(e) = write_segments(base, &segs) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!(
                "killed at tick {tick}: {} segment files -> {base}.seg*.jsonl \
                 (open tail; recover with `apdm-experiments resume {base}`)",
                segs.len(),
            );
        }
        None => {
            let (ledger, _) = svc.finish_segmented(final_tick);
            if let Err(e) = ledger.verify() {
                eprintln!("golden ledger corrupt: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = write_segments(base, &ledger.to_jsonl_segments()) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!(
                "golden run sealed at tick {final_tick}: {} decisions, {} segments \
                 ({} pruned), head {:016x} -> {base}.seg*.jsonl",
                decisions.len(),
                ledger.segments().len(),
                ledger.pruned_count(),
                ledger.head_digest(),
            );
        }
    }
    ExitCode::SUCCESS
}

/// Recover a crashed run from its `base.segNNNN.jsonl` files, replay the
/// suffix to completion, and write the resumed run's sealed segments.
fn resume_cmd(cfg: &E16Config, sched: Scheduling, base: &str, out_base: &str) -> ExitCode {
    let segs = match discover_segments(base) {
        Ok(segs) if !segs.is_empty() => segs,
        Ok(_) => {
            eprintln!("no {base}.seg*.jsonl files found");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut disk = SimDisk::default();
    for (index, text) in segs {
        disk.insert(index, text);
    }
    let budget = cfg.budgets[0];
    let (ledger, decisions, start, discarded) = resume_run(cfg, budget, sched, 1, &disk);
    if let Err(e) = ledger.verify() {
        eprintln!("resumed ledger corrupt: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_segments(out_base, &ledger.to_jsonl_segments()) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if start > 1 {
        println!(
            "resumed from the checkpoint at tick {} ({discarded} on-disk records \
             discarded and regenerated by replay)",
            start - 1,
        );
    } else {
        println!("no usable checkpoint survived: restarted from tick 1 ({discarded} discarded)");
    }
    println!(
        "{} decisions replayed; {} sealed segments ({} pruned), head {:016x} \
         -> {out_base}.seg*.jsonl",
        decisions.len(),
        ledger.segments().len(),
        ledger.pruned_count(),
        ledger.head_digest(),
    );
    ExitCode::SUCCESS
}

/// Rebuild the span DAG from an exported trace, print every trace's
/// critical path, and optionally write the multi-device Chrome timeline.
/// Fails when the export carries no trace contexts or any delivered span
/// names a parent that was never recorded.
fn trace_analyze(path: &str, chrome: Option<&str>) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match telemetry::import_jsonl(&text) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = telemetry::TraceGraph::build(&records);
    if graph.is_empty() {
        eprintln!("{path}: no trace-context records (was the run traced?)");
        return ExitCode::FAILURE;
    }
    let unresolved = graph.unresolved_parents();
    println!(
        "{path}: {} records, {} traces, {} span nodes, {} unresolved parents",
        records.len(),
        graph.traces().len(),
        graph.node_count(),
        unresolved.len(),
    );
    for trace in graph.traces() {
        if let Some(p) = graph.critical_path(trace) {
            print!("{}", p.render());
        }
    }
    if let Some(chrome_path) = chrome {
        if let Err(e) = fs::write(chrome_path, telemetry::export_chrome_devices(&records)) {
            eprintln!("cannot write {chrome_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("device timeline written to {chrome_path} (load in chrome://tracing)");
    }
    if unresolved.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (trace, span, parent) in unresolved {
            eprintln!("trace {trace:016x}: span {span:016x} orphaned (parent {parent:016x})");
        }
        ExitCode::FAILURE
    }
}

/// Human-readable E13 sweep table: one row per (load × knobs) cell.
fn print_e13_table(report: &apdm::serve::E13Report) {
    println!(
        "{:<6} {:<22} {:>8} {:>8} {:>7} {:>9} {:>6} {:>6} {:>7} {:>8}",
        "load", "knobs", "decided", "shed", "shed%", "thruput", "p50", "p99", "p99.9", "hit%"
    );
    for c in &report.cells {
        let hit_rate = if c.cache_hits + c.cache_misses == 0 {
            0.0
        } else {
            c.cache_hits as f64 / (c.cache_hits + c.cache_misses) as f64
        };
        println!(
            "{:<6} {:<22} {:>8} {:>8} {:>7.3} {:>9.2} {:>6} {:>6} {:>7} {:>8.3}",
            c.load,
            c.label,
            c.decided,
            c.shed,
            c.shed_rate,
            c.throughput,
            c.p50_queue_ticks,
            c.p99_queue_ticks,
            c.p999_queue_ticks,
            hit_rate,
        );
    }
}

/// Write the captured trace as JSONL plus a Chrome `trace_event` document,
/// and print the percentile summary table.
fn dump_trace(path: &str, collector: &RingCollector) -> Result<(), String> {
    let records = collector.records();
    fs::write(path, telemetry::export_jsonl(&records))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let chrome_path = format!("{path}.chrome.json");
    fs::write(&chrome_path, telemetry::export_chrome(&records))
        .map_err(|e| format!("cannot write {chrome_path}: {e}"))?;
    println!(
        "trace: {} records -> {path}, {chrome_path} (load in chrome://tracing){}",
        records.len(),
        if collector.dropped() > 0 {
            format!(
                "; {} oldest records evicted by the ring bound",
                collector.dropped()
            )
        } else {
            String::new()
        }
    );
    if let Some(registry) = telemetry::current_registry() {
        print!("{}", registry.render_summary());
    }
    Ok(())
}

/// Load a ledger crash-safely: a torn final JSONL line (interrupted write)
/// is dropped with a warning and reported as `true`; damage anywhere else
/// stays a hard error.
fn load_ledger(path: &str) -> Result<(Ledger, bool), ExitCode> {
    let text = fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::FAILURE
    })?;
    let (ledger, torn) = Ledger::from_jsonl_recovering(&text).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    if let Some(tail) = &torn {
        eprintln!("warning: {path}: {tail}");
    }
    Ok((ledger, torn.is_some()))
}

fn emit<T: serde::Serialize + std::fmt::Debug>(json: bool, value: &T) {
    if json {
        println!(
            "{}",
            serde_json::to_string(value).expect("serializable report")
        );
    } else {
        println!("{value:#?}");
    }
}

/// Run each cell across the fan-out pool, then emit reports in table
/// order. Workers run with telemetry disabled, so progress lines from
/// inside a cell only appear at `--threads 1`; results are unaffected.
fn sweep<C, R, F>(runner: &ParRunner, json: bool, cells: Vec<C>, f: F)
where
    C: Send,
    R: serde::Serialize + std::fmt::Debug + Send,
    F: Fn(C) -> R + Sync,
{
    for report in runner.map(cells, |_, cell| f(cell)) {
        emit(json, &report);
    }
}

fn run_experiment(
    id: &str,
    seed: u64,
    json: bool,
    threads: usize,
    cache: bool,
    out: Option<&str>,
    sched: Scheduling,
) {
    if !json {
        let title = EXPERIMENTS
            .iter()
            .find(|(e, _)| e == &id)
            .map(|(_, t)| *t)
            .unwrap_or("");
        event!(
            Level::Info,
            "experiment.start",
            id = id,
            title = title,
            seed = seed
        );
    }
    let runner = ParRunner::new(threads);
    match id {
        "f1" => sweep(&runner, json, vec![8usize, 32], |n| {
            run_surveillance(n, 300, seed)
        }),
        "e1" => sweep(&runner, json, E1Arm::all().to_vec(), |arm| {
            run_e1(arm, 12, 12, 100, seed)
        }),
        "e2" => sweep(&runner, json, E2Arm::all().to_vec(), |arm| {
            run_e2(arm, 16, 80, seed)
        }),
        "e2d" => sweep(&runner, json, E2dArm::all().to_vec(), |arm| {
            run_e2d(arm, 400, 0.3, seed)
        }),
        "e3" => sweep(&runner, json, E3Arm::all().to_vec(), |arm| {
            run_e3(arm, 12, 0.3, 100, seed)
        }),
        "e4" => sweep(&runner, json, E4Arm::all().to_vec(), |arm| {
            run_e4(arm, 6, 2.5, 10.0, 50, seed)
        }),
        "e5" => {
            let mut cells = Vec::new();
            for corrupted in 0..=2usize {
                for arm in E5Arm::all() {
                    cells.push((arm, corrupted));
                }
            }
            sweep(&runner, json, cells, |(arm, corrupted)| {
                run_e5(arm, corrupted, 400, seed)
            });
        }
        "e6" => sweep(&runner, json, E6Arm::all().to_vec(), |arm| {
            run_e6(arm, 6, 40, 60, seed)
        }),
        "e7" => {
            let mut cells = Vec::new();
            for pathway in Pathway::all() {
                for guarded in [false, true] {
                    cells.push((pathway, guarded));
                }
            }
            sweep(&runner, json, cells, |(pathway, guarded)| {
                run_e7(pathway, guarded, 4, 100, seed)
            });
        }
        "e8" => sweep(&runner, json, ContagionArm::all().to_vec(), |arm| {
            run_contagion(arm, 16, 40, seed)
        }),
        "a1" => sweep(&runner, json, GuardMask::all().to_vec(), |mask| {
            run_a1(mask, 60, seed)
        }),
        "a3" => sweep(&runner, json, vec![0.0f64, 0.01, 0.05, 0.2], |p| {
            run_a3(p, 5, 200, seed)
        }),
        "e9" => {
            emit(json, &run_e9(100, seed));
        }
        "e10" => {
            // 600 ticks matches the bench table; shorter trials are too
            // noisy for a single-digit-percent overhead measurement. Timing
            // experiments never go through the fan-out pool.
            emit(json, &run_e10(8, 600, TRACE_RING_CAPACITY, seed));
        }
        "e11" => {
            emit(
                json,
                &run_e11(&[8, 24, 48, 96], &[1, 2, 4, 8], 200, seed, cache),
            );
        }
        "e12" => {
            let cfg = E12Config {
                seed,
                threads,
                ..E12Config::default()
            };
            if let Some(path) = out {
                // Smoke mode for CI: run the canonical lossy cell only and
                // write its sealed ledger for the byte-for-byte determinism
                // check across thread counts.
                let (report, ledger) = run_e12_cell(&cfg, 0.3, 30, FailMode::Closed);
                if let Err(e) = fs::write(path, ledger.to_jsonl()) {
                    eprintln!("cannot write {path}: {e}");
                    return;
                }
                emit(json, &report);
            } else {
                emit(
                    json,
                    &run_e12(&cfg, &[0.0, 0.1, 0.3, 0.6], &[0, 20, 60], threads),
                );
            }
        }
        "e13" => {
            emit(
                json,
                &run_e13(&E13Config {
                    seed,
                    threads,
                    ..E13Config::default()
                }),
            );
        }
        "e14" => {
            let cfg = E14Config {
                seed,
                threads,
                ..E14Config::default()
            };
            if let Some(path) = out {
                // Record mode for `trace-analyze` and CI: run the fully
                // traced variant once and write its record stream as JSONL.
                let (report, records) = run_e14_mode(&cfg, TraceMode::Full);
                if let Err(e) = fs::write(path, telemetry::export_jsonl(&records)) {
                    eprintln!("cannot write {path}: {e}");
                    return;
                }
                emit(json, &report);
            } else {
                emit(json, &run_e14(&cfg));
            }
        }
        "e15" => {
            let cfg = E15Config {
                seed,
                threads,
                ..E15Config::default()
            };
            if let Some(path) = out {
                // Smoke mode for CI: run the canonical skewed cell only
                // (Zipf 1.2, smoke shape) under the requested `--sched`
                // and write its sealed ledger — CI `cmp`s the static and
                // balanced files byte for byte.
                let cfg = E15Config {
                    seed,
                    threads,
                    ..E15Config::smoke()
                };
                let cell_threads = if threads == 0 { 3 } else { threads };
                let (report, ledger) = run_e15_cell(&cfg, 1.2, sched, cell_threads);
                if let Err(e) = fs::write(path, ledger.to_jsonl()) {
                    eprintln!("cannot write {path}: {e}");
                    return;
                }
                emit(json, &report);
            } else {
                emit(json, &run_e15(&cfg));
            }
        }
        "e16" => {
            if let Some(path) = out {
                // Smoke mode for CI: run the canonical rotating cell only
                // (one budget, smoke shape) under the requested `--sched`,
                // sweep every kill point against it, and write the golden
                // sealed segment files — CI `cmp`s the static and balanced
                // families byte for byte and `verify`s the chain.
                let cfg = E16Config {
                    seed,
                    threads,
                    ..E16Config::smoke()
                };
                let (report, ledger) = run_e16_cell(&cfg, cfg.budgets[0], sched);
                if let Err(e) = write_segments(path, &ledger.to_jsonl_segments()) {
                    eprintln!("{e}");
                    return;
                }
                emit(json, &report);
            } else {
                let cfg = E16Config {
                    seed,
                    threads,
                    ..E16Config::default()
                };
                emit(json, &run_e16(&cfg));
            }
        }
        "e17" => {
            // The TCP sweep drives its own loopback threads; `threads` (the
            // in-service worker pool) stays 1 so the ledger matches the
            // golden in-process run byte for byte.
            match run_e17(&E17Config {
                seed,
                ..E17Config::default()
            }) {
                Ok(report) => emit(json, &report),
                Err(e) => eprintln!("e17 failed: {e}"),
            }
        }
        _ => unreachable!("validated above"),
    }
}
