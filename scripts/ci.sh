#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "CI gate passed."
