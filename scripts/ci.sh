#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> trace smoke test (apdm-experiments trace)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/apdm-experiments trace --seed 42 --out "$trace_dir/trace.jsonl" --quiet
test -s "$trace_dir/trace.jsonl" || { echo "trace smoke: JSONL trace is missing or empty"; exit 1; }
test -s "$trace_dir/trace.jsonl.chrome.json" || { echo "trace smoke: Chrome trace is missing or empty"; exit 1; }
python3 - "$trace_dir/trace.jsonl" <<'PY'
import json, sys

path = sys.argv[1]
names = set()
with open(path) as fh:
    for lineno, line in enumerate(fh, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as err:
            sys.exit(f"trace smoke: line {lineno} is not valid JSON: {err}")
        if rec["kind"] == "span_start":
            names.add(rec["name"])

phases = {f"phase.{p}" for p in
          ("sense", "propose", "guard", "execute", "world-step", "ledger-append")}
missing = sorted(phases - names)
if missing:
    sys.exit(f"trace smoke: tick-phase spans missing from trace: {missing}")
print(f"trace smoke: all {len(phases)} tick-phase spans present")
PY

echo "CI gate passed."
