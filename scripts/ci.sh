#!/usr/bin/env bash
# Full local CI gate: formatting, lints, release build, tests.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> trace smoke test (apdm-experiments trace)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/apdm-experiments trace --seed 42 --out "$trace_dir/trace.jsonl" --quiet
test -s "$trace_dir/trace.jsonl" || { echo "trace smoke: JSONL trace is missing or empty"; exit 1; }
test -s "$trace_dir/trace.jsonl.chrome.json" || { echo "trace smoke: Chrome trace is missing or empty"; exit 1; }
python3 - "$trace_dir/trace.jsonl" <<'PY'
import json, sys

path = sys.argv[1]
names = set()
with open(path) as fh:
    for lineno, line in enumerate(fh, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as err:
            sys.exit(f"trace smoke: line {lineno} is not valid JSON: {err}")
        if rec["kind"] == "span_start":
            names.add(rec["name"])

phases = {f"phase.{p}" for p in
          ("sense", "propose", "guard", "execute", "world-step", "ledger-append")}
missing = sorted(phases - names)
if missing:
    sys.exit(f"trace smoke: tick-phase spans missing from trace: {missing}")
print(f"trace smoke: all {len(phases)} tick-phase spans present")
PY

echo "==> parallel determinism smoke (APDM_THREADS=4 vs sequential)"
./target/release/apdm-experiments record --seed 42 --threads 1 \
    --out "$trace_dir/run-seq.jsonl" --quiet >/dev/null
APDM_THREADS=4 ./target/release/apdm-experiments record --seed 42 \
    --out "$trace_dir/run-par.jsonl" --quiet >/dev/null
cmp -s "$trace_dir/run-seq.jsonl" "$trace_dir/run-par.jsonl" \
    || { echo "parallel smoke: 4-thread ledger diverges from sequential"; exit 1; }
echo "parallel smoke: 4-thread ledger byte-identical to sequential"

echo "==> degraded-comms smoke (E12 cell, loss=0.3, fixed seed)"
./target/release/apdm-experiments run e12 --seed 42 --threads 1 \
    --out "$trace_dir/e12-seq.jsonl" --json --quiet > "$trace_dir/e12-seq.json"
APDM_THREADS=4 ./target/release/apdm-experiments run e12 --seed 42 --threads 0 \
    --out "$trace_dir/e12-par.jsonl" --json --quiet > "$trace_dir/e12-par.json"
cmp -s "$trace_dir/e12-seq.jsonl" "$trace_dir/e12-par.jsonl" \
    || { echo "e12 smoke: 4-thread sealed ledger diverges from sequential"; exit 1; }
./target/release/apdm-experiments verify "$trace_dir/e12-seq.jsonl" --quiet >/dev/null \
    || { echo "e12 smoke: sealed cell ledger failed verification"; exit 1; }
python3 - "$trace_dir/e12-seq.json" <<'PY'
import json, sys

cell = json.load(open(sys.argv[1]))
if cell["containment_tick"] is None:
    sys.exit("e12 smoke: rogues were never contained at loss=0.3")
if cell["watchdog"] is not None:
    sys.exit(f"e12 smoke: watchdog tripped unexpectedly: {cell['watchdog']}")
print(f"e12 smoke: contained at tick {cell['containment_tick']} under loss=0.3, "
      f"ledger byte-identical at 1 and 4 threads")
PY

echo "==> serving smoke (E13 sweep, micro-batching decision service)"
./target/release/apdm-experiments serve-bench --smoke --seed 42 --json --quiet \
    > "$trace_dir/e13-smoke.json"
python3 - "$trace_dir/e13-smoke.json" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
cells = report["cells"]
low = min(report["config"]["loads"])
for c in cells:
    if c["watchdog"] is not None:
        sys.exit(f"e13 smoke: watchdog tripped in {c['label']} load={c['load']}")
    if c["throughput"] <= 0:
        sys.exit(f"e13 smoke: zero throughput in {c['label']} load={c['load']}")
    if c["decided"] + c["shed"] != c["offered"]:
        sys.exit(f"e13 smoke: requests lost in {c['label']} load={c['load']}")
    if c["shed_allows"] != 0:
        sys.exit(f"e13 smoke: a shed request was ALLOWED in {c['label']} load={c['load']}")
    if c["load"] == low and c["shed"] != 0:
        sys.exit(f"e13 smoke: shed at low load in {c['label']}")
print(f"e13 smoke: {len(cells)} cells, non-zero throughput, no sheds at load={low}, "
      f"all sheds fail closed")
PY

echo "==> distributed-tracing smoke (E14 traced run + trace-analyze round trip)"
./target/release/apdm-experiments run e14 --seed 42 \
    --out "$trace_dir/e14-trace.jsonl" --json --quiet > "$trace_dir/e14-report.json"
./target/release/apdm-experiments trace-analyze "$trace_dir/e14-trace.jsonl" \
    --chrome "$trace_dir/e14-chrome.json" > "$trace_dir/e14-paths.txt" \
    || { echo "e14 smoke: trace-analyze failed (orphaned spans?)"; exit 1; }
python3 - "$trace_dir/e14-report.json" "$trace_dir/e14-paths.txt" \
    "$trace_dir/e14-chrome.json" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
if report["unresolved_parents"] != 0:
    sys.exit(f"e14 smoke: {report['unresolved_parents']} spans have unresolved parents")
if report["traces"] != report["offered"]:
    sys.exit(f"e14 smoke: {report['traces']} traces for {report['offered']} requests")

paths = open(sys.argv[2]).read()
stages = ["client.submit", "comms.send", "comms.recv", "serve.admit", "serve.batch",
          "serve.shard", "serve.ledger", "comms.respond", "client.done"]
missing = [s for s in stages if s not in paths]
if missing:
    sys.exit(f"e14 smoke: pipeline stages missing from critical paths: {missing}")

chrome = json.load(open(sys.argv[3]))
devices = {e["tid"] for e in chrome["traceEvents"] if e.get("ph") == "X"}
if len(devices) < 2:
    sys.exit(f"e14 smoke: device timeline covers {len(devices)} device(s), expected several")
print(f"e14 smoke: {report['traces']} traces span all {len(stages)} pipeline stages, "
      f"device timeline covers {len(devices)} devices")
PY

echo "==> skew-scheduling smoke (E15 cell, zipf=1.2: static vs balanced)"
./target/release/apdm-experiments run e15 --seed 42 --sched static --threads 1 \
    --out "$trace_dir/e15-static.jsonl" --json --quiet > "$trace_dir/e15-static.json"
./target/release/apdm-experiments run e15 --seed 42 --sched balanced --threads 3 \
    --out "$trace_dir/e15-balanced.jsonl" --json --quiet > "$trace_dir/e15-balanced.json"
cmp -s "$trace_dir/e15-static.jsonl" "$trace_dir/e15-balanced.jsonl" \
    || { echo "e15 smoke: balanced sealed ledger diverges from static"; exit 1; }
./target/release/apdm-experiments verify "$trace_dir/e15-static.jsonl" --quiet >/dev/null \
    || { echo "e15 smoke: sealed cell ledger failed verification"; exit 1; }
python3 - "$trace_dir/e15-static.json" "$trace_dir/e15-balanced.json" <<'PY'
import json, sys

stat = json.load(open(sys.argv[1]))
bal = json.load(open(sys.argv[2]))
for cell in (stat, bal):
    if cell["watchdog"] is not None:
        sys.exit(f"e15 smoke: watchdog tripped in {cell['sched']}: {cell['watchdog']}")
    if cell["shed_allows"] != 0:
        sys.exit(f"e15 smoke: a shed request was ALLOWED in {cell['sched']}")
    if cell["decided"] + cell["shed"] != cell["offered"]:
        sys.exit(f"e15 smoke: requests lost in {cell['sched']}")
if stat["ledger_digest"] != bal["ledger_digest"]:
    sys.exit("e15 smoke: ledger digests diverge between static and balanced")
if not bal["hot_p99_wait"] < stat["hot_p99_wait"]:
    sys.exit(f"e15 smoke: balanced hot p99 wait {bal['hot_p99_wait']} "
             f"did not beat static {stat['hot_p99_wait']}")
if bal["deferrals"] == 0:
    sys.exit("e15 smoke: backpressure never deferred under zipf=1.2")
print(f"e15 smoke: ledger byte-identical across scheduling, balanced hot-shard "
      f"p99 wait {bal['hot_p99_wait']} < static {stat['hot_p99_wait']}, "
      f"{bal['deferrals']} deferrals")
PY

echo "==> cost-model calibration smoke (serve-bench --calibrate)"
./target/release/apdm-experiments serve-bench --calibrate --seed 42 --json --quiet \
    > "$trace_dir/calibration.json"
python3 - "$trace_dir/calibration.json" <<'PY'
import json, sys

cal = json.load(open(sys.argv[1]))
fit = cal["fitted"]
if fit["cost_hit"] != 1 or fit["cost_miss"] < 1 or fit["capacity_per_tick"] < 1:
    sys.exit(f"calibration smoke: degenerate fitted model {fit}")
print(f"calibration smoke: {cal['samples']} batches -> cost_miss={fit['cost_miss']}, "
      f"capacity_per_tick={fit['capacity_per_tick']}")
PY

echo "==> crash-tolerance smoke (E16: checkpoint golden, kill mid-run, resume, verify)"
./target/release/apdm-experiments checkpoint --seed 42 \
    --out "$trace_dir/e16-golden" --quiet >/dev/null
./target/release/apdm-experiments checkpoint --seed 42 --kill-tick 21 \
    --out "$trace_dir/e16-crashed" --quiet >/dev/null
./target/release/apdm-experiments resume "$trace_dir/e16-crashed" --seed 42 \
    --out "$trace_dir/e16-resumed" --quiet >/dev/null
golden_count=0
for f in "$trace_dir"/e16-golden.seg*.jsonl; do
    golden_count=$((golden_count + 1))
    cmp -s "$f" "${f/e16-golden/e16-resumed}" \
        || { echo "e16 smoke: resumed $(basename "$f") diverges from golden"; exit 1; }
done
test "$golden_count" -gt 1 || { echo "e16 smoke: golden run never rotated"; exit 1; }
resumed_count=$(ls "$trace_dir"/e16-resumed.seg*.jsonl | wc -l)
test "$golden_count" -eq "$resumed_count" \
    || { echo "e16 smoke: resumed run has $resumed_count segments, golden $golden_count"; exit 1; }
first_seg=$(printf '%s\n' "$trace_dir"/e16-golden.seg*.jsonl | head -n 1)
./target/release/apdm-experiments verify "$first_seg" --quiet >/dev/null \
    || { echo "e16 smoke: golden rotated chain failed verification"; exit 1; }
# Negative control: a tampered retained segment must fail the whole chain.
mkdir "$trace_dir/e16-tampered"
cp "$trace_dir"/e16-golden.seg*.jsonl "$trace_dir/e16-tampered/"
tamper_file=$(printf '%s\n' "$trace_dir"/e16-tampered/e16-golden.seg*.jsonl | head -n 1)
python3 - "$tamper_file" <<'PY'
import re, sys

path = sys.argv[1]
lines = open(path).read().splitlines()
m = re.search(r'"digest":(\d+)', lines[1])
lines[1] = lines[1].replace(m.group(0), '"digest":' + str(int(m.group(1)) ^ 1))
open(path, "w").write("\n".join(lines) + "\n")
PY
if ./target/release/apdm-experiments verify "$tamper_file" --quiet >/dev/null 2>&1; then
    echo "e16 smoke: tampered segment chain passed verification"; exit 1
fi
echo "e16 smoke: resumed run byte-identical to golden across $golden_count segments," \
     "rotated chain verifies, tampering detected"

echo "==> networked-serving smoke (E17: serve-net over real sockets vs in-process golden)"
./target/release/apdm-experiments serve-net golden --smoke --seed 42 \
    --out "$trace_dir/e17-golden" --quiet >/dev/null
./target/release/apdm-experiments serve-net serve --smoke --seed 42 --clients 2 \
    --addr-file "$trace_dir/e17-addr" --out "$trace_dir/e17-served" --quiet >/dev/null &
e17_server=$!
./target/release/apdm-experiments serve-net client --smoke --seed 42 \
    --addr-file "$trace_dir/e17-addr" --index 0 --clients 2 --quiet >/dev/null &
e17_c0=$!
./target/release/apdm-experiments serve-net chaos --smoke --seed 42 \
    --addr-file "$trace_dir/e17-addr" --kind garbage --quiet >/dev/null &
e17_chaos=$!
./target/release/apdm-experiments serve-net client --smoke --seed 42 \
    --addr-file "$trace_dir/e17-addr" --index 1 --clients 2 --quiet >/dev/null \
    || { echo "e17 smoke: workload client 1 failed"; exit 1; }
wait "$e17_c0" || { echo "e17 smoke: workload client 0 failed"; exit 1; }
wait "$e17_chaos" || { echo "e17 smoke: chaos client failed"; exit 1; }
wait "$e17_server" || { echo "e17 smoke: server failed"; exit 1; }
e17_segs=0
for f in "$trace_dir"/e17-golden.seg*.jsonl; do
    e17_segs=$((e17_segs + 1))
    cmp -s "$f" "${f/e17-golden/e17-served}" \
        || { echo "e17 smoke: served $(basename "$f") diverges from in-process golden"; exit 1; }
done
test "$e17_segs" -gt 1 || { echo "e17 smoke: golden run never rotated"; exit 1; }
echo "e17 smoke: TCP-served ledger byte-identical to in-process golden across" \
     "$e17_segs segments (2 workload clients + a garbage chaos client)"

echo "==> strong-scaling smoke (E11 table)"
./target/release/apdm-experiments run e11 --json --quiet > "$trace_dir/e11-report.json"
python3 - "$trace_dir/e11-report.json" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
bad = [c for c in report["cells"] if not c["digest_matches_sequential"]]
if bad:
    sys.exit(f"e11: cells diverged from the sequential ledger: {bad}")
print(f"e11: {len(report['cells'])} cells, all ledgers bit-identical "
      f"(hardware_threads={report['hardware_threads']})")
PY

echo "CI gate passed."
