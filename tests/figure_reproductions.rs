//! Reproductions of the paper's three (conceptual) figures as executable
//! assertions: F1 (mode of operation), F2 (abstract device model), F3
//! (state-space partition).

use apdm::device::{Actuator, Device, DeviceKind, OrgId, Sensor};
use apdm::policy::{Action, Condition, EcaRule, Event};
use apdm::sim::scenario::run_surveillance;
use apdm::statespace::grid::Grid2;
use apdm::statespace::reach::{can_reach_bad, guarded_reachable, safe_kernel, VonNeumannMoves};
use apdm::statespace::{Label, Region, RegionClassifier, StateDelta, StateSchema};

/// Figure 1: several devices under one human's command collaboratively
/// execute actions, with only a few decisions escalated for cross-validation.
#[test]
fn f1_command_fans_out_to_collaborating_devices() {
    let report = run_surveillance(16, 300, 42);
    assert!(report.devices >= 20, "drones plus specialist devices");
    assert!(
        report.policies_generated >= report.devices,
        "every device generated policies"
    );
    assert!(
        report.autonomy() > 0.7,
        "most sightings handled without a human"
    );
    assert!(
        report.escalated > 0,
        "ambiguous cases still reach the human"
    );
    assert_eq!(
        report.handled + report.escalated,
        report.sightings - (report.sightings - report.handled - report.escalated),
        "accounting is consistent"
    );
}

/// Figure 1 (scaling corollary): the policy load grows with the fleet, which
/// is why the paper has devices generate policies themselves.
#[test]
fn f1_policy_load_scales_with_fleet() {
    let small = run_surveillance(4, 200, 1);
    let large = run_surveillance(32, 200, 1);
    assert!(large.policies_generated >= 4 * small.policies_generated);
}

/// Figure 2: sensors feed state; logic maps (event, state) to an actuator
/// invocation; the actuation moves the state.
#[test]
fn f2_sense_decide_act_loop() {
    let schema = StateSchema::builder().var("temp", 0.0, 100.0).build();
    let mut device = Device::builder(1u64, DeviceKind::new("cooler"), OrgId::new("us"))
        .schema(schema)
        .sensor(Sensor::new("thermometer", 0.into()))
        .actuator(Actuator::new("vent", 0.into(), 15.0))
        .rule(EcaRule::new(
            "cool-down",
            Event::pattern("tick"),
            Condition::state_at_least(0.into(), 80.0),
            Action::adjust("vent", StateDelta::single(0.into(), -10.0)),
        ))
        .build();

    // Sensor -> state.
    device.sense(&[(0, 91.0)]);
    assert_eq!(device.state().values()[0], 91.0);
    // State + event -> logic -> actuator -> new state.
    let actuation = device.step(&Event::named("tick")).expect("rule fires");
    assert_eq!(actuation.actuator, "vent");
    assert_eq!(device.state().values()[0], 81.0);
    // Below the threshold the logic goes quiet.
    device.sense(&[(0, 60.0)]);
    assert!(device.step(&Event::named("tick")).is_none());
}

/// Figure 3: one contiguous good region surrounded by bad states; guarded
/// logic is confined to the good region, unguarded logic can reach bad.
#[test]
fn f3_partition_and_guarded_reachability() {
    let schema = StateSchema::builder()
        .var("v1", 0.0, 10.0)
        .var("v2", 0.0, 10.0)
        .build();
    let classifier = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
    let grid = Grid2::new(schema, 20, 20).unwrap();
    let labels = grid.classify(&classifier);

    // The partition looks like the figure: a minority contiguous good set.
    let (good, _, bad) = labels.fractions();
    assert!(good > 0.0 && good < 0.5);
    assert!(bad > 0.5);
    assert!(labels.good_is_connected());

    // The rendered figure has both characters and the right dimensions.
    let art = labels.render();
    assert_eq!(art.lines().count(), 20);
    assert!(art.contains('.') && art.contains('#'));

    // Reachability: the unguarded device can wander into bad states, the
    // guarded one never can, and the safe kernel equals the good set.
    let start = grid.cell_of(&grid.schema().midpoint());
    assert!(can_reach_bad(&grid, &labels, &VonNeumannMoves, start));
    let reach = guarded_reachable(&grid, &labels, &VonNeumannMoves, start);
    assert_eq!(reach.count(), labels.count(Label::Good));
    let kernel = safe_kernel(&grid, &labels, &VonNeumannMoves);
    let kernel_size: usize = kernel.iter().flatten().filter(|&&k| k).count();
    assert_eq!(kernel_size, labels.count(Label::Good));
}
