//! Shape assertions for every experiment in DESIGN.md §3: running
//! `cargo test` re-validates the reproduction's claims end to end.
//! (`cargo bench` regenerates the full numeric tables.)

use apdm::sim::faults::Pathway;
use apdm::sim::runner::*;

#[test]
fn e1_preaction_checks() {
    let rows: Vec<E1Report> = E1Arm::all()
        .iter()
        .map(|&a| run_e1(a, 12, 12, 80, 2))
        .collect();
    let (none, pre, look, oblig) = (&rows[0], &rows[1], &rows[2], &rows[3]);
    // Paper: a set of properly defined checks stops direct harm...
    assert!(none.direct_harms > 0);
    assert_eq!(pre.direct_harms, 0);
    // ...but "the pre-action check may fail in some cases" on indirect harm...
    assert!(pre.indirect_harms > 0);
    // ...which prediction or obligations close.
    assert_eq!(look.indirect_harms, 0);
    assert_eq!(oblig.indirect_harms, 0);
    // Obligations keep availability above prediction-based denial.
    assert!(oblig.availability >= look.availability);
}

#[test]
fn e2_statespace_checks() {
    let none = run_e2(E2Arm::NoGuard, 12, 60, 3);
    let hard = run_e2(E2Arm::HardCheck, 12, 60, 3);
    let ont = run_e2(E2Arm::OntologyRisk, 12, 60, 3);
    let bg = run_e2(E2Arm::BreakGlass, 12, 60, 3);
    assert!(none.bad_entries > 0);
    assert!(hard.bad_entries < none.bad_entries);
    assert!(hard.frozen_steps > 0, "forced dilemmas freeze a hard check");
    // The ontology resolves dilemmas toward less-bad states: fewer worst-class
    // entries per bad entry than the unguarded walk.
    let ont_worst_ratio = ont.worst_entries as f64 / ont.bad_entries.max(1) as f64;
    let none_worst_ratio = none.worst_entries as f64 / none.bad_entries.max(1) as f64;
    assert!(ont_worst_ratio <= none_worst_ratio);
    // Break-glass escapes exist and every one is audited.
    assert!(bg.breakglass_grants > 0);
}

#[test]
fn e3_deactivation() {
    let none = run_e3(E3Arm::NoContainment, 12, 0.25, 80, 4);
    let quorum = run_e3(E3Arm::QuorumKill, 12, 0.25, 80, 4);
    assert!(none.harms > 0);
    assert!(none.containment_tick.is_none());
    assert!(
        quorum.containment_tick.is_some(),
        "quorum contains the rogues"
    );
    assert!(quorum.harms <= none.harms);
    assert!(quorum.availability > 0.5, "healthy devices mostly survive");
}

#[test]
fn e4_formation_checks() {
    let none = run_e4(E4Arm::NoCheck, 6, 2.5, 10.0, 40, 5);
    let formation = run_e4(E4Arm::FormationCheck, 6, 2.5, 10.0, 40, 5);
    let collab = run_e4(E4Arm::Collaborative, 6, 2.5, 10.0, 40, 5);
    // Individually-good devices are collectively harmful without checks.
    assert!(none.aggregate_harms > 0);
    assert_eq!(formation.aggregate_harms, 0);
    assert_eq!(collab.aggregate_harms, 0);
    // Formation refuses members; collaboration admits all and still is safe.
    assert!(formation.refused > 0);
    assert_eq!(collab.admitted, 6);
}

#[test]
fn e5_governance() {
    // One corrupted collective: solo executes malevolence, 2-of-3 blocks all.
    let solo = run_e5(E5Arm::ExecutiveOnly, 1, 300, 6);
    let tri = run_e5(E5Arm::Tripartite, 1, 300, 6);
    assert!(solo.malevolent_executed as f64 > 0.4 * solo.decisions as f64);
    assert_eq!(tri.malevolent_executed, 0);
    assert_eq!(tri.false_blocks, 0);
    // The paper's boundary: two corrupted collectives defeat 2-of-3.
    let tri2 = run_e5(E5Arm::Tripartite, 2, 300, 6);
    assert!(tri2.malevolent_executed > 0);
}

#[test]
fn e6_utility_gradients() {
    for dims in [4usize, 6, 8] {
        let oracle = run_e6(E6Arm::ExactOracle, dims, 30, 60, 7);
        let gradient = run_e6(E6Arm::GradientUtility, dims, 30, 60, 7);
        let random = run_e6(E6Arm::Random, dims, 30, 60, 7);
        // Gradient utility significantly reduces harm relative to random...
        assert!(
            gradient.harm_probability < 0.5 * random.harm_probability,
            "dims={dims}: gradient {} vs random {}",
            gradient.harm_probability,
            random.harm_probability
        );
        // ...but is "not an absolute fool-proof mechanism" (Section VII):
        // it cannot beat full knowledge by construction.
        assert!(gradient.harm_probability + 1e-9 >= oracle.harm_probability - 0.05);
    }
}

#[test]
fn e7_pathways() {
    for pathway in Pathway::all() {
        let unguarded = run_e7(pathway, false, 4, 80, 8);
        assert!(
            unguarded.first_harm_tick.is_some(),
            "pathway {} must harm an unguarded fleet",
            pathway.name()
        );
    }
    // Guards hold against all pathways that do not attack the guard layer.
    for pathway in [
        Pathway::LearningMistake,
        Pathway::AdversarialMl,
        Pathway::InappropriateEmulation,
        Pathway::MaliciousActor,
        Pathway::HumanError,
    ] {
        let guarded = run_e7(pathway, true, 4, 80, 8);
        assert_eq!(
            guarded.harms,
            0,
            "guards should hold against {}",
            pathway.name()
        );
    }
    // The backdoor pathway attacks the guards themselves and eventually wins
    // — the paper's argument for why backdoors are "perhaps misguided".
    let backdoor = run_e7(Pathway::Backdoor, true, 4, 600, 8);
    assert!(backdoor.harms > 0, "a tamperable guard eventually falls");
}

#[test]
fn e8_contagion_throttles() {
    use apdm::sim::contagion::{run_contagion, ContagionArm};
    let open = run_contagion(ContagionArm::OpenExchange, 12, 30, 11);
    let phys = run_contagion(ContagionArm::PhysicalBlocked, 12, 30, 11);
    let ack = run_contagion(ContagionArm::HumanAck, 12, 30, 11);
    let blk = run_contagion(ContagionArm::HumanAckBlacklist, 12, 30, 11);
    assert_eq!(open.infected, 12, "unthrottled gossip converts everyone");
    assert_eq!(
        phys.infected, 6,
        "physical-blocking caps at the org boundary"
    );
    assert_eq!(phys.benign_coverage, 12, "without starving benign updates");
    assert_eq!(
        ack.infected, 12,
        "per-offer review loses to repeated exposure"
    );
    assert!(blk.infected < 4, "indicator sharing stops the epidemic");
}

#[test]
fn a1_guard_stack_ablation() {
    let full = GuardMask {
        preaction: true,
        statecheck: true,
        deactivation: true,
        formation: true,
    };
    let none = GuardMask {
        preaction: false,
        statecheck: false,
        deactivation: false,
        formation: false,
    };
    let r_full = run_a1(full, 50, 9);
    let r_none = run_a1(none, 50, 9);
    assert!(r_none.total > 0);
    assert!(r_full.total < r_none.total);
    assert_eq!(r_full.direct, 0, "pre-action stops strikes");
    // Mechanisms are complementary: no single guard equals the full stack.
    for single in [
        GuardMask {
            preaction: true,
            ..none
        },
        GuardMask {
            statecheck: true,
            ..none
        },
        GuardMask {
            deactivation: true,
            ..none
        },
        GuardMask {
            formation: true,
            ..none
        },
    ] {
        let r = run_a1(single, 50, 9);
        assert!(
            r.total >= r_full.total,
            "single guard {} ({} harms) should not beat the full stack ({})",
            r.mask,
            r.total,
            r_full.total
        );
    }
}

#[test]
fn a3_tamper_proofness_is_load_bearing() {
    let solid = run_a3(0.0, 5, 150, 10);
    let leaky = run_a3(0.02, 5, 150, 10);
    let sieve = run_a3(0.2, 5, 150, 10);
    assert_eq!(solid.harms, 0, "tamper-proof guards never fall");
    assert!(leaky.harms > 0);
    assert!(sieve.first_harm_tick.unwrap() <= leaky.first_harm_tick.unwrap());
}
