//! Property-based tests (proptest) over the core invariants the paper's
//! mechanisms depend on.

use proptest::prelude::*;

use apdm::guards::{GuardContext, GuardStack, NoHarmOracle, StateSpaceGuard};
use apdm::policy::{Action, Cmp, Condition, EcaRule, Event, PolicyEngine};
use apdm::statespace::{
    Classifier, Label, Region, RegionClassifier, SafenessMetric, State, StateDelta, StateSchema,
    VarId,
};

fn schema2() -> StateSchema {
    StateSchema::builder()
        .var("x", 0.0, 10.0)
        .var("y", 0.0, 10.0)
        .build()
}

fn arb_state() -> impl Strategy<Value = State> {
    (0.0..=10.0f64, 0.0..=10.0f64).prop_map(|(x, y)| schema2().state(&[x, y]).unwrap())
}

fn arb_delta() -> impl Strategy<Value = StateDelta> {
    ((-20.0..20.0f64), (-20.0..20.0f64))
        .prop_map(|(dx, dy)| StateDelta::single(VarId(0), dx).and(VarId(1), dy))
}

proptest! {
    /// Applying any delta keeps the state inside the schema's bounds —
    /// actuation can never teleport a device out of its state space.
    #[test]
    fn state_apply_respects_bounds(s in arb_state(), d in arb_delta()) {
        let next = s.apply(&d);
        for (spec, v) in next.schema().vars().iter().zip(next.values()) {
            prop_assert!(spec.contains(*v), "{v} escaped {spec}");
        }
    }

    /// delta_to/apply round-trip: the reconstructed delta reproduces the
    /// destination (up to floating-point roundoff in `a + (b - a)`).
    #[test]
    fn delta_roundtrip(a in arb_state(), b in arb_state()) {
        let d = a.delta_to(&b);
        prop_assert!(a.apply(&d).distance(&b) < 1e-9);
    }

    /// Region boolean algebra: membership in (A ∪ B) and ¬(¬A ∩ ¬B) agree
    /// (De Morgan holds for arbitrary rectangles and points).
    #[test]
    fn region_de_morgan(
        s in arb_state(),
        a_lo in 0.0..5.0f64, a_hi in 5.0..10.0f64,
        b_lo in 0.0..5.0f64, b_hi in 5.0..10.0f64,
    ) {
        let a = Region::rect(&[(a_lo, a_hi)]);
        let b = Region::rect(&[(0.0, 10.0), (b_lo, b_hi)]);
        let union = a.clone().or(b.clone());
        let de_morgan = a.complement().and(b.complement()).complement();
        prop_assert_eq!(union.contains(&s), de_morgan.contains(&s));
    }

    /// The Figure-3 classifier is total and consistent with its safeness
    /// metric: good states are always at least as safe as bad states.
    #[test]
    fn safeness_orders_good_above_bad(a in arb_state(), b in arb_state()) {
        let c = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        let (la, lb) = (c.classify(&a), c.classify(&b));
        if la == Label::Good && lb == Label::Bad {
            prop_assert!(c.safeness(&a) > c.safeness(&b));
        }
    }

    /// Policy-engine determinism: any rule set evaluates identically on
    /// repeated calls (total, deterministic conflict resolution).
    #[test]
    fn engine_is_deterministic(
        prios in proptest::collection::vec(-5i32..5, 1..8),
        x in 0.0..=10.0f64,
    ) {
        let mut engine = PolicyEngine::new();
        for (i, p) in prios.iter().enumerate() {
            engine.add_rule(
                EcaRule::new(
                    format!("r{i}"),
                    Event::pattern("tick"),
                    Condition::state_at_least(VarId(0), (i as f64) % 10.0),
                    Action::adjust(format!("a{i}"), StateDelta::empty()),
                )
                .with_priority(*p),
            );
        }
        let s = schema2().state(&[x, 0.0]).unwrap();
        let first = engine.decide(&Event::named("tick"), &s);
        for _ in 0..5 {
            prop_assert_eq!(engine.decide(&Event::named("tick"), &s), first.clone());
        }
        // The winner, when one exists, has the maximum priority among
        // matching rules.
        if let Some(d) = &first {
            let winner_prio = engine.rule(d.rule()).unwrap().priority();
            for id in d.matched() {
                prop_assert!(engine.rule(*id).unwrap().priority() <= winner_prio);
            }
        }
    }

    /// Condition evaluation is pure: the same inputs always give the same
    /// verdict, and negation actually negates.
    #[test]
    fn condition_negation(x in 0.0..=10.0f64, t in 0.0..=10.0f64) {
        let s = schema2().state(&[x, 0.0]).unwrap();
        let ev = Event::named("e");
        let c = Condition::StateCmp { var: VarId(0), op: Cmp::Ge, value: t };
        prop_assert_eq!(c.eval(&ev, &s), !c.clone().negate().eval(&ev, &s));
    }

    /// THE core safety invariant (Section VI.B): a tamper-proof state-space
    /// guard never lets a device step from a non-bad state into a bad state,
    /// for any proposal and any alternatives.
    #[test]
    fn guarded_transitions_never_enter_bad(
        s in arb_state(),
        d in arb_delta(),
        alt in arb_delta(),
    ) {
        let classifier = RegionClassifier::new(Region::rect(&[(3.0, 7.0), (3.0, 7.0)]));
        if classifier.classify(&s) == Label::Bad {
            return Ok(()); // the invariant concerns non-bad starts
        }
        let mut stack = GuardStack::new()
            .with_statecheck(StateSpaceGuard::new(classifier.clone()));
        let proposed = Action::adjust("walk", d);
        let alt_action = Action::adjust("alt", alt);
        let alternatives = [&alt_action];
        let ctx = GuardContext {
            tick: 0,
            subject: "p",
            state: &s,
            alternatives: &alternatives,
            world_token: 0,
        };
        let verdict = stack.check(&ctx, &proposed, NoHarmOracle);
        let next = match verdict.effective_action(&proposed) {
            Some(a) => s.apply(a.delta()),
            None => s.clone(),
        };
        prop_assert_ne!(classifier.classify(&next), Label::Bad);
    }
}
