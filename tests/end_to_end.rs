//! End-to-end integration: generative policies + safety kernel + autonomic
//! manager + policy exchange, spanning every crate in the workspace.

use apdm::core::prelude::*;
use apdm::device::Attributes;
use apdm::genpolicy::{
    ExchangeRule, InteractionGraph, KindSpec, PolicyExchange, PolicyGenerator, PolicyTemplate,
};
use apdm::guards::NoHarmOracle;
use apdm::policy::obligation::ObligationCatalog;
use apdm::policy::Obligation;
use apdm::statespace::PreferenceOntology;

fn coalition_graph() -> InteractionGraph {
    let mut g = InteractionGraph::new();
    g.add_kind(KindSpec::new("drone"));
    g.add_kind(KindSpec::new("mule"));
    g.add_interaction("drone", "mule", "dispatch");
    g
}

/// A generated policy flows: discovery -> generation -> installation ->
/// proposal -> governance -> guard -> execution.
#[test]
fn generated_policy_flows_through_the_whole_stack() {
    let schema = StateSchema::builder().var("tasking", 0.0, 1.0).build();
    let kernel = SafetyKernel::new(SafetyConfig::paper_recommended(Region::All));

    let drone = Device::builder(1u64, DeviceKind::new("drone"), OrgId::new("us"))
        .schema(schema)
        .build();
    let mut manager = AutonomicManager::new(drone, &kernel);

    // Section IV: the device generates its own dispatch policy on discovery.
    let mut generator = PolicyGenerator::new("drone", coalition_graph());
    generator.template_for(
        "dispatch",
        PolicyTemplate::new(
            "dispatch-{peer}",
            "convoy-sighted",
            Condition::True,
            Action::adjust("radio-dispatch-{peer}", Default::default()),
        ),
    );
    let rules = generator.on_discovery("mule", "uk", &Attributes::new());
    assert_eq!(rules.len(), 1);
    for rule in rules {
        manager.device_mut().engine_mut().add_rule_deduped(rule);
    }

    // The generated rule executes through governance and guards.
    let outcome = manager.handle(&Event::named("convoy-sighted"), NoHarmOracle, 1);
    let action = outcome.executed.expect("generated rule executes");
    assert_eq!(action.name(), "radio-dispatch-mule");
    assert!(!outcome.governance_blocked);
}

/// Governance scope vetoes a generated policy the guards alone would pass:
/// the layers are genuinely independent.
#[test]
fn governance_vetoes_generated_physical_policies_out_of_scope() {
    let schema = StateSchema::builder().var("tasking", 0.0, 1.0).build();
    let kernel = SafetyKernel::new(
        SafetyConfig::paper_recommended(Region::All).with_scope(MetaPolicy::new().no_physical()),
    );
    let drone = Device::builder(1u64, DeviceKind::new("drone"), OrgId::new("us"))
        .schema(schema)
        .rule(EcaRule::new(
            "generated-entrench",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust("dig-hole", Default::default()).physical(),
        ))
        .build();
    let mut manager = AutonomicManager::new(drone, &kernel);
    let outcome = manager.handle(&Event::named("tick"), NoHarmOracle, 1);
    assert!(outcome.governance_blocked);
    assert!(outcome.executed.is_none());
}

/// Policy exchange: a hostile org's policies are refused; a coalition
/// partner's are merged, deduplicated and re-offered idempotently.
#[test]
fn policy_exchange_respects_coalition_boundaries() {
    let mut offered = PolicySet::new("uk-shared");
    offered.push(EcaRule::new(
        "report-smoke",
        Event::pattern("smoke-detected"),
        Condition::True,
        Action::adjust("radio-report", Default::default()),
    ));

    let mut exchange = PolicyExchange::new(
        "us",
        PolicySet::new("us-local"),
        ExchangeRule::accept_from(["us", "uk"]).blocking_foreign_physical(),
    );
    assert!(exchange.offer("uk", &offered).is_accepted());
    assert_eq!(exchange.local().len(), 1);
    assert!(!exchange.offer("insurgent", &offered).is_accepted());

    // Foreign physical rules are refused even from a trusted partner.
    let mut physical = PolicySet::new("uk-strike-pack");
    physical.push(EcaRule::new(
        "strike",
        Event::pattern("*"),
        Condition::True,
        Action::adjust("strike", Default::default()).physical(),
    ));
    assert!(!exchange.offer("uk", &physical).is_accepted());
}

/// Obligations + ontology ride through the kernel config into the minted
/// guard stacks.
#[test]
fn kernel_config_options_reach_the_guards() {
    let mut catalog = ObligationCatalog::new();
    catalog.register(
        "dig-hole",
        Obligation::during(Action::adjust("post-warning-sign", Default::default())),
    );
    let mut ontology = PreferenceOntology::new();
    ontology.add_class("anywhere", Region::All);

    let kernel = SafetyKernel::new(
        SafetyConfig::paper_recommended(Region::rect(&[(0.0, 0.5)]))
            .with_obligations(catalog)
            .with_ontology(ontology),
    );
    let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
    let digger = Device::builder(2u64, DeviceKind::new("mule"), OrgId::new("us"))
        .schema(schema)
        .rule(EcaRule::new(
            "entrench",
            Event::pattern("tick"),
            Condition::True,
            Action::adjust("dig-hole", Default::default()).physical(),
        ))
        .build();
    // An oracle that predicts no harm but keeps the default hazard rule
    // ("physical actions create hazards") — unlike `NoHarmOracle`, which
    // also disables hazard detection.
    #[derive(Clone, Copy)]
    struct BenignButHazardAware;
    impl apdm::guards::HarmOracle for BenignButHazardAware {
        fn direct_harm(&self, _s: &State, _a: &Action) -> bool {
            false
        }
    }

    let mut manager = AutonomicManager::new(digger, &kernel);
    let outcome = manager.handle(&Event::named("tick"), BenignButHazardAware, 1);
    // The dig executed, and the obligation was incurred on the device.
    assert!(outcome.executed.is_some());
    assert_eq!(manager.device().obligations().len(), 1);
}

/// Deactivated devices stay inert through the manager too.
#[test]
fn deactivation_silences_the_manager() {
    let kernel = SafetyKernel::new(SafetyConfig::unguarded());
    let schema = StateSchema::builder().var("x", 0.0, 1.0).build();
    let device = Device::builder(3u64, DeviceKind::new("mule"), OrgId::new("us"))
        .schema(schema)
        .rule(EcaRule::new(
            "act",
            Event::pattern("tick"),
            Condition::True,
            Action::noop(),
        ))
        .build();
    let mut manager = AutonomicManager::new(device, &kernel);
    assert!(
        manager
            .handle(&Event::named("tick"), NoHarmOracle, 1)
            .proposed
    );
    manager.device_mut().deactivate();
    let outcome = manager.handle(&Event::named("tick"), NoHarmOracle, 2);
    assert!(!outcome.proposed);
}
